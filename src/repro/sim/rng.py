"""Reproducible random-number plumbing.

Experiments spawn independent generator streams from one root seed so
results are reproducible and parallel-safe regardless of evaluation order.

Three mechanisms cooperate:

- :func:`make_rng` / :func:`spawn_rngs` - the classic explicit-seed API;
- :func:`substream` - a *positionally* deterministic per-trial stream:
  ``substream(seed, i)`` depends only on ``(seed, i)``, never on how many
  other streams were created first.  Checkpointed Monte Carlo campaigns
  use it so a resumed run replays trial ``i`` bit-identically;
- :func:`set_default_seed` - a process-wide root for code paths whose
  callers did not thread a generator through.  Library fallbacks route
  through :func:`make_rng`, so setting a default seed makes an entire
  fault-injection campaign reproducible end-to-end even across modules
  that historically grabbed ``np.random.default_rng()`` ad hoc.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "derive_rng",
    "jumped_rng",
    "make_rng",
    "spawn_rngs",
    "substream",
    "set_default_seed",
    "get_default_seed",
]

#: Process-wide fallback seeding policy (None = non-reproducible).
_default_seed: int | None = None
_default_root: np.random.SeedSequence | None = None


def set_default_seed(seed: int | None) -> None:
    """Install (or clear, with None) a process-wide fallback seed.

    After ``set_default_seed(s)``, every :func:`make_rng` call *without*
    an explicit seed returns the next child stream of one root
    ``SeedSequence(s)`` instead of an OS-entropy generator.  Streams are
    handed out in call order, so end-to-end reproducibility additionally
    requires a deterministic call sequence - which is exactly what the
    checkpointed campaigns guarantee via :func:`substream`.
    """
    global _default_seed, _default_root
    _default_seed = seed
    _default_root = None if seed is None else np.random.SeedSequence(seed)


def get_default_seed() -> int | None:
    """The seed installed by :func:`set_default_seed` (None if unset)."""
    return _default_seed


def make_rng(seed: int | None = None) -> np.random.Generator:
    """A fresh generator; seeded when ``seed`` is given.

    With ``seed=None`` and a process default installed via
    :func:`set_default_seed`, returns the next derived stream of that
    default; otherwise an OS-entropy generator.
    """
    if seed is None and _default_root is not None:
        return np.random.default_rng(_default_root.spawn(1)[0])
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator) -> np.random.Generator:
    """An independent generator derived from ``rng``'s current state.

    Uses the bit generator's ``jumped`` stream, so the derived generator
    never overlaps the parent's future draws.  This is the sanctioned
    way to branch a second stream off a caller-supplied generator
    (e.g. fault draws vs fabrication draws) without consuming from it.
    """
    return np.random.default_rng(rng.bit_generator.jumped())


def jumped_rng(rng: np.random.Generator, jumps: int) -> np.random.Generator:
    """The ``jumps``-th jumped stream of ``rng``'s current state.

    Like :func:`derive_rng` but indexed: ``jumped_rng(rng, i)`` lands
    2^127 * i draws ahead of ``rng``, giving a family of non-overlapping
    substreams keyed by position.  :class:`repro.faults.FaultModel`
    assigns injector ``i`` the substream ``jumped_rng(root, i + 1)`` -
    the contract that lets the engine's native hooks batch each
    injector's draws independently of the others.
    """
    if jumps < 1:
        raise ValueError(f"jumps must be >= 1, got {jumps}")
    return np.random.default_rng(rng.bit_generator.jumped(jumps))


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """``count`` independent generators derived from one root seed."""
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def substream(seed: int, index: int) -> np.random.Generator:
    """The ``index``-th independent stream of root ``seed``.

    Equivalent to ``spawn_rngs(seed, index + 1)[index]`` but O(1):
    the stream is keyed directly by ``(seed, index)``, so trial ``i`` of
    a campaign draws the same numbers whether the campaign ran straight
    through or was killed and resumed from a checkpoint.
    """
    if index < 0:
        raise ValueError(f"substream index must be >= 0, got {index}")
    seq = np.random.SeedSequence(entropy=seed, spawn_key=(index,))
    return np.random.default_rng(seq)
