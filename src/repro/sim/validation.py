"""Statistical goodness-of-fit checks for lifetime models (Section 7).

The paper's limitation: "we need experimental data to validate the range
of parameters that are realistic of this or other alternative models".
These are the validation tools that close that loop once data exists:

- :func:`ks_test` - Kolmogorov-Smirnov distance and p-value of a sample
  against any model exposing ``cdf``/``reliability``;
- :func:`chi_square_binned` - chi-square on equiprobable bins (more
  sensitive to tail misfit than KS on small counts);
- :func:`validate_model` - the combined accept/flag verdict used before
  trusting a fitted model for architecture sizing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError

__all__ = ["FitVerdict", "ks_test", "chi_square_binned", "validate_model"]


def _model_cdf(model):
    if hasattr(model, "cdf"):
        return model.cdf
    if hasattr(model, "reliability"):
        return lambda x: 1.0 - np.asarray(model.reliability(x))
    raise ConfigurationError(
        "model must expose cdf() or reliability()")


def _validate_sample(data) -> np.ndarray:
    arr = np.asarray(data, dtype=float).ravel()
    if arr.size < 8:
        raise ConfigurationError("need at least 8 lifetimes to test")
    if np.any(~np.isfinite(arr)) or np.any(arr <= 0):
        raise ConfigurationError("lifetimes must be finite and > 0")
    return arr


def ks_test(data, model) -> tuple[float, float]:
    """Kolmogorov-Smirnov statistic and p-value of data vs model."""
    arr = _validate_sample(data)
    cdf = _model_cdf(model)
    result = stats.kstest(arr, lambda x: np.asarray(cdf(x), dtype=float))
    return float(result.statistic), float(result.pvalue)


def chi_square_binned(data, model, n_bins: int = 10,
                      ) -> tuple[float, float]:
    """Chi-square statistic/p-value on equiprobable model bins.

    Bin edges are the model's quantiles, so each bin expects
    ``len(data) / n_bins`` observations under the null.
    """
    arr = _validate_sample(data)
    if n_bins < 3:
        raise ConfigurationError("need at least 3 bins")
    if arr.size < 5 * n_bins:
        raise ConfigurationError(
            f"need >= {5 * n_bins} observations for {n_bins} bins")
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    if not hasattr(model, "quantile"):
        raise ConfigurationError("model must expose quantile()")
    edges = np.concatenate([[0.0], np.asarray(model.quantile(qs)),
                            [np.inf]])
    observed, _ = np.histogram(arr, bins=edges)
    expected = np.full(n_bins, arr.size / n_bins)
    # Parameters were fitted from the data (2 for every family here).
    ddof = 2
    result = stats.chisquare(observed, expected, ddof=ddof)
    return float(result.statistic), float(result.pvalue)


@dataclass(frozen=True)
class FitVerdict:
    """Combined goodness-of-fit verdict for one fitted model."""

    ks_statistic: float
    ks_pvalue: float
    chi2_statistic: float
    chi2_pvalue: float
    significance: float

    @property
    def acceptable(self) -> bool:
        """True when neither test rejects at the chosen significance."""
        return (self.ks_pvalue >= self.significance
                and self.chi2_pvalue >= self.significance)


def validate_model(data, model, significance: float = 0.01,
                   n_bins: int = 10) -> FitVerdict:
    """Run both tests; reject the model if either does.

    ``significance`` is deliberately conservative (1%): for architecture
    sizing a false "fits fine" is far more dangerous than a false alarm.
    """
    if not 0.0 < significance < 0.5:
        raise ConfigurationError("significance must lie in (0, 0.5)")
    ks_stat, ks_p = ks_test(data, model)
    chi2_stat, chi2_p = chi_square_binned(data, model, n_bins)
    return FitVerdict(ks_statistic=ks_stat, ks_pvalue=ks_p,
                      chi2_statistic=chi2_stat, chi2_pvalue=chi2_p,
                      significance=significance)
