"""Calendar-time usage simulation: does the budget survive real usage?

The paper sizes the smartphone bound as ``50/day * 365 * 5`` - a *max*
daily usage.  Real usage is stochastic: on Poisson(50) days the total
over 5 years concentrates near 91,250 and roughly half of all devices
would exceed the budget before year 5.  This module simulates the
deployment question the paper's sizing skips: given a usage-rate
distribution, what fraction of devices reach their service-life target,
and what safety factor on the access bound do you need?

- :class:`UsageProfile` - daily access counts (Poisson around a mean,
  with optional weekend scaling and heavy-use days);
- :func:`simulate_service_life` - days until the budget runs out, over
  many simulated owners;
- :func:`required_safety_factor` - the bound multiplier (via M-way
  replication, Section 4.1.5) for a target service-life percentile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "UsageProfile",
    "ServiceLifeSummary",
    "simulate_service_life",
    "required_safety_factor",
]

DAYS_PER_YEAR = 365


@dataclass(frozen=True)
class UsageProfile:
    """A stochastic daily usage model.

    ``mean_daily`` - Poisson mean for weekday accesses;
    ``weekend_factor`` - multiplier applied on 2 of every 7 days;
    ``heavy_day_probability``/``heavy_day_factor`` - occasional travel
    or lockout-recovery days with multiplied usage.
    """

    mean_daily: float = 50.0
    weekend_factor: float = 1.0
    heavy_day_probability: float = 0.0
    heavy_day_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.mean_daily <= 0:
            raise ConfigurationError("mean_daily must be > 0")
        if self.weekend_factor <= 0 or self.heavy_day_factor <= 0:
            raise ConfigurationError("usage factors must be > 0")
        if not 0.0 <= self.heavy_day_probability < 1.0:
            raise ConfigurationError(
                "heavy_day_probability must lie in [0, 1)")

    def sample_days(self, n_days: int,
                    rng: np.random.Generator) -> np.ndarray:
        """Daily access counts for ``n_days`` consecutive days."""
        if n_days < 1:
            raise ConfigurationError("n_days must be >= 1")
        day_index = np.arange(n_days)
        means = np.full(n_days, float(self.mean_daily))
        means[day_index % 7 >= 5] *= self.weekend_factor
        if self.heavy_day_probability > 0:
            heavy = rng.random(n_days) < self.heavy_day_probability
            means[heavy] *= self.heavy_day_factor
        return rng.poisson(means)


@dataclass(frozen=True)
class ServiceLifeSummary:
    """Distribution of days-until-budget-exhaustion over many owners."""

    target_days: int
    mean_days: float
    p05_days: float
    p50_days: float
    fraction_reaching_target: float


def simulate_service_life(access_budget: int, profile: UsageProfile,
                          target_years: float, trials: int,
                          rng: np.random.Generator) -> ServiceLifeSummary:
    """How long the budget lasts under stochastic usage.

    Each trial draws one owner's daily usage until the budget is spent
    (or the horizon of 2x the target passes).
    """
    if access_budget < 1:
        raise ConfigurationError("access_budget must be >= 1")
    if target_years <= 0:
        raise ConfigurationError("target_years must be > 0")
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    target_days = int(round(target_years * DAYS_PER_YEAR))
    horizon = 2 * target_days
    lifetimes = np.empty(trials)
    for i in range(trials):
        daily = profile.sample_days(horizon, rng)
        cumulative = np.cumsum(daily)
        exhausted = np.searchsorted(cumulative, access_budget,
                                    side="left")
        lifetimes[i] = min(exhausted + 1, horizon)
    return ServiceLifeSummary(
        target_days=target_days,
        mean_days=float(lifetimes.mean()),
        p05_days=float(np.percentile(lifetimes, 5)),
        p50_days=float(np.percentile(lifetimes, 50)),
        fraction_reaching_target=float((lifetimes >= target_days).mean()),
    )


def required_safety_factor(profile: UsageProfile, target_years: float,
                           base_budget: int, rng: np.random.Generator,
                           confidence: float = 0.99,
                           trials: int = 300,
                           max_factor: int = 8) -> int:
    """Smallest integer budget multiplier reaching the service target.

    The multiplier maps directly onto Section 4.1.5's M-way replication:
    M modules give M times the accesses at the cost of M - 1 password
    rotations.  Returns the smallest M whose simulated fraction of owners
    reaching the target meets ``confidence``.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must lie in (0, 1)")
    if max_factor < 1:
        raise ConfigurationError("max_factor must be >= 1")
    for factor in range(1, max_factor + 1):
        summary = simulate_service_life(base_budget * factor, profile,
                                        target_years, trials, rng)
        if summary.fraction_reaching_target >= confidence:
            return factor
    raise ConfigurationError(
        f"no factor <= {max_factor} reaches {confidence:.0%} confidence; "
        "the usage profile overwhelms this budget")
