"""Atomic JSON checkpoints for long Monte Carlo campaigns.

A checkpoint is one JSON object on disk:

.. code-block:: json

    {
      "schema_version": 1,
      "meta":      {"seed": 0, "trials": 1000, "...": "campaign identity"},
      "completed": 412,
      "results":   ["... one JSON-safe entry per finished trial ..."]
    }

``meta`` captures everything that determines the campaign's trajectory
(seed, trial count, design, fault configuration); resuming validates it
field-by-field so a checkpoint can never silently continue a *different*
campaign.  Writes go through a temp file + ``os.replace`` so a kill at
any instant leaves either the old or the new checkpoint, never a torn
one - which, combined with per-trial RNG substreams
(:func:`repro.sim.rng.substream`), makes a resumed campaign bit-identical
to an uninterrupted run.
"""

from __future__ import annotations

import json
import os

from repro.errors import ConfigurationError

__all__ = ["save_checkpoint", "load_checkpoint", "validate_checkpoint"]

SCHEMA_VERSION = 1


def save_checkpoint(path: str, meta: dict, results: list) -> None:
    """Atomically persist campaign progress to ``path``."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "meta": meta,
        "completed": len(results),
        "results": results,
    }
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def load_checkpoint(path: str) -> dict | None:
    """Load a checkpoint; None when ``path`` does not exist."""
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"corrupt checkpoint {path!r}: {exc}") from exc
    if not isinstance(payload, dict) \
            or payload.get("schema_version") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint schema in {path!r}")
    results = payload.get("results")
    if not isinstance(results, list) \
            or payload.get("completed") != len(results):
        raise ConfigurationError(
            f"inconsistent checkpoint {path!r}: completed count does not "
            f"match stored results")
    return payload


def validate_checkpoint(payload: dict, meta: dict, path: str) -> list:
    """Check a loaded checkpoint belongs to this campaign; return results.

    Raises :class:`ConfigurationError` naming the first mismatching meta
    field, so a seed or design change cannot silently resume stale state.
    """
    stored = payload.get("meta", {})
    for key, expected in meta.items():
        if stored.get(key) != expected:
            raise ConfigurationError(
                f"checkpoint {path!r} belongs to a different campaign: "
                f"meta[{key!r}] is {stored.get(key)!r}, expected "
                f"{expected!r}; delete the file or match the parameters")
    return payload["results"]
