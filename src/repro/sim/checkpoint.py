"""Atomic JSON checkpoints for long Monte Carlo campaigns.

A checkpoint is one JSON object on disk:

.. code-block:: json

    {
      "schema_version": 1,
      "meta":      {"seed": 0, "trials": 1000, "...": "campaign identity"},
      "completed": 412,
      "results":   ["... one JSON-safe entry per finished trial ..."]
    }

``meta`` captures everything that determines the campaign's trajectory
(seed, trial count, design, fault configuration); resuming validates it
field-by-field so a checkpoint can never silently continue a *different*
campaign.  Writes go through a temp file + ``os.replace`` so a kill at
any instant leaves either the old or the new checkpoint, never a torn
one - which, combined with per-trial RNG substreams
(:func:`repro.sim.rng.substream`), makes a resumed campaign bit-identical
to an uninterrupted run.

Parallel campaigns (:mod:`repro.sim.parallel`) add **shard checkpoints**:
the same payload shape with a ``meta["shard"] = [start, stop]`` entry
naming the contiguous trial range the file covers.  Workers write shard
files next to the canonical checkpoint (``<path>.shard-<start>-<stop>``);
the parent merges them back into the canonical prefix-ordered form via
:func:`merge_shard_payloads`, which rejects overlapping ranges and
mixed schema versions instead of silently mixing campaigns.
"""

from __future__ import annotations

import glob
import json
import os
import time

from repro.errors import CheckpointMismatchError, ConfigurationError
from repro.obs.recorder import OBS

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "validate_checkpoint",
    "shard_checkpoint_path",
    "list_shard_checkpoints",
    "merge_shard_payloads",
]

SCHEMA_VERSION = 1


def save_checkpoint(path: str, meta: dict, results: list) -> None:
    """Atomically persist campaign progress to ``path``."""
    if OBS.enabled:
        started = time.perf_counter()
    payload = {
        "schema_version": SCHEMA_VERSION,
        "meta": meta,
        "completed": len(results),
        "results": results,
    }
    # The temp name is pid-unique: parallel campaigns can have an
    # abandoned (timed-out) worker and its replacement flush the same
    # shard concurrently, and sharing one temp file would interleave
    # their writes.  Distinct temp files keep os.replace atomic per
    # writer; both write identical deterministic content, so whichever
    # replace lands last is correct.
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    if OBS.enabled:
        OBS.metrics.inc("checkpoint.saves")
        OBS.metrics.observe("checkpoint.save_s",
                            time.perf_counter() - started)
        OBS.event("checkpoint.saved", path=path, completed=len(results))


def load_checkpoint(path: str) -> dict | None:
    """Load a checkpoint; None when ``path`` does not exist."""
    if not os.path.exists(path):
        return None
    if OBS.enabled:
        started = time.perf_counter()
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"corrupt checkpoint {path!r}: {exc}") from exc
    if not isinstance(payload, dict) \
            or payload.get("schema_version") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint schema in {path!r}")
    results = payload.get("results")
    if not isinstance(results, list) \
            or payload.get("completed") != len(results):
        raise ConfigurationError(
            f"inconsistent checkpoint {path!r}: completed count does not "
            f"match stored results")
    if OBS.enabled:
        OBS.metrics.inc("checkpoint.loads")
        OBS.metrics.observe("checkpoint.load_s",
                            time.perf_counter() - started)
    return payload


def validate_checkpoint(payload: dict, meta: dict, path: str) -> list:
    """Check a loaded checkpoint belongs to this campaign; return results.

    Raises :class:`CheckpointMismatchError` naming the first mismatching
    meta field, so a seed or design change cannot silently resume stale
    state.  The CLI maps this error to a distinct exit code (2) so
    automation can tell "checkpoint belongs to another campaign" apart
    from ordinary campaign failures.
    """
    stored = payload.get("meta", {})
    for key, expected in meta.items():
        if stored.get(key) != expected:
            raise CheckpointMismatchError(
                f"checkpoint {path!r} belongs to a different campaign: "
                f"meta[{key!r}] is {stored.get(key)!r}, expected "
                f"{expected!r}; delete the file or match the parameters")
    return payload["results"]


def shard_checkpoint_path(base_path: str, start: int, stop: int) -> str:
    """The shard-file path for trial range ``[start, stop)`` of a campaign.

    The range is embedded in the name so shards planned under different
    worker counts never collide, and a worker resuming its own shard
    finds exactly its previous partial progress.
    """
    if not 0 <= start <= stop:
        raise ConfigurationError(
            f"shard range must satisfy 0 <= start <= stop, "
            f"got [{start}, {stop})")
    return f"{base_path}.shard-{start:08d}-{stop:08d}"


def list_shard_checkpoints(base_path: str) -> list[str]:
    """Every shard-checkpoint file written next to ``base_path``, sorted.

    The pattern pins the exact ``-<8 digits>-<8 digits>`` shape so the
    torn ``.tmp.<pid>`` files a SIGKILL can leave behind are never
    picked up as shards (they are not atomic-complete JSON).
    """
    digits = "[0-9]" * 8
    return sorted(glob.glob(
        f"{glob.escape(base_path)}.shard-{digits}-{digits}"))


def merge_shard_payloads(payloads: list[dict], trials: int) -> dict[int, object]:
    """Merge loaded shard payloads into one ``{trial_index: result}`` map.

    Each payload must carry ``meta["shard"] = [start, stop]`` and hold
    ``completed`` results for indices ``start .. start + completed``
    (a partially-finished shard is fine; an *empty* shard contributes
    nothing).  Raises :class:`ConfigurationError` when two shards claim
    the same trial index, when a shard's range falls outside the
    campaign, when a shard holds more results than its range, or when
    the payloads disagree on ``schema_version`` - any of which means the
    files on disk belong to more than one campaign generation.
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    merged: dict[int, object] = {}
    owner: dict[int, tuple[int, int]] = {}
    versions = {payload.get("schema_version") for payload in payloads}
    if len(versions) > 1:
        raise ConfigurationError(
            f"shard checkpoints disagree on schema_version "
            f"({sorted(map(str, versions))}); they were written by "
            f"different campaign generations - delete the stale ones")
    for payload in payloads:
        shard = payload.get("meta", {}).get("shard")
        if (not isinstance(shard, (list, tuple)) or len(shard) != 2
                or not all(isinstance(v, int) for v in shard)):
            raise ConfigurationError(
                f"shard checkpoint lacks a valid meta['shard'] range, "
                f"got {shard!r}")
        start, stop = shard
        if not 0 <= start <= stop <= trials:
            raise ConfigurationError(
                f"shard range [{start}, {stop}) falls outside the "
                f"{trials}-trial campaign")
        results = payload["results"]
        if len(results) > stop - start:
            raise ConfigurationError(
                f"shard [{start}, {stop}) holds {len(results)} results "
                f"for a {stop - start}-trial range")
        for offset, result in enumerate(results):
            index = start + offset
            if index in merged:
                raise ConfigurationError(
                    f"shards [{owner[index][0]}, {owner[index][1]}) and "
                    f"[{start}, {stop}) both claim trial {index}; "
                    f"overlapping shard checkpoints cannot be merged")
            merged[index] = result
            owner[index] = (start, stop)
    return merged
