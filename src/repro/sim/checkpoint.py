"""Atomic JSON checkpoints for long Monte Carlo campaigns.

A checkpoint is one JSON object on disk:

.. code-block:: json

    {
      "schema_version": 1,
      "meta":      {"seed": 0, "trials": 1000, "...": "campaign identity"},
      "completed": 412,
      "results":   ["... one JSON-safe entry per finished trial ..."]
    }

``meta`` captures everything that determines the campaign's trajectory
(seed, trial count, design, fault configuration); resuming validates it
field-by-field so a checkpoint can never silently continue a *different*
campaign.  Writes go through a temp file + ``os.replace`` so a kill at
any instant leaves either the old or the new checkpoint, never a torn
one - which, combined with per-trial RNG substreams
(:func:`repro.sim.rng.substream`), makes a resumed campaign bit-identical
to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import CheckpointMismatchError, ConfigurationError
from repro.obs.recorder import OBS

__all__ = ["save_checkpoint", "load_checkpoint", "validate_checkpoint"]

SCHEMA_VERSION = 1


def save_checkpoint(path: str, meta: dict, results: list) -> None:
    """Atomically persist campaign progress to ``path``."""
    if OBS.enabled:
        started = time.perf_counter()
    payload = {
        "schema_version": SCHEMA_VERSION,
        "meta": meta,
        "completed": len(results),
        "results": results,
    }
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    if OBS.enabled:
        OBS.metrics.inc("checkpoint.saves")
        OBS.metrics.observe("checkpoint.save_s",
                            time.perf_counter() - started)
        OBS.event("checkpoint.saved", path=path, completed=len(results))


def load_checkpoint(path: str) -> dict | None:
    """Load a checkpoint; None when ``path`` does not exist."""
    if not os.path.exists(path):
        return None
    if OBS.enabled:
        started = time.perf_counter()
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"corrupt checkpoint {path!r}: {exc}") from exc
    if not isinstance(payload, dict) \
            or payload.get("schema_version") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint schema in {path!r}")
    results = payload.get("results")
    if not isinstance(results, list) \
            or payload.get("completed") != len(results):
        raise ConfigurationError(
            f"inconsistent checkpoint {path!r}: completed count does not "
            f"match stored results")
    if OBS.enabled:
        OBS.metrics.inc("checkpoint.loads")
        OBS.metrics.observe("checkpoint.load_s",
                            time.perf_counter() - started)
    return payload


def validate_checkpoint(payload: dict, meta: dict, path: str) -> list:
    """Check a loaded checkpoint belongs to this campaign; return results.

    Raises :class:`CheckpointMismatchError` naming the first mismatching
    meta field, so a seed or design change cannot silently resume stale
    state.  The CLI maps this error to a distinct exit code (2) so
    automation can tell "checkpoint belongs to another campaign" apart
    from ordinary campaign failures.
    """
    stored = payload.get("meta", {})
    for key, expected in meta.items():
        if stored.get(key) != expected:
            raise CheckpointMismatchError(
                f"checkpoint {path!r} belongs to a different campaign: "
                f"meta[{key!r}] is {stored.get(key)!r}, expected "
                f"{expected!r}; delete the file or match the parameters")
    return payload["results"]
