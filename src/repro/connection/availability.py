"""Availability analysis: the denial-of-service cost of wearout security.

Section 7's honest caveat: an attacker with the device can always *burn*
the legitimate usage budget with junk passcode attempts.  Wearout
guarantees confidentiality and integrity, never availability.  This
module quantifies that trade-off so a deployment can reason about it:

- :func:`drain_analysis` - closed-form service-life loss under a given
  adversarial drain rate;
- :func:`simulate_drain_attack` - the same measured on a fabricated
  phone, interleaving owner logins with attacker junk attempts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.connection.phone import SecurePhone
from repro.core.degradation import DesignPoint
from repro.errors import ConfigurationError, DeviceWornOutError

__all__ = ["DrainAnalysis", "drain_analysis", "simulate_drain_attack"]


@dataclass(frozen=True)
class DrainAnalysis:
    """Service-life impact of an adversarial budget drain."""

    intended_service_days: float
    drained_service_days: float
    owner_accesses_served: float
    attacker_accesses_wasted: float

    @property
    def service_loss_fraction(self) -> float:
        """Fraction of intended service life destroyed by the drain."""
        return 1.0 - self.drained_service_days / self.intended_service_days


def drain_analysis(design: DesignPoint, owner_rate_per_day: float = 50.0,
                   drain_rate_per_day: float = 0.0) -> DrainAnalysis:
    """Closed-form availability impact of a sustained drain.

    The budget is consumed at ``owner + drain`` accesses/day, so the
    device dies earlier by the ratio of rates.  Confidentiality is
    unaffected (burned accesses yield the attacker nothing), which is the
    paper's point - this quantifies what *is* lost.
    """
    if owner_rate_per_day <= 0:
        raise ConfigurationError("owner_rate_per_day must be > 0")
    if drain_rate_per_day < 0:
        raise ConfigurationError("drain_rate_per_day must be >= 0")
    budget = design.guaranteed_accesses
    intended_days = budget / owner_rate_per_day
    total_rate = owner_rate_per_day + drain_rate_per_day
    drained_days = budget / total_rate
    owner_share = owner_rate_per_day / total_rate
    return DrainAnalysis(
        intended_service_days=intended_days,
        drained_service_days=drained_days,
        owner_accesses_served=budget * owner_share,
        attacker_accesses_wasted=budget * (1.0 - owner_share),
    )


def simulate_drain_attack(design: DesignPoint, passcode: str,
                          rng: np.random.Generator,
                          owner_per_cycle: int = 1,
                          attacker_per_cycle: int = 1,
                          vectorized: bool = True) -> DrainAnalysis:
    """Measured drain on a fabricated phone.

    Interleaves ``owner_per_cycle`` legitimate logins with
    ``attacker_per_cycle`` junk attempts until the hardware dies, then
    reports the measured split.  Also verifies the confidentiality
    invariant: none of the attacker's attempts succeeded.

    ``vectorized`` (the default) drives the whole drain in one engine
    fast-forward - a login consumes exactly one access, draws no
    randomness, and its outcome is fixed by the passcode, so the split
    is the served count partitioned by the cycle pattern.  ``False``
    keeps the login-by-login reference loop; both arms are identical
    (pinned in ``tests/differential``).
    """
    if owner_per_cycle < 1 or attacker_per_cycle < 0:
        raise ConfigurationError(
            "need owner_per_cycle >= 1 and attacker_per_cycle >= 0")
    phone = SecurePhone(design, passcode, b"owner data", rng)
    owner_served = 0
    attacker_wasted = 0
    if vectorized:
        # A login's outcome is fixed by the passcode (the scalar arm
        # asserts exactly that on every attempt), so only the served
        # count matters: partition it by the cycle pattern.
        served = phone.connection.serve_accesses(2 ** 62)
        cycle = owner_per_cycle + attacker_per_cycle
        full_cycles, rem = divmod(served, cycle)
        owner_served = (full_cycles * owner_per_cycle
                        + min(rem, owner_per_cycle))
        attacker_wasted = served - owner_served
    else:
        try:
            while True:
                for _ in range(owner_per_cycle):
                    result = phone.login(passcode)
                    assert result.success
                    owner_served += 1
                for _ in range(attacker_per_cycle):
                    result = phone.login("not-the-passcode")
                    assert not result.success  # confidentiality holds
                    attacker_wasted += 1
        except DeviceWornOutError:
            pass
    total_rate = owner_per_cycle + attacker_per_cycle
    budget = owner_served + attacker_wasted
    return DrainAnalysis(
        intended_service_days=budget / owner_per_cycle,
        drained_service_days=budget / total_rate,
        owner_accesses_served=float(owner_served),
        attacker_accesses_wasted=float(attacker_wasted),
    )
