"""Design-space sweeps behind Figures 4a-4d and Table 1.

Each function returns plain data structures (dicts keyed by the curve
label, rows of (x, y)) so the benchmark harness and EXPERIMENTS.md
generation share one source of truth.

All sweeps use :data:`~repro.core.degradation.PAPER_CRITERIA` (the 98% /
2.2% working point the paper's Figure 3b reference design satisfies) and
the fractional-window solver, matching the smooth curves the paper plots;
see DESIGN.md for the calibration rationale.
"""

from __future__ import annotations

import numpy as np

from repro.core.degradation import (
    DegradationCriteria,
    PAPER_CRITERIA,
    solve_encoded_fractional,
    solve_unencoded_fractional,
    solve_with_upper_bound,
)
from repro.core.costs import connection_area_mm2
from repro.core.weibull import WeibullDistribution
from repro.errors import InfeasibleDesignError
from repro.passwords.model import PasswordModel

__all__ = [
    "SMARTPHONE_ACCESS_BOUND",
    "fig4a_unencoded_sweep",
    "fig4b_encoded_sweep",
    "fig4c_relaxed_criteria_sweep",
    "fig4d_stronger_passcodes",
    "table1_area_cost",
]

#: 50 logins/day * 365 days * 5 years (Eq. 4).
SMARTPHONE_ACCESS_BOUND = 91_250

_DEFAULT_ALPHAS = tuple(range(10, 21))


def fig4a_unencoded_sweep(alphas=_DEFAULT_ALPHAS,
                          betas=(8, 10, 12, 14, 16),
                          access_bound: int = SMARTPHONE_ACCESS_BOUND,
                          criteria: DegradationCriteria = PAPER_CRITERIA,
                          ) -> dict[int, list[tuple[float, float | None]]]:
    """Total switches vs alpha without encoding, one curve per beta.

    The paper's headline: exponential growth in the wearout bound, with
    ~4e9 devices at alpha = 14, beta = 8 (log-scale y axis).
    """
    curves: dict[int, list[tuple[float, float | None]]] = {}
    for beta in betas:
        rows = []
        for alpha in alphas:
            device = WeibullDistribution(alpha=alpha, beta=beta)
            try:
                point = solve_unencoded_fractional(device, access_bound,
                                                   criteria)
                rows.append((alpha, float(point.total_devices)))
            except InfeasibleDesignError:
                rows.append((alpha, None))
        curves[beta] = rows
    return curves


def fig4b_encoded_sweep(alphas=_DEFAULT_ALPHAS,
                        k_fractions=(0.10, 0.20, 0.30),
                        betas=(4, 8),
                        access_bound: int = SMARTPHONE_ACCESS_BOUND,
                        criteria: DegradationCriteria = PAPER_CRITERIA,
                        ) -> dict[tuple[float, int],
                                  list[tuple[float, float | None]]]:
    """Total switches vs alpha with redundant encoding (Fig. 4b).

    Curves are keyed by (k_fraction, beta).  The paper's claims: linear
    rather than exponential scaling, ~0.8e6 devices at alpha = 14,
    beta = 8, k = 10% (4 orders of magnitude below the unencoded design),
    and diminishing returns beyond k = 30%.
    """
    curves: dict[tuple[float, int], list[tuple[float, float | None]]] = {}
    for k_fraction in k_fractions:
        for beta in betas:
            rows = []
            for alpha in alphas:
                device = WeibullDistribution(alpha=alpha, beta=beta)
                try:
                    point = solve_encoded_fractional(
                        device, access_bound, k_fraction, criteria)
                    rows.append((alpha, float(point.total_devices)))
                except InfeasibleDesignError:
                    rows.append((alpha, None))
            curves[(k_fraction, beta)] = rows
    return curves


def fig4c_relaxed_criteria_sweep(alphas=_DEFAULT_ALPHAS,
                                 p_values=(0.01, 0.02, 0.04, 0.06, 0.08,
                                           0.10),
                                 beta: int = 8,
                                 k_fraction: float = 0.10,
                                 access_bound: int = SMARTPHONE_ACCESS_BOUND,
                                 r_min: float = PAPER_CRITERIA.r_min,
                                 ) -> dict[float, list[dict]]:
    """Relaxing the per-copy failure ceiling p (Fig. 4c).

    Returns, per p, rows of alpha / total devices / expected system-level
    access upper bound.  Paper anchor: p 1% -> 10% cuts devices ~40% while
    the empirical upper bound moves only 91,326 -> 92,028.
    """
    curves: dict[float, list[dict]] = {}
    for p in p_values:
        criteria = DegradationCriteria(r_min=r_min, p_fail=p)
        rows = []
        for alpha in alphas:
            device = WeibullDistribution(alpha=alpha, beta=beta)
            try:
                point = solve_encoded_fractional(device, access_bound,
                                                 k_fraction, criteria)
                rows.append({
                    "alpha": alpha,
                    "total_devices": float(point.total_devices),
                    "expected_upper_bound": point.expected_access_bound(),
                })
            except InfeasibleDesignError:
                rows.append({"alpha": alpha, "total_devices": None,
                             "expected_upper_bound": None})
        curves[p] = rows
    return curves


def fig4d_stronger_passcodes(betas=(4, 8),
                             k_fraction: float = 0.10,
                             access_bound: int = SMARTPHONE_ACCESS_BOUND,
                             criteria: DegradationCriteria = PAPER_CRITERIA,
                             alphas=_DEFAULT_ALPHAS,
                             model: PasswordModel | None = None,
                             ) -> dict[int, dict[str, float]]:
    """Exploiting passcode-strength policies (Fig. 4d).

    If software rejects the most popular 1% (2%) of passwords, an attacker
    needs at least 100,000 (200,000) guesses, so the architecture's upper
    bound only has to beat that - per beta, the cheapest design over the
    alpha range for each upper-bound target.  Paper anchors (beta = 8):
    675,250 -> 38,325 -> 29,200 switches.
    """
    model = model or PasswordModel()
    scenarios = {
        "baseline": None,  # system dead right after the LAB
        "beyond_1pct": model.guesses_for_fraction(0.01),
        "beyond_2pct": model.guesses_for_fraction(0.02),
    }
    results: dict[int, dict[str, float]] = {}
    for beta in betas:
        row: dict[str, float] = {}
        for label, upper_bound in scenarios.items():
            best = np.inf
            for alpha in alphas:
                device = WeibullDistribution(alpha=alpha, beta=beta)
                try:
                    if upper_bound is None:
                        point = solve_encoded_fractional(
                            device, access_bound, k_fraction, criteria)
                    else:
                        point = solve_with_upper_bound(
                            device, access_bound, upper_bound, k_fraction,
                            criteria)
                except InfeasibleDesignError:
                    continue
                best = min(best, point.total_devices)
            row[label] = float(best)
        results[beta] = row
    return results


def table1_area_cost(design_points=((10.51, 16), (10.21, 10),
                                    (19.68, 16), (18.69, 10)),
                     k_fraction: float = 0.10,
                     access_bound: int = SMARTPHONE_ACCESS_BOUND,
                     criteria: DegradationCriteria = PAPER_CRITERIA,
                     secret_bits: int = 128) -> list[dict]:
    """Area cost with and without encoding for Table 1's (alpha, beta) set."""
    rows = []
    for alpha, beta in design_points:
        device = WeibullDistribution(alpha=alpha, beta=beta)
        row = {"alpha": alpha, "beta": beta}
        try:
            plain = solve_unencoded_fractional(device, access_bound,
                                               criteria)
            row["area_without_encoding_mm2"] = connection_area_mm2(
                plain, secret_bits)
            row["devices_without_encoding"] = plain.total_devices
        except InfeasibleDesignError:
            row["area_without_encoding_mm2"] = None
            row["devices_without_encoding"] = None
        try:
            encoded = solve_encoded_fractional(device, access_bound,
                                               k_fraction, criteria)
            row["area_with_encoding_mm2"] = connection_area_mm2(
                encoded, secret_bits)
            row["devices_with_encoding"] = encoded.total_devices
        except InfeasibleDesignError:
            row["area_with_encoding_mm2"] = None
            row["devices_with_encoding"] = None
        rows.append(row)
    return rows
