"""The limited-use connection use case (paper Section 4)."""

from repro.connection.architecture import LimitedUseConnection
from repro.connection.availability import (
    DrainAnalysis,
    drain_analysis,
    simulate_drain_attack,
)
from repro.connection.attacks import (
    HardwareAttackStats,
    analytic_crack_probability,
    simulate_hardware_attacks,
    software_counter_attempts_needed,
)
from repro.connection.baselines import (
    NANDImage,
    PhoneWipedError,
    SoftwareCounterPhone,
)
from repro.connection.design_space import (
    SMARTPHONE_ACCESS_BOUND,
    fig4a_unencoded_sweep,
    fig4b_encoded_sweep,
    fig4c_relaxed_criteria_sweep,
    fig4d_stronger_passcodes,
    table1_area_cost,
)
from repro.connection.keystore import BankKeyStore
from repro.connection.multiuser import SharedPhone
from repro.connection.resilient import (
    AccessStats,
    CopyHealth,
    ResilientAccessController,
    RetryPolicy,
)
from repro.connection.phone import LoginResult, MWayPhone, SecurePhone

__all__ = [
    "AccessStats",
    "BankKeyStore",
    "CopyHealth",
    "DrainAnalysis",
    "HardwareAttackStats",
    "LimitedUseConnection",
    "LoginResult",
    "MWayPhone",
    "NANDImage",
    "PhoneWipedError",
    "ResilientAccessController",
    "RetryPolicy",
    "SMARTPHONE_ACCESS_BOUND",
    "SecurePhone",
    "SharedPhone",
    "SoftwareCounterPhone",
    "analytic_crack_probability",
    "drain_analysis",
    "fig4a_unencoded_sweep",
    "fig4b_encoded_sweep",
    "fig4c_relaxed_criteria_sweep",
    "fig4d_stronger_passcodes",
    "simulate_drain_attack",
    "simulate_hardware_attacks",
    "software_counter_attempts_needed",
    "table1_area_cost",
]
