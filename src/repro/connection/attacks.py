"""Brute-force attack experiments: hardware bound vs bypassed software.

The paper's security claim is statistical: with the access bound matched
to the legitimate-use budget, a professional popularity-ordered attacker
cracks with probability ~F(bound) ~ 1% - while against a bypassed
software counter they always succeed eventually.  These helpers measure
both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.degradation import DesignPoint
from repro.errors import ConfigurationError
from repro.passwords.model import PasswordModel
from repro.sim.montecarlo import simulate_access_bounds

__all__ = [
    "HardwareAttackStats",
    "simulate_hardware_attacks",
    "analytic_crack_probability",
    "software_counter_attempts_needed",
]


@dataclass(frozen=True)
class HardwareAttackStats:
    """Aggregate outcome of many simulated campaigns against the hardware."""

    trials: int
    crack_probability: float
    mean_attempts: float
    mean_hardware_budget: float


def analytic_crack_probability(design: DesignPoint,
                               model: PasswordModel | None = None,
                               legitimate_uses: int = 0,
                               min_fraction_excluded: float = 0.0) -> float:
    """P[crack before wearout] using the design's guaranteed bound.

    ``legitimate_uses`` accesses already consumed by the owner shrink the
    attacker's budget.  The exclusion fraction models passcode-strength
    policies (Fig. 4d).
    """
    model = model or PasswordModel()
    budget = max(0, design.guaranteed_accesses - legitimate_uses)
    total = float(model.cracked_fraction(budget))
    if min_fraction_excluded <= 0.0:
        return total
    if total <= min_fraction_excluded:
        return 0.0
    return (total - min_fraction_excluded) / (1.0 - min_fraction_excluded)


def simulate_hardware_attacks(design: DesignPoint, trials: int,
                              rng: np.random.Generator,
                              model: PasswordModel | None = None,
                              legitimate_uses: int = 0,
                              min_fraction_excluded: float = 0.0,
                              ) -> HardwareAttackStats:
    """Monte Carlo campaigns: fabricate hardware, then brute-force it.

    Each trial samples a fabricated instance's true access bound (which
    varies around the design target) and a victim passcode rank; the
    attack succeeds when the rank fits within the leftover budget.
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    model = model or PasswordModel()
    bounds = simulate_access_bounds(design, trials, rng)
    budgets = np.maximum(bounds - legitimate_uses, 0)
    ranks = np.array([
        model.sample_rank(rng, min_fraction_excluded) for _ in range(trials)
    ])
    cracked = ranks <= budgets
    attempts = np.where(cracked, ranks, budgets)
    return HardwareAttackStats(
        trials=trials,
        crack_probability=float(cracked.mean()),
        mean_attempts=float(attempts.mean()),
        mean_hardware_budget=float(budgets.mean()),
    )


def software_counter_attempts_needed(model: PasswordModel,
                                     rng: np.random.Generator) -> int:
    """Attempts a bypassed-software attacker needs (always finite).

    With the counter bypassed there is no budget at all; the attacker
    simply walks the popularity ordering to the victim's rank.
    """
    return model.sample_rank(rng)
