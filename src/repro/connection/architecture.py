"""The limited-use connection: wearout-bounded access to a secret key.

Hardware realization of Figure 2d: ``N`` serially-consumed copies, each a
k-of-n parallel bank of NEMS switches with a Shamir share of the storage
key behind every switch.  Every key read actuates the active bank; once
all banks are exhausted the key is physically unrecoverable.

The switch state lives in one shared engine
:class:`~repro.engine.state.WearState` and the fall-over loop is the
common :class:`~repro.core.hardware.SerialCopies` driver - this class
only adds the share binding and the key-recovery step.
"""

from __future__ import annotations

import numpy as np

from repro.connection.keystore import BankKeyStore
from repro.core.degradation import DesignPoint
from repro.core.hardware import SerialCopies, SimulatedBank
from repro.core.variation import NoVariation, ProcessVariation
from repro.engine.state import WearState
from repro.errors import DeviceWornOutError

__all__ = ["LimitedUseConnection"]


class LimitedUseConnection:
    """A fabricated limited-use connection guarding one secret.

    Parameters
    ----------
    design:
        The sized architecture (bank size, threshold, copy count, device
        model) from the degradation solver.
    secret:
        The byte string to protect (e.g. a 16-byte storage key).
    rng:
        Generator used both for fabrication (lifetime sampling) and for
        the per-bank Shamir splits.
    variation:
        Optional per-device process variation applied at fabrication.
    """

    def __init__(self, design: DesignPoint, secret: bytes,
                 rng: np.random.Generator,
                 variation: ProcessVariation | None = None) -> None:
        self.design = design
        variation = variation or NoVariation()
        # Fabrication interleaves lifetime sampling and Shamir splitting
        # per copy; collecting lifetimes first and building the shared
        # state afterwards preserves that draw order bit-for-bit.
        lifetimes = np.empty((1, design.copies, design.n))
        self._stores: list[BankKeyStore] = []
        for copy in range(design.copies):
            lifetimes[0, copy] = variation.sample_lifetimes(
                design.device, design.n, rng)
            self._stores.append(BankKeyStore(secret, design.n, design.k, rng))
        self._state = WearState(lifetimes, design.k)
        self._serial = SerialCopies([
            SimulatedBank.from_state(self._state, 0, copy)
            for copy in range(design.copies)])
        self.accesses = 0

    # ------------------------------------------------------------------
    @property
    def current_copy(self) -> int:
        return self._serial.current_index

    @property
    def is_exhausted(self) -> bool:
        return self._serial.is_exhausted

    @property
    def device_count(self) -> int:
        return self.design.total_devices

    def read_key(self) -> bytes:
        """One physical access to the protected secret.

        Actuates the active bank; recovers the secret from the shares
        behind the switches that closed.  Falls over to the next copy when
        the active bank dies, and raises :class:`DeviceWornOutError` once
        every copy is exhausted - the phone is then permanently locked.
        """
        self.accesses += 1
        try:
            copy, closed = self._serial.access()
        except DeviceWornOutError:
            raise DeviceWornOutError(
                f"limited-use connection exhausted after {self.accesses} "
                f"accesses (bound {self.design.access_bound})") from None
        return self._stores[copy].recover(closed)

    def serve_accesses(self, count: int) -> int:
        """Serve up to ``count`` key reads in one engine fast-forward.

        Returns the number actually served; fewer than ``count`` means
        the connection exhausted partway and the next read's failing
        attempt has already been counted, exactly as a raising
        :meth:`read_key` would have.  The secret is not recovered -
        callers that need the key bytes use :meth:`read_key`; this is
        the bulk path for replay-style drivers that only need the wear
        accounting.  Leaves the shared wear state bit-identical to
        ``count`` sequential reads (closed form pinned in
        ``tests/engine``; the replay arms in ``tests/differential``).
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        if count == 0:
            return 0
        served = int(self._state.run_to_exhaustion(max_accesses=count)[0])
        died = served < count
        self._serial._current = int(self._state.current[0])
        self._serial.total_accesses += served + died
        self.accesses += served + died
        return served
