"""The limited-use connection: wearout-bounded access to a secret key.

Hardware realization of Figure 2d: ``N`` serially-consumed copies, each a
k-of-n parallel bank of NEMS switches with a Shamir share of the storage
key behind every switch.  Every key read actuates the active bank; once
all banks are exhausted the key is physically unrecoverable.
"""

from __future__ import annotations

import numpy as np

from repro.connection.keystore import BankKeyStore
from repro.core.degradation import DesignPoint
from repro.core.device import NEMSSwitch
from repro.core.hardware import SimulatedBank
from repro.core.variation import ProcessVariation
from repro.errors import DeviceWornOutError

__all__ = ["LimitedUseConnection"]


class LimitedUseConnection:
    """A fabricated limited-use connection guarding one secret.

    Parameters
    ----------
    design:
        The sized architecture (bank size, threshold, copy count, device
        model) from the degradation solver.
    secret:
        The byte string to protect (e.g. a 16-byte storage key).
    rng:
        Generator used both for fabrication (lifetime sampling) and for
        the per-bank Shamir splits.
    variation:
        Optional per-device process variation applied at fabrication.
    """

    def __init__(self, design: DesignPoint, secret: bytes,
                 rng: np.random.Generator,
                 variation: ProcessVariation | None = None) -> None:
        self.design = design
        self._banks: list[SimulatedBank] = []
        self._stores: list[BankKeyStore] = []
        for _ in range(design.copies):
            switches = NEMSSwitch.fabricate_batch(
                design.device, design.n, rng, variation)
            self._banks.append(SimulatedBank(switches, design.k))
            self._stores.append(BankKeyStore(secret, design.n, design.k, rng))
        self._current = 0
        self.accesses = 0

    # ------------------------------------------------------------------
    @property
    def current_copy(self) -> int:
        return self._current

    @property
    def is_exhausted(self) -> bool:
        return self._current >= len(self._banks)

    @property
    def device_count(self) -> int:
        return self.design.total_devices

    def read_key(self) -> bytes:
        """One physical access to the protected secret.

        Actuates the active bank; recovers the secret from the shares
        behind the switches that closed.  Falls over to the next copy when
        the active bank dies, and raises :class:`DeviceWornOutError` once
        every copy is exhausted - the phone is then permanently locked.
        """
        self.accesses += 1
        while self._current < len(self._banks):
            bank = self._banks[self._current]
            closed = bank.access()
            if len(closed) >= bank.k:
                return self._stores[self._current].recover(closed)
            self._current += 1
        raise DeviceWornOutError(
            f"limited-use connection exhausted after {self.accesses} "
            f"accesses (bound {self.design.access_bound})")
