"""Resilient access layer: retry, quarantine, and RS degradation.

:class:`~repro.connection.architecture.LimitedUseConnection` assumes the
fail-secure fault model of the paper: a key read either succeeds or the
bank is dead.  Under the realistic faults of :mod:`repro.faults`
(transient misfires, readout timeouts, bit-flipped shares, stiction)
that is no longer true - a read can fail *transiently*, or worse,
Shamir recovery can silently return a wrong secret from a corrupted
share.  :class:`ResilientAccessController` hardens the access path:

- **bounded retry with backoff** - a failed read is retried up to
  ``RetryPolicy.max_attempts`` times; each retry honestly actuates (and
  wears) hardware, and the simulated exponential backoff is accumulated
  in the stats instead of sleeping;
- **health tracking and quarantine** - each copy tracks consecutive
  suspect failures (corruption, timeouts, decode failures).  A copy
  exceeding ``quarantine_after`` is quarantined: it is skipped even
  though it may be physically alive, trading residual budget for trust;
- **integrity-checked recovery with graceful degradation** - every
  recovered secret is verified against a SHA-256 digest stored at
  provisioning (a key-check value, standard practice in HSMs).  On a
  digest mismatch the controller falls back from Shamir to the bank's
  Reed-Solomon encoding, which corrects corrupted shares whenever
  ``2 * errors <= n - k - missing``; beyond that radius it raises a
  context-rich :class:`~repro.errors.DecodingFailure` rather than ever
  returning a wrong secret.

The RS fallback stores a second, erasure-coded share behind each switch.
RS sharing is *not* hiding against partial capture, so enabling it
(``rs_fallback=True``, the default) trades some of Shamir's
information-theoretic secrecy for availability under corruption; pass
``rs_fallback=False`` to keep the pure-Shamir story.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.connection.keystore import BankKeyStore
from repro.core.degradation import DesignPoint
from repro.core.hardware import SimulatedBank
from repro.core.variation import NoVariation, ProcessVariation
from repro.engine.state import WearState
from repro.errors import (
    CodingError,
    ConfigurationError,
    DecodingFailure,
    DeviceWornOutError,
    InsufficientSharesError,
)
from repro.obs.recorder import OBS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.hooks import FaultHook

__all__ = ["RetryPolicy", "CopyHealth", "AccessStats",
           "ResilientAccessController"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry and quarantine knobs for the access controller."""

    #: Total read attempts per ``read_key`` call (first try included).
    max_attempts: int = 4
    #: Simulated backoff before retry i is ``backoff_base_s * factor**i``.
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0
    #: Consecutive suspect failures before a copy is quarantined.
    quarantine_after: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "need backoff_base_s >= 0 and backoff_factor >= 1")
        if self.quarantine_after < 1:
            raise ConfigurationError("quarantine_after must be >= 1")

    def backoff_s(self, retry_index: int) -> float:
        """Simulated wait before the ``retry_index``-th retry (0-based)."""
        return self.backoff_base_s * self.backoff_factor ** retry_index


@dataclass
class CopyHealth:
    """Per-copy health ledger driving the quarantine decision."""

    bank_id: int
    successes: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    degraded_recoveries: int = 0
    quarantined: bool = False
    dead: bool = False

    @property
    def available(self) -> bool:
        return not (self.dead or self.quarantined)

    def note_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0

    def note_failure(self, quarantine_after: int) -> bool:
        """Record one suspect failure; returns True if this quarantines."""
        self.failures += 1
        self.consecutive_failures += 1
        if (not self.quarantined
                and self.consecutive_failures >= quarantine_after):
            self.quarantined = True
            return True
        return False


@dataclass
class AccessStats:
    """Aggregate outcome counters for one controller instance."""

    calls: int = 0
    successes: int = 0
    attempts: int = 0
    retries: int = 0
    degraded_recoveries: int = 0
    corruption_detected: int = 0
    quarantines: int = 0
    fallovers: int = 0
    backoff_total_s: float = 0.0

    @property
    def availability(self) -> float:
        """Fraction of ``read_key`` calls that returned the secret."""
        return self.successes / self.calls if self.calls else 1.0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "successes": self.successes,
            "attempts": self.attempts,
            "retries": self.retries,
            "degraded_recoveries": self.degraded_recoveries,
            "corruption_detected": self.corruption_detected,
            "quarantines": self.quarantines,
            "fallovers": self.fallovers,
            "backoff_total_s": self.backoff_total_s,
            "availability": self.availability,
        }


class ResilientAccessController:
    """A hardened limited-use connection: retries, quarantine, RS fallback.

    Drop-in alternative to
    :class:`~repro.connection.architecture.LimitedUseConnection` with the
    same fabrication inputs plus a fault hook and a retry policy.  The
    cryptographic guarantee is strengthened from "recovers the secret
    when k switches close" to "never returns a *wrong* secret, and
    recovers the right one through RS error correction whenever the
    corruption is within ``2 * errors <= n - k - missing``".
    """

    def __init__(self, design: DesignPoint, secret: bytes,
                 rng: np.random.Generator,
                 variation: ProcessVariation | None = None,
                 fault_hook: "FaultHook | None" = None,
                 policy: RetryPolicy | None = None,
                 rs_fallback: bool = True,
                 vectorized: bool = False) -> None:
        self.design = design
        self.policy = policy or RetryPolicy()
        self.stats = AccessStats()
        self._digest = hashlib.sha256(secret).digest()
        self._fault_hook = fault_hook
        rs_possible = rs_fallback and design.k > 1 and design.n <= 255
        self.rs_fallback = rs_possible
        # ``vectorized`` swaps the per-switch scalar hook loop and the
        # per-share readout loop for batched engine hooks - bit-identical
        # by the repro.engine.hooks contract (pinned in
        # tests/differential), so campaigns use it by default.
        vector_hook = None
        if vectorized and fault_hook is not None:
            from repro.engine.hooks import vector_hook_for

            vector_hook = vector_hook_for(fault_hook)
        batched = vectorized and fault_hook is not None
        variation = variation or NoVariation()
        # One shared engine state backs every copy; lifetimes are drawn
        # per copy, interleaved with the keystore splits, preserving the
        # scalar fabrication stream bit-for-bit.
        lifetimes = np.empty((1, design.copies, design.n))
        self._stores: list[BankKeyStore] = []
        self._rs_stores: list[BankKeyStore | None] = []
        self._health: list[CopyHealth] = []
        for copy in range(design.copies):
            lifetimes[0, copy] = variation.sample_lifetimes(
                design.device, design.n, rng)
            self._stores.append(
                BankKeyStore(secret, design.n, design.k, rng,
                             bank_id=copy, fault_hook=fault_hook,
                             batched_readout=batched))
            self._rs_stores.append(
                BankKeyStore(secret, design.n, design.k, rng, scheme="rs",
                             bank_id=copy, fault_hook=fault_hook,
                             batched_readout=batched)
                if rs_possible else None)
            self._health.append(CopyHealth(bank_id=copy))
        self._state = WearState(lifetimes, design.k)
        self._banks = [
            SimulatedBank.from_state(self._state, 0, copy,
                                     fault_hook=fault_hook,
                                     vector_hook=vector_hook)
            for copy in range(design.copies)]
        self.accesses = 0
        # First candidate for ``current_copy``.  Dead and quarantined
        # flags are latched (never cleared), so availability is monotone
        # and the scan can resume where it last stopped instead of
        # walking every health record on each access.
        self._first_copy = 0

    # ------------------------------------------------------------------
    @property
    def health(self) -> list[CopyHealth]:
        return self._health

    @property
    def current_copy(self) -> int | None:
        """Index of the first copy still in service (None if none)."""
        health = self._health
        i = self._first_copy
        ncopies = len(health)
        while i < ncopies and not health[i].available:
            i += 1
        self._first_copy = i
        return health[i].bank_id if i < ncopies else None

    @property
    def is_exhausted(self) -> bool:
        return self.current_copy is None

    @property
    def quarantined_copies(self) -> list[int]:
        return [h.bank_id for h in self._health if h.quarantined]

    # ------------------------------------------------------------------
    def _verify(self, candidate: bytes) -> bool:
        return hashlib.sha256(candidate).digest() == self._digest

    def _recover_with_degradation(self, copy: int,
                                  closed: list[int]) -> bytes:
        """Primary recovery, integrity check, RS fallback.

        Raises :class:`DecodingFailure` (context-rich) when the secret
        cannot be recovered *correctly* - never returns a wrong secret.
        """
        primary = self._stores[copy]
        candidate = primary.recover(closed)
        if self._verify(candidate):
            return candidate
        # Corruption detected: the shares decoded but the secret is wrong.
        self.stats.corruption_detected += 1
        if OBS.enabled:
            OBS.metrics.inc("resilient.corruption_detected")
        rs_store = self._rs_stores[copy]
        if rs_store is not None:
            recovered = rs_store.recover(closed)  # error-correcting decode
            if self._verify(recovered):
                self.stats.degraded_recoveries += 1
                self._health[copy].degraded_recoveries += 1
                if OBS.enabled:
                    OBS.metrics.inc("resilient.degraded_recoveries")
                    OBS.event("resilient.shamir_to_rs", bank_id=copy,
                              live_shares=len(closed))
                return recovered
        detail = ("the RS fallback could not correct it"
                  if rs_store is not None
                  else "no RS fallback is provisioned")
        raise DecodingFailure(
            f"bank {copy}: recovered secret failed its integrity check "
            f"and {detail} ({len(closed)} live shares, k={primary.k}, "
            f"n={primary.n})",
            bank_id=copy, n=primary.n, k=primary.k)

    def read_key(self) -> bytes:
        """One access to the protected secret, with retries.

        Raises :class:`DeviceWornOutError` once every copy is dead or
        quarantined, and a :class:`CodingError` subclass when the retry
        budget is exhausted on transient/corruption failures.
        """
        self.accesses += 1
        self.stats.calls += 1
        if OBS.enabled:
            OBS.metrics.inc("resilient.calls")
        last_error: CodingError | None = None
        attempts_left = self.policy.max_attempts
        while attempts_left > 0:
            copy = self.current_copy
            if copy is None:
                break
            attempts_left -= 1
            self.stats.attempts += 1
            bank = self._banks[copy]
            health = self._health[copy]
            closed = bank.access()
            if bank.is_dead and len(closed) < bank.k:
                # Physical wearout: fall over to the next copy.  The
                # fall-over itself does not consume the retry budget
                # beyond the attempt just spent.
                health.dead = True
                self.stats.fallovers += 1
                if OBS.enabled:
                    OBS.metrics.inc("resilient.fallovers")
                    OBS.metrics.set_gauge("resilient.dead_copies",
                                          sum(h.dead for h in self._health))
                continue
            try:
                secret = self._recover_with_degradation(copy, closed)
            except (InsufficientSharesError, DecodingFailure) as exc:
                last_error = exc
                if health.note_failure(self.policy.quarantine_after):
                    self.stats.quarantines += 1
                    if OBS.enabled:
                        OBS.metrics.inc("resilient.quarantines")
                        OBS.event("resilient.quarantined", bank_id=copy,
                                  consecutive_failures=
                                  health.consecutive_failures)
                if attempts_left > 0:
                    retry_index = self.policy.max_attempts - 1 - attempts_left
                    backoff = self.policy.backoff_s(retry_index)
                    self.stats.backoff_total_s += backoff
                    self.stats.retries += 1
                    if OBS.enabled:
                        OBS.metrics.inc("resilient.retries")
                        OBS.metrics.observe("resilient.backoff_s", backoff)
                continue
            health.note_success()
            self.stats.successes += 1
            if OBS.enabled:
                OBS.metrics.inc("resilient.successes")
            return secret
        if self.is_exhausted:
            raise DeviceWornOutError(
                f"resilient connection exhausted after {self.accesses} "
                f"accesses: {sum(h.dead for h in self._health)} copies "
                f"worn out, {len(self.quarantined_copies)} quarantined "
                f"(bound {self.design.access_bound})")
        assert last_error is not None
        raise last_error
