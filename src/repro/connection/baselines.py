"""Software-counter baseline and its published bypasses (Section 4 intro).

The motivating weakness: iOS-style retry limiting is a *software* policy
(wipe after 10 failures, escalating delays).  Published attacks defeat the
counter itself:

- the MDSec power-cut attack races the counter update: cut power after the
  validation result but before the counter increments;
- NAND mirroring (Skorobogatov) restores the counter state from a backup
  image every few attempts;
- unauthenticated firmware updates can disable the guard logic entirely.

:class:`SoftwareCounterPhone` implements the policy and the bypass hooks
so experiments can show the contrast: bypassed software counters allow
unlimited attempts, while the limited-use connection's bound is physical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.modes import derive_key, seal, unseal
from repro.errors import AuthenticationError, ConfigurationError, ReproError

__all__ = ["PhoneWipedError", "SoftwareCounterPhone", "NANDImage"]


class PhoneWipedError(ReproError):
    """The retry policy fired and the device erased its storage."""


@dataclass
class NANDImage:
    """A snapshot of the phone's mutable counter state (mirroring attack)."""

    failed_attempts: int


class SoftwareCounterPhone:
    """Passcode validation guarded only by a software retry counter."""

    def __init__(self, passcode: str, storage_plaintext: bytes,
                 rng: np.random.Generator, wipe_after: int = 10) -> None:
        if wipe_after < 1:
            raise ConfigurationError("wipe_after must be >= 1")
        salt = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        self._salt = salt
        self._sealed = seal(derive_key(passcode, salt), b"\x00" * 8,
                            storage_plaintext)
        self.wipe_after = wipe_after
        self.failed_attempts = 0
        self.wiped = False
        self.total_attempts = 0

    # ------------------------------------------------------------------
    def login(self, passcode: str, power_cut_bypass: bool = False,
              ) -> bytes | None:
        """One login attempt under the software policy.

        ``power_cut_bypass=True`` models the MDSec attack: the validation
        result is observed but power is cut before the counter increments,
        so failures are never recorded.  Returns the plaintext on success,
        None on failure; raises :class:`PhoneWipedError` once wiped.
        """
        if self.wiped:
            raise PhoneWipedError("storage was erased by the retry policy")
        self.total_attempts += 1
        try:
            plaintext = unseal(derive_key(passcode, self._salt),
                               b"\x00" * 8, self._sealed)
        except AuthenticationError:
            if not power_cut_bypass:
                self.failed_attempts += 1
                if self.failed_attempts >= self.wipe_after:
                    self.wiped = True
            return None
        self.failed_attempts = 0
        return plaintext

    # ------------------------------------------------------------------
    # NAND mirroring bypass
    # ------------------------------------------------------------------
    def snapshot_nand(self) -> NANDImage:
        """Image the counter state (taken once, before attacking)."""
        return NANDImage(failed_attempts=self.failed_attempts)

    def restore_nand(self, image: NANDImage) -> None:
        """Restore the counter from a backup image, un-wiping the policy.

        Models Skorobogatov's iPhone 5c NAND mirroring: the guard state is
        external and replayable, so the wipe threshold never accumulates.
        """
        self.failed_attempts = image.failed_attempts
        self.wiped = False
