"""Binding secret shares to the switches of a parallel bank.

Each copy of the limited-use connection holds an independent Shamir split
of the protected secret: share ``i`` sits behind switch ``i``, so an
access that closes fewer than ``k`` switches physically cannot recover
the secret - the k-of-n semantics are cryptographic, not just counted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.codes.shamir import recover_from_pairs, split_secret
from repro.codes.shamir16 import (
    MAX_SHARES16,
    Share16,
    recover_secret16,
    split_secret16,
)
from repro.codes.threshold import _rs_code, rs_recover_chunks, rs_split_secret
from repro.gf.field import GF_RS
from repro.errors import (
    ConfigurationError,
    DecodingFailure,
    InsufficientSharesError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.hooks import FaultHook

__all__ = ["BankKeyStore"]


class BankKeyStore:
    """The ``n`` shares of one parallel bank (threshold ``k``).

    For the unencoded architecture (k = 1) every "share" is the secret
    itself - any single live switch suffices, exactly as Figure 2c wires
    it.

    Encoded banks support two schemes:

    - ``"shamir"`` (default) - information-theoretically hiding; shards
      over GF(2^8) when n <= 255 and over GF(2^16) for the wide banks
      high-variation devices need (beta = 4 designs reach n > 1000);
    - ``"rs"`` - Reed-Solomon erasure coding (n <= 255): not hiding
      against partial capture, but tolerant of *corrupted* shares - a
      decaying register returning flipped bits is corrected as long as
      ``2 * errors <= n - k - missing``, where Shamir would silently
      reconstruct garbage.  Section 4.1.4 treats the schemes as
      interchangeable; this makes the actual trade-off explicit.

    ``bank_id`` tags errors with the copy this store belongs to, and
    ``fault_hook`` (a :class:`repro.faults.FaultModel`) is consulted on
    every share readout so fault campaigns can corrupt or time out the
    register path; with no hook attached readout is a plain list index.
    ``batched_readout`` routes each recovery's readouts through the
    hook's batched ``on_shares_readout`` site in one call instead of a
    per-share Python loop - bit-identical for every shipped injector by
    the :mod:`repro.faults.injectors` substream contract (pinned in
    ``tests/differential``).
    """

    def __init__(self, secret: bytes, n: int, k: int,
                 rng: np.random.Generator, scheme: str = "shamir",
                 bank_id: int = 0,
                 fault_hook: "FaultHook | None" = None,
                 batched_readout: bool = False) -> None:
        if not secret:
            raise ConfigurationError("secret must be non-empty")
        if not 1 <= k <= n:
            raise ConfigurationError(f"need 1 <= k <= n, got k={k}, n={n}")
        if scheme not in ("shamir", "rs"):
            raise ConfigurationError(f"unknown scheme {scheme!r}")
        self.n = n
        self.k = k
        self.scheme = scheme
        self.bank_id = bank_id
        self.fault_hook = fault_hook
        self.batched_readout = (batched_readout and fault_hook is not None
                                and hasattr(fault_hook, "on_shares_readout"))
        self._secret_len = len(secret)
        if k == 1:
            self._shares = [secret] * n
            self._mode = "replicas"
        elif scheme == "rs":
            if n > 255:
                raise ConfigurationError(
                    "RS banks support at most 255 shares")
            # RS splitting draws no randomness, so it is deferred to the
            # first readout (see the ``_shares`` property): RS stores
            # back a fallback path most copies never exercise.
            self._rs_source = secret
            self._shares = None
            self._mode = "rs"
        elif n <= 255:
            self._shares = split_secret(secret, k, n, rng)
            self._mode = "gf256"
        elif n <= MAX_SHARES16:
            self._shares = split_secret16(secret, k, n, rng)
            self._mode = "gf65536"
        else:
            raise ConfigurationError(
                f"banks beyond {MAX_SHARES16} shares are not supported")
        # Memoized pristine recoveries keyed by picked-index tuple.
        # An entry is stored/served only when every readout returned the
        # *stored* share object (fault hooks hand back new objects
        # whenever they corrupt), so an identity check proves the inputs
        # - and hence the deterministic recovery - are unchanged since
        # the cached call.
        self._pristine: dict[tuple[int, ...], bytes] = {}
        # The provisioned secret, served directly for pristine readouts
        # of an unmutated store: recovery from any k intact shares of
        # the original split provably returns this exact byte string, so
        # interpolating is pure waste.  Token validation drops it the
        # moment a stored share object is swapped (tests corrupt stores
        # in place), falling back to honest per-tuple recovery.
        self._plain_secret: bytes | None = secret
        # Decoded RS message chunks, cached after the first successful
        # decode: RS correction of any decodable word yields the true
        # message, so later recoveries only re-decode the chunks that
        # corrupted readouts actually touched.
        self._rs_plain: np.ndarray | None = None
        # Identity snapshot of the stored data objects, taken when a
        # cache is first filled.  A stored share swapped afterwards
        # (tests corrupt stores in place) invalidates both caches.
        self._stored_tokens: list | None = None
        # (n_chunks, n) matrix of the stored share symbols - the true
        # codewords, one chunk per row.  Built lazily by ``_recover_rs``
        # and invalidated together with ``_stored_tokens``.
        self._true_matrix: np.ndarray | None = None
        if self._mode in ("gf256", "gf65536"):
            # Arm the token guard from birth so a swapped share is
            # detected on the first recover, not the first cache fill
            # (the plain-secret fast path depends on it).
            self._stored_tokens = [s.data for s in self._shares]

    def _refresh_tokens(self) -> None:
        if self._stored_tokens is None:
            self._stored_tokens = [s.data for s in self._shares]

    def _validate_tokens(self, pairs) -> None:
        """Drop the recovery caches if any stored share backing ``pairs``
        is no longer the object the caches were computed from."""
        tokens = self._stored_tokens
        if tokens is None:
            return
        shares = self._shares
        for i, _ in pairs:
            if shares[i].data is not tokens[i]:
                self._stored_tokens = [s.data for s in shares]
                self._pristine.clear()
                self._plain_secret = None
                self._rs_plain = None
                self._true_matrix = None
                return

    @property
    def _shares(self) -> list:
        shares = self._shares_list
        if shares is None:
            shares = self._shares_list = rs_split_secret(
                self._rs_source, self.k, self.n)
            # Freshly split shares are authoritative, so the decoded
            # chunks are the (padded) source itself; seed the cache and
            # the token snapshot together.  In-place corruption of the
            # store afterwards is caught by ``_validate_tokens``.
            n_chunks = -(-self._secret_len // self.k)
            padded = self._rs_source + b"\x00" * (
                n_chunks * self.k - self._secret_len)
            self._rs_plain = np.frombuffer(
                padded, dtype=np.uint8).reshape(n_chunks, self.k).copy()
            self._stored_tokens = [s.data for s in shares]
        return shares

    @_shares.setter
    def _shares(self, value) -> None:
        self._shares_list = value

    def _share_data(self, index: int) -> bytes:
        """Raw stored share bytes, before any fault injection."""
        return (self._shares[index] if self._mode == "replicas"
                else self._shares[index].data)

    def _read_share_data(self, index: int) -> bytes | None:
        """One register readout, through the fault hook when attached.

        Returns None when an injected timeout loses the share for this
        attempt (the caller treats it as missing, not corrupt).
        """
        data = self._share_data(index)
        if self.fault_hook is None:
            return data
        return self.fault_hook.on_share_readout(self.bank_id, index, data)

    def recover(self, live_indices: list[int]) -> bytes:
        """Recover the secret from the switches that closed.

        ``live_indices`` are 0-based switch positions.  Raises
        :class:`InsufficientSharesError` (with structured context: shares
        supplied vs threshold, bank id, timeout count) below the
        threshold.  The RS scheme uses *all* live shares and corrects
        corrupted ones within the code's radius; Shamir uses the first k.
        """
        if len(live_indices) < self.k:
            raise InsufficientSharesError(
                f"bank {self.bank_id}: only {len(live_indices)} live "
                f"switches, need k={self.k}",
                supplied=len(live_indices), required=self.k,
                bank_id=self.bank_id)
        if min(live_indices) < 0 or max(live_indices) >= self.n:
            raise ConfigurationError("switch index out of range")

        if self.batched_readout:
            shares = self._shares
            raw = ([shares[i] for i in live_indices]
                   if self._mode == "replicas"
                   else [shares[i].data for i in live_indices])
            datas = self.fault_hook.on_shares_readout(
                self.bank_id, live_indices, raw)
            if None in datas:
                live = [(i, data) for i, data in zip(live_indices, datas)
                        if data is not None]
            else:
                live = list(zip(live_indices, datas))
        else:
            live = [(i, data) for i, data in
                    ((i, self._read_share_data(i)) for i in live_indices)
                    if data is not None]
        timeouts = len(live_indices) - len(live)
        if len(live) < self.k:
            raise InsufficientSharesError(
                f"bank {self.bank_id}: {len(live_indices)} switches closed "
                f"but {timeouts} share readouts timed out, leaving "
                f"{len(live)} < k={self.k}",
                supplied=len(live), required=self.k, bank_id=self.bank_id,
                timeouts=timeouts)

        if self._mode == "replicas":
            return live[0][1]
        if self._mode == "rs":
            try:
                return self._recover_rs(live)
            except DecodingFailure as exc:
                raise DecodingFailure(
                    f"bank {self.bank_id}: {len(live)} live shares exceed "
                    f"the RS({self.n}, {self.k}) correction radius: {exc}",
                    bank_id=self.bank_id, n=self.n, k=self.k) from exc
        picked = live[:self.k]
        shares = self._shares
        pristine = True
        for i, data in picked:
            if data is not shares[i].data:
                pristine = False
                break
        if pristine:
            self._validate_tokens(picked)
            plain = self._plain_secret
            if plain is not None:
                # Untouched readouts of an unmutated store: the
                # interpolation result is provably the provisioned
                # secret, byte for byte.
                return plain
            key = tuple([i for i, _ in picked])
            cached = self._pristine.get(key)
            if cached is not None:
                return cached
        if self._mode == "gf256":
            secret = recover_from_pairs(tuple([i + 1 for i, _ in picked]),
                                        [data for _, data in picked])
        else:
            chosen16 = [Share16(index=i + 1, data=data)
                        for i, data in picked]
            secret = recover_secret16(chosen16, k=self.k,
                                      secret_len=self._secret_len)
        if pristine:
            if len(self._pristine) > 256:
                self._pristine.clear()
            self._pristine[key] = secret
            self._refresh_tokens()
        return secret

    def _recover_rs(self, live: list[tuple[int, bytes]]) -> bytes:
        """RS recovery with chunk-level re-decode avoidance.

        The first successful decode caches the message array (RS
        correction of any decodable word yields the true message).
        Afterwards, a chunk needs re-decoding only if a corrupted
        readout (a data object that is not the stored share's) touched
        one of its symbols: an untouched chunk is a true codeword under
        erasures, whose decode provably returns the cached message and
        cannot fail while the erasure count stays within ``parity``
        (guaranteed here, since ``len(live) >= k`` was already checked).
        """
        if self._rs_plain is not None:
            self._validate_tokens(live)
        plain = self._rs_plain
        if plain is None:
            msgs = rs_recover_chunks(dict(live), self.k, self.n,
                                     correct_errors=True)
            self._rs_plain = msgs
            self._refresh_tokens()
            return msgs.tobytes()[:self._secret_len]
        shares = self._shares
        touched: list[tuple[int, np.ndarray, np.ndarray]] = []
        for i, data in live:
            stored = shares[i].data
            if data is stored:
                continue
            if len(data) != len(stored):
                # Length drift: fall back to the validating full decode.
                return rs_recover_chunks(dict(live), self.k, self.n,
                                         correct_errors=True
                                         ).tobytes()[:self._secret_len]
            arr = np.frombuffer(data, dtype=np.uint8)
            diff = arr != np.frombuffer(stored, dtype=np.uint8)
            if diff.any():
                touched.append((i, arr, diff))
        if not touched:
            return plain.tobytes()[:self._secret_len]
        # Chunks touched by a corrupted readout, and each chunk's error
        # count e (corrupted symbols among the live shares).  With f
        # erasures, 2e + f <= parity puts the word inside the unique
        # decoding radius, where errors-and-erasures decoding provably
        # returns the true codeword - which is the cached message, so no
        # decode is needed.  Only chunks beyond the radius are handed to
        # the real decoder (whose failure/miscorrection behaviour this
        # path must preserve).
        union = touched[0][2].copy()
        for _, _, diff in touched[1:]:
            union |= diff
        cc = np.flatnonzero(union)
        errors = np.zeros(cc.size, dtype=np.int64)
        for _, _, diff in touched:
            errors += diff[cc]
        live_set = {i for i, _ in live}
        erasures = [i for i in range(self.n) if i not in live_set]
        code = _rs_code(self.n, self.k, GF_RS)
        out = plain.copy()
        beyond = 2 * errors + len(erasures) > code.parity
        if beyond.any():
            bad = cc[beyond]
            tm = self._true_matrix
            if tm is None:
                tm = self._true_matrix = np.stack(
                    [np.frombuffer(s.data, dtype=np.uint8)
                     for s in shares], axis=1)
            words = tm[bad].copy()
            for i, arr, _ in touched:
                words[:, i] = arr[bad]
            if erasures:
                words[:, erasures] = 0
            out[bad] = code.decode_many(words, erasures, max_errors=None)
        return out.tobytes()[:self._secret_len]
