"""Binding secret shares to the switches of a parallel bank.

Each copy of the limited-use connection holds an independent Shamir split
of the protected secret: share ``i`` sits behind switch ``i``, so an
access that closes fewer than ``k`` switches physically cannot recover
the secret - the k-of-n semantics are cryptographic, not just counted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.codes.shamir import Share, recover_secret, split_secret
from repro.codes.shamir16 import (
    MAX_SHARES16,
    Share16,
    recover_secret16,
    split_secret16,
)
from repro.codes.threshold import rs_recover_secret, rs_split_secret
from repro.errors import (
    ConfigurationError,
    DecodingFailure,
    InsufficientSharesError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.hooks import FaultHook

__all__ = ["BankKeyStore"]


class BankKeyStore:
    """The ``n`` shares of one parallel bank (threshold ``k``).

    For the unencoded architecture (k = 1) every "share" is the secret
    itself - any single live switch suffices, exactly as Figure 2c wires
    it.

    Encoded banks support two schemes:

    - ``"shamir"`` (default) - information-theoretically hiding; shards
      over GF(2^8) when n <= 255 and over GF(2^16) for the wide banks
      high-variation devices need (beta = 4 designs reach n > 1000);
    - ``"rs"`` - Reed-Solomon erasure coding (n <= 255): not hiding
      against partial capture, but tolerant of *corrupted* shares - a
      decaying register returning flipped bits is corrected as long as
      ``2 * errors <= n - k - missing``, where Shamir would silently
      reconstruct garbage.  Section 4.1.4 treats the schemes as
      interchangeable; this makes the actual trade-off explicit.

    ``bank_id`` tags errors with the copy this store belongs to, and
    ``fault_hook`` (a :class:`repro.faults.FaultModel`) is consulted on
    every share readout so fault campaigns can corrupt or time out the
    register path; with no hook attached readout is a plain list index.
    """

    def __init__(self, secret: bytes, n: int, k: int,
                 rng: np.random.Generator, scheme: str = "shamir",
                 bank_id: int = 0,
                 fault_hook: "FaultHook | None" = None) -> None:
        if not secret:
            raise ConfigurationError("secret must be non-empty")
        if not 1 <= k <= n:
            raise ConfigurationError(f"need 1 <= k <= n, got k={k}, n={n}")
        if scheme not in ("shamir", "rs"):
            raise ConfigurationError(f"unknown scheme {scheme!r}")
        self.n = n
        self.k = k
        self.scheme = scheme
        self.bank_id = bank_id
        self.fault_hook = fault_hook
        self._secret_len = len(secret)
        if k == 1:
            self._shares = [secret] * n
            self._mode = "replicas"
        elif scheme == "rs":
            if n > 255:
                raise ConfigurationError(
                    "RS banks support at most 255 shares")
            self._shares = rs_split_secret(secret, k, n)
            self._mode = "rs"
        elif n <= 255:
            self._shares = split_secret(secret, k, n, rng)
            self._mode = "gf256"
        elif n <= MAX_SHARES16:
            self._shares = split_secret16(secret, k, n, rng)
            self._mode = "gf65536"
        else:
            raise ConfigurationError(
                f"banks beyond {MAX_SHARES16} shares are not supported")

    def _read_share_data(self, index: int) -> bytes | None:
        """One register readout, through the fault hook when attached.

        Returns None when an injected timeout loses the share for this
        attempt (the caller treats it as missing, not corrupt).
        """
        data = (self._shares[index] if self._mode == "replicas"
                else self._shares[index].data)
        if self.fault_hook is None:
            return data
        return self.fault_hook.on_share_readout(self.bank_id, index, data)

    def recover(self, live_indices: list[int]) -> bytes:
        """Recover the secret from the switches that closed.

        ``live_indices`` are 0-based switch positions.  Raises
        :class:`InsufficientSharesError` (with structured context: shares
        supplied vs threshold, bank id, timeout count) below the
        threshold.  The RS scheme uses *all* live shares and corrects
        corrupted ones within the code's radius; Shamir uses the first k.
        """
        if len(live_indices) < self.k:
            raise InsufficientSharesError(
                f"bank {self.bank_id}: only {len(live_indices)} live "
                f"switches, need k={self.k}",
                supplied=len(live_indices), required=self.k,
                bank_id=self.bank_id)
        if any(not 0 <= i < self.n for i in live_indices):
            raise ConfigurationError("switch index out of range")

        readouts = [(i, self._read_share_data(i)) for i in live_indices]
        timeouts = sum(1 for _, data in readouts if data is None)
        live = [(i, data) for i, data in readouts if data is not None]
        if len(live) < self.k:
            raise InsufficientSharesError(
                f"bank {self.bank_id}: {len(readouts)} switches closed but "
                f"{timeouts} share readouts timed out, leaving {len(live)} "
                f"< k={self.k}",
                supplied=len(live), required=self.k, bank_id=self.bank_id,
                timeouts=timeouts)

        if self._mode == "replicas":
            return live[0][1]
        if self._mode == "rs":
            chosen = [Share(index=i + 1, data=data) for i, data in live]
            try:
                return rs_recover_secret(chosen, self.k, self.n,
                                         secret_len=self._secret_len,
                                         correct_errors=True)
            except DecodingFailure as exc:
                raise DecodingFailure(
                    f"bank {self.bank_id}: {len(live)} live shares exceed "
                    f"the RS({self.n}, {self.k}) correction radius: {exc}",
                    bank_id=self.bank_id, n=self.n, k=self.k) from exc
        if self._mode == "gf256":
            chosen = [Share(index=i + 1, data=data)
                      for i, data in live[:self.k]]
            return recover_secret(chosen, k=self.k)
        chosen16 = [Share16(index=i + 1, data=data)
                    for i, data in live[:self.k]]
        return recover_secret16(chosen16, k=self.k,
                                secret_len=self._secret_len)
