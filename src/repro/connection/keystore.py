"""Binding secret shares to the switches of a parallel bank.

Each copy of the limited-use connection holds an independent Shamir split
of the protected secret: share ``i`` sits behind switch ``i``, so an
access that closes fewer than ``k`` switches physically cannot recover
the secret - the k-of-n semantics are cryptographic, not just counted.
"""

from __future__ import annotations

import numpy as np

from repro.codes.shamir import Share, recover_secret, split_secret
from repro.codes.shamir16 import (
    MAX_SHARES16,
    recover_secret16,
    split_secret16,
)
from repro.codes.threshold import rs_recover_secret, rs_split_secret
from repro.errors import ConfigurationError, InsufficientSharesError

__all__ = ["BankKeyStore"]


class BankKeyStore:
    """The ``n`` shares of one parallel bank (threshold ``k``).

    For the unencoded architecture (k = 1) every "share" is the secret
    itself - any single live switch suffices, exactly as Figure 2c wires
    it.

    Encoded banks support two schemes:

    - ``"shamir"`` (default) - information-theoretically hiding; shards
      over GF(2^8) when n <= 255 and over GF(2^16) for the wide banks
      high-variation devices need (beta = 4 designs reach n > 1000);
    - ``"rs"`` - Reed-Solomon erasure coding (n <= 255): not hiding
      against partial capture, but tolerant of *corrupted* shares - a
      decaying register returning flipped bits is corrected as long as
      ``2 * errors <= n - k - missing``, where Shamir would silently
      reconstruct garbage.  Section 4.1.4 treats the schemes as
      interchangeable; this makes the actual trade-off explicit.
    """

    def __init__(self, secret: bytes, n: int, k: int,
                 rng: np.random.Generator, scheme: str = "shamir") -> None:
        if not secret:
            raise ConfigurationError("secret must be non-empty")
        if not 1 <= k <= n:
            raise ConfigurationError(f"need 1 <= k <= n, got k={k}, n={n}")
        if scheme not in ("shamir", "rs"):
            raise ConfigurationError(f"unknown scheme {scheme!r}")
        self.n = n
        self.k = k
        self.scheme = scheme
        self._secret_len = len(secret)
        if k == 1:
            self._shares = [secret] * n
            self._mode = "replicas"
        elif scheme == "rs":
            if n > 255:
                raise ConfigurationError(
                    "RS banks support at most 255 shares")
            self._shares = rs_split_secret(secret, k, n)
            self._mode = "rs"
        elif n <= 255:
            self._shares = split_secret(secret, k, n, rng)
            self._mode = "gf256"
        elif n <= MAX_SHARES16:
            self._shares = split_secret16(secret, k, n, rng)
            self._mode = "gf65536"
        else:
            raise ConfigurationError(
                f"banks beyond {MAX_SHARES16} shares are not supported")

    def recover(self, live_indices: list[int]) -> bytes:
        """Recover the secret from the switches that closed.

        ``live_indices`` are 0-based switch positions.  Raises
        :class:`InsufficientSharesError` below the threshold.  The RS
        scheme uses *all* live shares and corrects corrupted ones within
        the code's radius; Shamir uses the first k.
        """
        if len(live_indices) < self.k:
            raise InsufficientSharesError(
                f"only {len(live_indices)} live switches, need {self.k}")
        if any(not 0 <= i < self.n for i in live_indices):
            raise ConfigurationError("switch index out of range")
        if self._mode == "replicas":
            return self._shares[live_indices[0]]
        if self._mode == "rs":
            chosen = [self._shares[i] for i in live_indices]
            return rs_recover_secret(chosen, self.k, self.n,
                                     secret_len=self._secret_len,
                                     correct_errors=True)
        chosen = [self._shares[i] for i in live_indices[:self.k]]
        if self._mode == "gf256":
            return recover_secret(chosen, k=self.k)
        return recover_secret16(chosen, k=self.k,
                                secret_len=self._secret_len)
