"""End-to-end smartphone login flow over the limited-use connection.

The storage-decryption chain follows Section 4: the disk is sealed under
a key derived from *both* the user passcode and a hardware key that lives
behind the limited-use connection.  Validating a passcode therefore
requires one physical access - right or wrong - which is exactly the
property that defeats offline brute force.

:class:`MWayPhone` adds Section 4.1.5's module replication: M connections
consumed serially, with a fresh passcode and storage re-encryption at
every migration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.connection.architecture import LimitedUseConnection
from repro.core.degradation import DesignPoint
from repro.core.variation import ProcessVariation
from repro.crypto.modes import derive_key, seal, unseal
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    DeviceWornOutError,
)

__all__ = ["LoginResult", "SecurePhone", "MWayPhone"]

_NONCE = b"\x00" * 8  # storage is re-sealed with a fresh key per epoch


@dataclass(frozen=True)
class LoginResult:
    """Outcome of one login attempt."""

    success: bool
    plaintext: bytes | None = None


class SecurePhone:
    """A phone whose storage key is guarded by a limited-use connection."""

    def __init__(self, design: DesignPoint, passcode: str,
                 storage_plaintext: bytes, rng: np.random.Generator,
                 variation: ProcessVariation | None = None) -> None:
        if not passcode:
            raise ConfigurationError("passcode must be non-empty")
        self._rng = rng
        # The hardware key never leaves the connection unencoded storage;
        # the disk key binds passcode and hardware key together.
        hardware_key = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        self.connection = LimitedUseConnection(design, hardware_key, rng,
                                               variation)
        disk_key = derive_key(passcode, salt=hardware_key)
        self._sealed_storage = seal(disk_key, _NONCE, storage_plaintext)

    # ------------------------------------------------------------------
    @property
    def is_bricked(self) -> bool:
        """True once the connection has worn out: storage is gone forever."""
        return self.connection.is_exhausted

    @property
    def login_attempts(self) -> int:
        return self.connection.accesses

    def login(self, passcode: str) -> LoginResult:
        """Attempt to unlock the phone.

        Every attempt - correct or not - traverses the hardware, spending
        one of the connection's bounded accesses.  Raises
        :class:`DeviceWornOutError` once the hardware is exhausted.
        """
        hardware_key = self.connection.read_key()  # may raise DeviceWornOut
        disk_key = derive_key(passcode, salt=hardware_key)
        try:
            plaintext = unseal(disk_key, _NONCE, self._sealed_storage)
        except AuthenticationError:
            return LoginResult(success=False)
        return LoginResult(success=True, plaintext=plaintext)

    def change_passcode(self, old_passcode: str, new_passcode: str) -> bool:
        """Re-seal storage under a new passcode (same hardware module).

        Costs exactly one hardware access (the storage must be decrypted
        to re-encrypt it); the hardware key itself never changes - only
        an M-way migration retires it.  Returns False (with the access
        spent) when the old passcode is wrong.
        """
        if not new_passcode:
            raise ConfigurationError("new passcode must be non-empty")
        hardware_key = self.connection.read_key()
        old_key = derive_key(old_passcode, salt=hardware_key)
        try:
            plaintext = unseal(old_key, _NONCE, self._sealed_storage)
        except AuthenticationError:
            return False
        new_key = derive_key(new_passcode, salt=hardware_key)
        self._sealed_storage = seal(new_key, _NONCE, plaintext)
        return True


class MWayPhone:
    """M serially-consumed phone modules (Section 4.1.5).

    ``migrate`` moves to the next module: the storage plaintext is
    recovered with the old passcode, the old module is retired, and the
    storage is re-sealed under a new passcode bound to the next module's
    hardware key.
    """

    def __init__(self, designs: list[DesignPoint], passcodes: list[str],
                 storage_plaintext: bytes, rng: np.random.Generator,
                 variation: ProcessVariation | None = None) -> None:
        if not designs:
            raise ConfigurationError("need at least one module design")
        if len(passcodes) != len(designs):
            raise ConfigurationError(
                "need exactly one passcode per module (a migration "
                "requires a fresh passcode)")
        if len(set(passcodes)) != len(passcodes):
            raise ConfigurationError("module passcodes must all differ")
        self._designs = designs
        self._passcodes = passcodes
        self._rng = rng
        self._variation = variation
        self._module_index = 0
        self.migrations = 0
        self._active = SecurePhone(designs[0], passcodes[0],
                                   storage_plaintext, rng, variation)

    @property
    def m(self) -> int:
        return len(self._designs)

    @property
    def active_module(self) -> int:
        return self._module_index

    @property
    def is_bricked(self) -> bool:
        return (self._module_index == self.m - 1
                and self._active.is_bricked)

    def login(self, passcode: str) -> LoginResult:
        """Login against the active module."""
        return self._active.login(passcode)

    def migrate(self) -> None:
        """Retire the active module and move to the next one.

        Decrypts storage with the active module's passcode (one access),
        then re-provisions on the next module under its passcode.
        """
        if self._module_index >= self.m - 1:
            raise DeviceWornOutError("no modules left to migrate to")
        result = self._active.login(self._passcodes[self._module_index])
        if not result.success:  # pragma: no cover - internal consistency
            raise AuthenticationError("stored passcode failed at migration")
        self._module_index += 1
        self.migrations += 1
        self._active = SecurePhone(
            self._designs[self._module_index],
            self._passcodes[self._module_index],
            result.plaintext, self._rng, self._variation)
