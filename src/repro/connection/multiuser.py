"""Multi-user devices over one limited-use connection.

Shared tablets and enterprise devices have several users with separate
passcodes, all protected by one wearout budget.  The construction is
standard key wrapping on top of the paper's architecture: a random
storage key seals the disk; each user holds a *wrap* of that storage key
under KDF(their passcode, hardware key).  Every login - any user, right
or wrong - still costs exactly one hardware access, so the shared budget
is the security parameter and per-user accounting is purely advisory.

User management respects the wearout economics: enrolling a user costs
one access (the hardware key must be read to build the wrap); revoking
one is free (delete the wrap - the hardware is untouched).

The hardware state behind every login lives in the shared
:class:`~repro.engine.state.WearState` owned by the underlying
:class:`~repro.connection.architecture.LimitedUseConnection`.
"""

from __future__ import annotations

import numpy as np

from repro.connection.architecture import LimitedUseConnection
from repro.connection.phone import LoginResult
from repro.core.degradation import DesignPoint
from repro.core.variation import ProcessVariation
from repro.crypto.modes import derive_key, seal, unseal
from repro.errors import AuthenticationError, ConfigurationError

__all__ = ["SharedPhone"]

_STORAGE_NONCE = b"\x00" * 7 + b"\x01"
_WRAP_NONCE = b"\x00" * 7 + b"\x02"


class SharedPhone:
    """A multi-user device guarded by one limited-use connection."""

    def __init__(self, design: DesignPoint, owner: str, passcode: str,
                 storage_plaintext: bytes, rng: np.random.Generator,
                 variation: ProcessVariation | None = None) -> None:
        if not owner or not passcode:
            raise ConfigurationError("owner name and passcode required")
        hardware_key = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        storage_key = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        self.connection = LimitedUseConnection(design, hardware_key, rng,
                                               variation)
        self._sealed_storage = seal(storage_key, _STORAGE_NONCE,
                                    storage_plaintext)
        self._wraps: dict[str, bytes] = {
            owner: self._make_wrap(passcode, hardware_key, storage_key)
        }
        self.access_ledger: dict[str, int] = {owner: 0}

    @staticmethod
    def _make_wrap(passcode: str, hardware_key: bytes,
                   storage_key: bytes) -> bytes:
        user_key = derive_key(passcode, salt=hardware_key)
        return seal(user_key, _WRAP_NONCE, storage_key)

    # ------------------------------------------------------------------
    @property
    def users(self) -> list[str]:
        return sorted(self._wraps)

    def login(self, user: str, passcode: str) -> LoginResult:
        """One login attempt; spends one shared hardware access."""
        if user not in self._wraps:
            raise ConfigurationError(f"unknown user {user!r}")
        hardware_key = self.connection.read_key()
        self.access_ledger[user] = self.access_ledger.get(user, 0) + 1
        user_key = derive_key(passcode, salt=hardware_key)
        try:
            storage_key = unseal(user_key, _WRAP_NONCE, self._wraps[user])
            plaintext = unseal(storage_key, _STORAGE_NONCE,
                               self._sealed_storage)
        except AuthenticationError:
            return LoginResult(success=False)
        return LoginResult(success=True, plaintext=plaintext)

    def add_user(self, sponsor: str, sponsor_passcode: str,
                 new_user: str, new_passcode: str) -> bool:
        """Enroll a user, authorized by an existing user's passcode.

        Costs one hardware access (the wrap needs the hardware key).
        Returns False - with the access spent - if the sponsor's
        passcode is wrong.
        """
        if sponsor not in self._wraps:
            raise ConfigurationError(f"unknown sponsor {sponsor!r}")
        if not new_user or not new_passcode:
            raise ConfigurationError("new user name and passcode required")
        if new_user in self._wraps:
            raise ConfigurationError(f"user {new_user!r} already enrolled")
        hardware_key = self.connection.read_key()
        self.access_ledger[sponsor] = self.access_ledger.get(sponsor,
                                                             0) + 1
        sponsor_key = derive_key(sponsor_passcode, salt=hardware_key)
        try:
            storage_key = unseal(sponsor_key, _WRAP_NONCE,
                                 self._wraps[sponsor])
        except AuthenticationError:
            return False
        new_key = derive_key(new_passcode, salt=hardware_key)
        self._wraps[new_user] = seal(new_key, _WRAP_NONCE, storage_key)
        self.access_ledger.setdefault(new_user, 0)
        return True

    def remove_user(self, user: str) -> None:
        """Revoke a user: delete the wrap; costs no hardware access.

        The last user cannot be removed (the storage key would become
        unreachable even with valid hardware).
        """
        if user not in self._wraps:
            raise ConfigurationError(f"unknown user {user!r}")
        if len(self._wraps) == 1:
            raise ConfigurationError(
                "cannot remove the last user; the storage would be "
                "orphaned")
        del self._wraps[user]
