"""Terminal plotting: line charts and heatmaps as plain text.

The benchmark harness prints every figure it reproduces; these renderers
make the *shape* of each figure visible in the console (exponential vs
linear growth, success-space regions) without any plotting dependency.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["line_chart", "heatmap", "table"]

#: Shade ramp for heatmaps, light to dark.
_SHADES = " .:-=+*#%@"


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.2e}"
    return f"{value:.4g}"


def line_chart(curves: dict[str, list[tuple[float, float | None]]],
               width: int = 64, height: int = 16,
               log_y: bool = False, title: str = "") -> str:
    """Render one or more (x, y) series as an ASCII chart.

    ``curves`` maps a label to its points; None y-values are gaps.
    Each curve is drawn with its own marker character; a legend follows.
    ``log_y`` plots log10(y), which is how the paper draws Fig. 4a/5a.
    """
    if width < 16 or height < 4:
        raise ConfigurationError("chart needs width >= 16 and height >= 4")
    points = [
        (x, y) for rows in curves.values() for x, y in rows if y is not None
    ]
    if not points:
        raise ConfigurationError("no plottable points")
    if log_y and any(y <= 0 for _, y in points):
        raise ConfigurationError("log_y requires positive y values")

    def transform(y: float) -> float:
        return math.log10(y) if log_y else y

    xs = [x for x, _ in points]
    ys = [transform(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*@#%&"
    legend = []
    for index, (label, rows) in enumerate(curves.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} = {label}")
        for x, y in rows:
            if y is None:
                continue
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((transform(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    top = _format_value(10 ** y_hi if log_y else y_hi)
    bottom = _format_value(10 ** y_lo if log_y else y_lo)
    label_width = max(len(top), len(bottom))
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        prefix = top if i == 0 else bottom if i == height - 1 else ""
        lines.append(f"{prefix:>{label_width}} |" + "".join(row))
    x_axis = f"{'':>{label_width}} +" + "-" * width
    lines.append(x_axis)
    lines.append(f"{'':>{label_width}}  "
                 f"{_format_value(x_lo)}"
                 f"{_format_value(x_hi):>{width - len(_format_value(x_lo))}}")
    lines.append(f"{'':>{label_width}}  " + "   ".join(legend)
                 + ("   (log y)" if log_y else ""))
    return "\n".join(lines)


def table(headers, rows, title: str = "") -> str:
    """Render rows as an aligned text table.

    The first column is left-aligned (names), the rest right-aligned
    (values).  Every row must have one cell per header; cells are
    stringified as-is, so callers control number formatting.
    """
    headers = [str(h) for h in headers]
    body = [[str(cell) for cell in row] for row in rows]
    for row in body:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"table row has {len(row)} cells for {len(headers)} "
                f"headers")
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells) -> str:
        parts = [f"{cells[0]:<{widths[0]}}"]
        parts += [f"{cell:>{widths[i]}}"
                  for i, cell in enumerate(cells) if i > 0]
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)


def heatmap(values, row_labels, col_labels, title: str = "",
            max_value: float = 1.0) -> str:
    """Render a matrix as a shaded ASCII heatmap (used for Figs. 8/9).

    ``values[i][j]`` in [0, max_value] maps onto a 10-step shade ramp;
    row/column labels are printed along the axes.
    """
    rows = [list(row) for row in values]
    if not rows or not rows[0]:
        raise ConfigurationError("heatmap needs a non-empty matrix")
    if len(rows) != len(row_labels) or len(rows[0]) != len(col_labels):
        raise ConfigurationError("labels must match the matrix shape")
    if max_value <= 0:
        raise ConfigurationError("max_value must be > 0")

    def shade(value: float) -> str:
        clamped = min(max(value / max_value, 0.0), 1.0)
        return _SHADES[min(int(clamped * (len(_SHADES) - 1) + 0.5),
                           len(_SHADES) - 1)]

    label_width = max(len(str(lab)) for lab in row_labels)
    cell = max(len(str(lab)) for lab in col_labels) + 1
    lines = []
    if title:
        lines.append(title)
    header = " " * (label_width + 1) + "".join(
        f"{str(lab):>{cell}}" for lab in col_labels)
    lines.append(header)
    for label, row in zip(row_labels, rows):
        body = "".join(f"{shade(v) * 2:>{cell}}" for v in row)
        lines.append(f"{str(label):>{label_width}} {body}")
    lines.append(f"scale: '{_SHADES[0]}'=0 ... '{_SHADES[-1]}'="
                 f"{_format_value(max_value)}")
    return "\n".join(lines)
