"""Dependency-free terminal visualization (ASCII charts and heatmaps)."""

from repro.viz.ascii import heatmap, line_chart

__all__ = ["heatmap", "line_chart"]
