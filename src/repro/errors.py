"""Exception hierarchy for the repro package.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Subclasses distinguish the major failure domains:
device wearout, coding/crypto, and design-space infeasibility.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DeviceWornOutError(ReproError):
    """An operation traversed a wearout device that has already failed.

    Raised by stateful hardware simulations (switches, structures,
    decision trees) when an access cannot be served because the underlying
    device has reached the end of its sampled lifetime.
    """


class RegisterDestroyedError(ReproError):
    """A read-destructive register was read more than once."""


class CodingError(ReproError):
    """Base class for secret-sharing / error-correction failures."""


class InsufficientSharesError(CodingError):
    """Fewer than the threshold ``k`` shares were supplied for recovery.

    Carries structured context so resilient access layers can report and
    route around the failure: ``supplied`` live shares vs the ``required``
    threshold k, the ``bank_id`` of the copy that failed, and how many
    shares were lost to readout ``timeouts`` (as opposed to dead
    switches).  All context fields are optional; raisers that predate the
    enrichment still work.
    """

    def __init__(self, message: str, *, supplied: int | None = None,
                 required: int | None = None, bank_id: int | None = None,
                 timeouts: int | None = None) -> None:
        super().__init__(message)
        self.supplied = supplied
        self.required = required
        self.bank_id = bank_id
        self.timeouts = timeouts


class DecodingFailure(CodingError):
    """A Reed-Solomon decode could not produce a valid codeword.

    ``bank_id`` identifies the copy whose shares failed to decode and
    ``n`` / ``k`` its code parameters (correction radius
    ``(n - k - missing) // 2``), when the raiser knows them.
    """

    def __init__(self, message: str, *, bank_id: int | None = None,
                 n: int | None = None, k: int | None = None) -> None:
        super().__init__(message)
        self.bank_id = bank_id
        self.n = n
        self.k = k


class CryptoError(ReproError):
    """Base class for cipher-layer failures."""


class KeyConsumedError(CryptoError):
    """A one-time key was used for a second encryption or decryption."""


class AuthenticationError(CryptoError):
    """Ciphertext failed its integrity check (wrong key or tampering)."""


class DesignSpaceError(ReproError):
    """Base class for design-space solver failures."""


class InfeasibleDesignError(DesignSpaceError):
    """No architecture satisfies the requested degradation criteria.

    Carries the search bounds that were exhausted so callers can report
    actionable diagnostics (e.g. "increase max_devices or relax p_fail").
    """

    def __init__(self, message: str, *, alpha: float | None = None,
                 beta: float | None = None) -> None:
        super().__init__(message)
        self.alpha = alpha
        self.beta = beta


class ConfigurationError(ReproError):
    """Invalid user-supplied parameters (negative counts, k > n, ...)."""


class AllCensoredError(ConfigurationError):
    """A censored-data fit was asked to run with zero failure events.

    The censored Weibull likelihood is unbounded when every observation
    is right-censored (any scale large enough explains "still alive"),
    so there is no MLE to report.  Kept distinct from plain
    :class:`ConfigurationError` so capacity estimators can tell "not
    enough wear observed yet" apart from malformed input - and so the
    bootstrap's degenerate-resample fallback still catches it.

    ``observations`` carries how many observations were supplied (all of
    them censored) when the raiser knows it.
    """

    def __init__(self, message: str, *, observations: int | None = None) -> None:
        super().__init__(message)
        self.observations = observations


class ParallelExecutionError(ReproError):
    """A shard of a parallel campaign failed after exhausting its retries.

    Carries structured context so callers (and the CLI) can report which
    contiguous trial range failed and why: the ``shard`` as a
    ``(start, stop)`` index pair, how many ``attempts`` were made, the
    failure ``kind`` (``"crash"`` for a dead worker process,
    ``"timeout"`` for an overdue shard, ``"error"`` for an exception the
    trial function raised), and the underlying ``cause`` when one was
    captured.  Finished shards are never lost: their checkpoint files
    survive the error, so rerunning the campaign resumes instead of
    restarting.
    """

    def __init__(self, message: str, *, shard: tuple[int, int] | None = None,
                 attempts: int | None = None, kind: str | None = None,
                 cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts
        self.kind = kind
        self.cause = cause


class CheckpointMismatchError(ConfigurationError):
    """A checkpoint on disk belongs to a different campaign.

    Raised when resuming and the stored meta (seed, trial count, design,
    fault config) does not match the requested campaign.  Kept distinct
    from plain :class:`ConfigurationError` so callers - the CLI maps it
    to exit code 2 - can refuse loudly instead of silently restarting or
    conflating it with an ordinary campaign failure.
    """


class LedgerCorruptionError(ConfigurationError):
    """The service wear ledger is damaged beyond the recoverable cases.

    A torn *trailing* WAL record (the one write a SIGKILL can interrupt)
    is expected damage: recovery truncates it and continues.  Anything
    else - an unparseable record before the tail, a sequence-number gap,
    or replayed state disagreeing with a snapshot - means the ledger no
    longer proves the wear history, and a limited-use service must
    refuse to serve rather than risk double-spending device wear.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 seq: int | None = None) -> None:
        super().__init__(message)
        self.path = path
        self.seq = seq
