"""SIGKILL the service mid-campaign; recovery must be exact.

The server runs in a subprocess (its own session, like the parallel
campaign kill test), the parent drives a mixed fault/fault-free tenant
population over the real socket, and the process group is SIGKILLed
with the campaign mid-flight.  A torn trailing WAL record - the state a
kill during the batch write leaves - is then simulated explicitly so the
truncate-don't-absorb path is exercised deterministically.

Recovery assertions:

- the restarted service's per-tenant wear arrays equal an independent
  sequential re-drive of the surviving WAL (no lost wear, no double
  spend);
- wear-on-disk >= wear-served: every ``ok`` response the client saw is
  covered by a recovered attempt;
- the torn fragment is truncated, not absorbed: the WAL after recovery
  is byte-identical to its intact prefix.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.service.client import ServiceClient, tenant_population
from repro.service.hub import WearHub
from repro.service.ledger import WearLedger
from repro.service.server import ServiceConfig, WearService

KILL_TARGET = os.path.join(os.path.dirname(__file__), "_kill_service.py")
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))
READY_TIMEOUT_S = 60.0
ACCESSES = 48


def _provision_payloads() -> list[dict]:
    payloads = tenant_population(
        3, seed=7, faults={"misfire_rate": 0.1, "timeout_rate": 0.05})
    payloads.append({
        "tenant": "plain", "alpha": 9.0, "beta": 6.0, "n": 6, "k": 2,
        "copies": 3, "seed": 7007, "secret": (b"\x5a" * 16).hex(),
        "faults": None,
    })
    return payloads


async def _drive_campaign(host: str, port: int) -> list[dict]:
    client = await ServiceClient(host, port).connect()
    payloads = _provision_payloads()
    for payload in payloads:
        response = await client.provision(**payload)
        assert response["status"] == "ok", response
    names = [payload["tenant"] for payload in payloads]
    responses = []
    for index in range(ACCESSES):
        responses.append(await client.access(names[index % len(names)]))
    await client.close()
    return responses


def _read_ready(path: str, proc: subprocess.Popen) -> tuple[str, int]:
    import time

    deadline = time.monotonic() + READY_TIMEOUT_S
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            stderr = proc.stderr.read().decode(errors="replace")
            pytest.fail(f"server exited early (rc={proc.returncode}):\n"
                        f"{stderr}")
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            return payload["host"], int(payload["port"])
        time.sleep(0.01)
    pytest.fail(f"server ready file did not appear in {READY_TIMEOUT_S}s")


def _sequential_reference(records: list[dict], ref_dir: str) -> WearHub:
    """Re-drive the surviving WAL, one record at a time, on a fresh hub."""
    hub = WearHub(WearLedger(ref_dir))
    hub.ledger.open_for_append()
    for record in records:
        if record["op"] == "provision":
            response = hub.provision(record)
            assert response["status"] == "ok", response
        else:
            hub.serve_round([record["tenant"]])
    hub.ledger.close()
    return hub


@pytest.mark.slow
def test_sigkill_mid_campaign_recovers_exact_wear(tmp_path):
    ledger_dir = str(tmp_path / "ledger")
    ready_file = str(tmp_path / "ready.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [SRC_DIR, env.get("PYTHONPATH")]))
    proc = subprocess.Popen(
        [sys.executable, KILL_TARGET, ledger_dir, ready_file],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    try:
        host, port = _read_ready(ready_file, proc)
        responses = asyncio.run(_drive_campaign(host, port))
        # Kill the whole session mid-campaign - no drain, no snapshot
        # flush, exactly like a power cut.
        os.killpg(proc.pid, signal.SIGKILL)
        assert proc.wait(timeout=30) == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        proc.stderr.close()

    ok_by_tenant: dict[str, int] = {}
    for response in responses:
        if response["status"] == "ok":
            tenant = response["tenant"]
            ok_by_tenant[tenant] = ok_by_tenant.get(tenant, 0) + 1
    assert sum(ok_by_tenant.values()) > 0, "campaign served nothing"

    # Simulate the torn trailing record a kill during the WAL batch
    # write leaves behind.
    wal_path = os.path.join(ledger_dir, "wal.jsonl")
    with open(wal_path, "rb") as handle:
        intact = handle.read()
    assert intact.endswith(b"\n")
    with open(wal_path, "ab") as handle:
        handle.write(b'{"op":"access","tenant":"plain","seq":99')
    records = [json.loads(line) for line in intact.decode().splitlines()]

    async def second_life():
        service = WearService(ServiceConfig(ledger_dir=ledger_dir,
                                            window_s=0.001))
        await service.start()
        arrays = {}
        counters = {}
        for name, tenant in service.hub.tenants.items():
            state, row = tenant.pool.state, tenant.row
            arrays[name] = {
                "used": state.used[row].copy(),
                "bank_accesses": state.bank_accesses[row].copy(),
                "bank_dead": state.bank_dead[row].copy(),
                "current": int(state.current[row]),
                "total_accesses": int(state.total_accesses[row]),
            }
            counters[name] = (tenant.attempts, tenant.served)
        recovered = service.recovered_records
        await service.shutdown()
        return arrays, counters, recovered

    arrays, counters, recovered = asyncio.run(second_life())

    # Every surviving record was recovered; the torn one was not.
    assert recovered == len(records)
    with open(wal_path, "rb") as handle:
        assert handle.read() == intact, \
            "torn WAL tail was absorbed instead of truncated"

    # Wear continuity: replaying the same history sequentially on a
    # fresh hub lands on identical arrays and counters.
    reference = _sequential_reference(records, str(tmp_path / "reference"))
    assert set(reference.tenants) == set(arrays)
    for name, tenant in reference.tenants.items():
        state, row = tenant.pool.state, tenant.row
        assert np.array_equal(arrays[name]["used"], state.used[row])
        assert np.array_equal(arrays[name]["bank_accesses"],
                              state.bank_accesses[row])
        assert np.array_equal(arrays[name]["bank_dead"],
                              state.bank_dead[row])
        assert arrays[name]["current"] == int(state.current[row])
        assert arrays[name]["total_accesses"] \
            == int(state.total_accesses[row])
        assert counters[name] == (tenant.attempts, tenant.served)

    # Wear-on-disk >= wear-served: every response the client actually
    # received is covered by a recovered attempt; nothing double-spends.
    wal_attempts: dict[str, int] = {}
    for record in records:
        if record["op"] == "access":
            wal_attempts[record["tenant"]] = \
                wal_attempts.get(record["tenant"], 0) + 1
    for name, (attempts, served) in counters.items():
        assert attempts == wal_attempts.get(name, 0)
        assert served >= ok_by_tenant.get(name, 0), \
            f"{name}: recovered served {served} < acknowledged " \
            f"{ok_by_tenant.get(name, 0)}"
