"""Batched service rounds must be bit-identical to sequential handling.

The coalescer's contract: serving a round of distinct tenants through
one vectorized kernel call produces byte-for-byte the same responses -
and the same final wear arrays, and the same WAL bytes - as serving the
same requests one at a time in arrival order.  Pinned here over an
interleaved multi-tenant schedule, with and without fault models (fault
tenants consume their own RNG substreams, so batch composition must not
perturb them).
"""

import numpy as np
import pytest

from repro.service.hub import WearHub
from repro.service.ledger import WearLedger
from repro.service.protocol import encode_frame

TENANTS = ("alpha", "bravo", "charlie", "delta")

#: An interleaved schedule of coalesced rounds (no tenant twice in one
#: round - the batcher invariant).  Sequential handling flattens it.
SCHEDULE = (
    ("alpha", "bravo", "charlie"),
    ("bravo", "delta"),
    ("alpha",),
    ("alpha", "bravo", "charlie", "delta"),
    ("charlie", "alpha"),
    ("delta", "bravo", "alpha"),
    ("alpha", "bravo", "charlie", "delta"),
    ("alpha", "bravo", "charlie", "delta"),
    ("bravo",),
    ("alpha", "charlie", "delta"),
) * 4


def _provision_requests(faulty: bool) -> list[dict]:
    requests = []
    for index, name in enumerate(TENANTS):
        faults = None
        if faulty and index % 2 == 0:  # mix fault and fault-free tenants
            faults = {"misfire_rate": 0.15, "timeout_rate": 0.05}
        requests.append({
            "op": "provision", "tenant": name, "alpha": 8.0, "beta": 5.0,
            "n": 5, "k": 2, "copies": 3, "seed": 100 + index,
            "secret": bytes((index + b) % 256 for b in range(16)).hex(),
            "faults": faults,
        })
    return requests


def _drive(tmp_path, label: str, faulty: bool,
           batched: bool) -> tuple[list[bytes], WearHub]:
    hub = WearHub(WearLedger(str(tmp_path / label)))
    hub.ledger.open_for_append()
    for request in _provision_requests(faulty):
        assert hub.provision(request)["status"] == "ok"
    frames: list[bytes] = []
    for round_names in SCHEDULE:
        if batched:
            responses = hub.serve_round(list(round_names))
            frames.extend(encode_frame(responses[name])
                          for name in round_names)
        else:
            for name in round_names:
                frames.append(encode_frame(hub.serve_round([name])[name]))
    hub.ledger.close()
    return frames, hub


def _state_arrays(hub: WearHub) -> dict[str, dict[str, np.ndarray]]:
    out = {}
    for name, tenant in hub.tenants.items():
        state, row = tenant.pool.state, tenant.row
        out[name] = {
            "used": state.used[row].copy(),
            "bank_accesses": state.bank_accesses[row].copy(),
            "bank_dead": state.bank_dead[row].copy(),
            "current": state.current[row].copy(),
            "total_accesses": state.total_accesses[row].copy(),
        }
    return out


@pytest.mark.parametrize("faulty", [False, True],
                         ids=["fault-free", "with-faults"])
def test_batched_rounds_match_sequential_bit_for_bit(tmp_path, faulty):
    batched_frames, batched_hub = _drive(tmp_path, "batched", faulty,
                                         batched=True)
    sequential_frames, sequential_hub = _drive(tmp_path, "sequential",
                                               faulty, batched=False)

    # Every response, as its exact wire bytes.
    assert batched_frames == sequential_frames
    # The workload exercised real wear, not just denials.
    served = sum(1 for frame in batched_frames if b'"status":"ok"' in frame)
    assert served > 0

    # Final engine arrays, per tenant.
    batched_arrays = _state_arrays(batched_hub)
    sequential_arrays = _state_arrays(sequential_hub)
    for name in TENANTS:
        for field, value in batched_arrays[name].items():
            assert np.array_equal(value, sequential_arrays[name][field]), \
                f"{name}.{field} diverged under batching"

    # Counters and fault-injection tallies.
    for name in TENANTS:
        batched_tenant = batched_hub.tenants[name]
        sequential_tenant = sequential_hub.tenants[name]
        assert batched_tenant.attempts == sequential_tenant.attempts
        assert batched_tenant.served == sequential_tenant.served
        if batched_tenant.fault_model is not None:
            assert batched_tenant.fault_model.injection_counts() \
                == sequential_tenant.fault_model.injection_counts()

    # The WAL is the same history, byte for byte.
    with open(batched_hub.ledger.wal_path, "rb") as a, \
            open(sequential_hub.ledger.wal_path, "rb") as b:
        assert a.read() == b.read()


def test_exhaustion_order_is_batching_invariant(tmp_path):
    """Drive far past exhaustion: the denial tail must match too."""
    long_schedule = SCHEDULE * 30
    hub_batched = WearHub(WearLedger(str(tmp_path / "b")))
    hub_batched.ledger.open_for_append()
    hub_sequential = WearHub(WearLedger(str(tmp_path / "s")))
    hub_sequential.ledger.open_for_append()
    for request in _provision_requests(faulty=True):
        hub_batched.provision(request)
        hub_sequential.provision(request)
    for round_names in long_schedule:
        batch = hub_batched.serve_round(list(round_names))
        for name in round_names:
            single = hub_sequential.serve_round([name])[name]
            assert encode_frame(batch[name]) == encode_frame(single)
    assert all(t.exhausted for t in hub_batched.tenants.values()), \
        "schedule too short to reach exhaustion"
    hub_batched.ledger.close()
    hub_sequential.ledger.close()
