"""Bit-identity of the batched engine against the scalar object layer.

``simulate_access_bounds_hardware`` now fabricates and steps whole
chunks of trials through one struct-of-arrays
:class:`~repro.engine.state.WearState`.  This suite pins the refactor's
core promise: for every design on the seeded grid the batched path
returns access bounds *bit-identical* to driving one object-mode
:class:`~repro.core.hardware.SerialCopies` per trial (the pre-engine
implementation, transcribed verbatim below) - for any chunk size, with
and without an access cap, and under process variation.
"""

import numpy as np
import pytest

from repro.core.degradation import PAPER_CRITERIA
from repro.core.device import NEMSSwitch
from repro.core.hardware import SerialCopies, SimulatedBank
from repro.core.sizing import size_architecture
from repro.core.variation import LognormalVariation
from repro.sim.montecarlo import simulate_access_bounds_hardware
from repro.sim.rng import make_rng

TRIALS = 40

#: (alpha, beta, access_bound) - the same seeded grid the statistical
#: differential suite uses.
DESIGN_GRID = [
    (10.0, 8.0, 40),
    (9.0, 8.0, 30),
    (10.0, 5.0, 40),
    (12.0, 10.0, 60),
]


def _design(alpha, beta, bound):
    return size_architecture(alpha, beta, bound, k_fraction=0.10,
                             criteria=PAPER_CRITERIA, window="fractional")


def _scalar_reference(design, trials, rng, variation=None,
                      max_accesses=None):
    """The pre-engine hardware path: one object graph per trial."""
    bounds = np.empty(trials, dtype=np.int64)
    for index in range(trials):
        banks = []
        for _ in range(design.copies):
            switches = NEMSSwitch.fabricate_batch(design.device, design.n,
                                                  rng, variation)
            banks.append(SimulatedBank(switches, design.k))
        bounds[index] = SerialCopies(banks).count_successful_accesses(
            max_accesses)
    return bounds


@pytest.mark.parametrize("alpha,beta,bound", DESIGN_GRID)
def test_batched_path_is_bit_identical_to_scalar(alpha, beta, bound):
    design = _design(alpha, beta, bound)
    seed = hash((alpha, beta, bound)) % (2 ** 31)
    expected = _scalar_reference(design, TRIALS, make_rng(seed))
    batched = simulate_access_bounds_hardware(design, TRIALS,
                                              make_rng(seed))
    assert np.array_equal(batched, expected)


@pytest.mark.parametrize("chunk_cells", [1, 517, 4_000_000])
def test_identity_holds_for_any_chunk_size(chunk_cells):
    # Chunking only changes how many instances share one state batch;
    # the fabrication stream and results must not move.
    design = _design(10.0, 8.0, 40)
    expected = _scalar_reference(design, TRIALS, make_rng(11))
    batched = simulate_access_bounds_hardware(
        design, TRIALS, make_rng(11), max_copies_per_chunk=chunk_cells)
    assert np.array_equal(batched, expected)


def test_identity_holds_under_an_access_cap():
    design = _design(9.0, 8.0, 30)
    expected = _scalar_reference(design, TRIALS, make_rng(21),
                                 max_accesses=37)
    batched = simulate_access_bounds_hardware(design, TRIALS, make_rng(21),
                                              max_accesses=37)
    assert np.array_equal(batched, expected)
    assert batched.max() <= 37


def test_identity_holds_under_process_variation():
    design = _design(10.0, 8.0, 40)
    variation = LognormalVariation(sigma_alpha=0.05, sigma_beta=0.02)
    expected = _scalar_reference(design, TRIALS, make_rng(31),
                                 variation=variation)
    batched = simulate_access_bounds_hardware(design, TRIALS, make_rng(31),
                                              variation=variation)
    assert np.array_equal(batched, expected)
