"""Scalar-vs-native bit-identity of the vectorized fault pipeline.

The engine's native batched hooks (:mod:`repro.engine.hooks`) promise
bit-identity to the scalar per-switch/per-share injector loop for every
shipped injector and for any attachment order - the RNG substream
contract of :mod:`repro.faults.injectors`.  This suite pins that promise
end to end through ``run_fault_trial``: whole trial records (per-trial
wear, outcomes, injection counts) must match across the ``vectorized``
flag for

- each injector alone,
- mixed pipelines in every attachment order, and
- the full six-injector mix,

plus the hardware state arrays the trial leaves behind.
"""

import itertools

import numpy as np
import pytest

from repro.connection.resilient import ResilientAccessController, RetryPolicy
from repro.core.degradation import PAPER_CRITERIA
from repro.core.sizing import size_architecture
from repro.errors import CodingError, DeviceWornOutError
from repro.faults.campaign import (
    CAMPAIGN_SECRET,
    FaultCampaignConfig,
    run_fault_trial,
)
from repro.faults.injectors import (
    FaultModel,
    ReadoutTimeout,
    ShareCorruption,
    StuckClosedConversion,
    TransientMisfire,
)
from repro.sim.rng import make_rng


def _design(bound=40):
    return size_architecture(10.0, 8.0, bound, k_fraction=0.10,
                             criteria=PAPER_CRITERIA, window="fractional")


#: One config per shipped injector, exercising it alone at a rate high
#: enough that every trial actually injects.
SINGLE_INJECTOR_CONFIGS = {
    "misfire": FaultCampaignConfig(misfire_rate=0.05),
    "premature_stuck_open": FaultCampaignConfig(
        premature_stuck_open_rate=0.03),
    "stuck_closed": FaultCampaignConfig(stuck_closed_probability=0.05),
    "temperature": FaultCampaignConfig(temperature_c=85.0),
    "corruption": FaultCampaignConfig(corruption_rate=0.05),
    "timeout": FaultCampaignConfig(timeout_rate=0.03),
}


@pytest.mark.parametrize("name", sorted(SINGLE_INJECTOR_CONFIGS))
def test_single_injector_trial_records_identical(name):
    design = _design()
    config = SINGLE_INJECTOR_CONFIGS[name]
    for seed in range(3):
        scalar = run_fault_trial(design, config, make_rng(seed),
                                 vectorized=False)
        native = run_fault_trial(design, config, make_rng(seed),
                                 vectorized=True)
        assert scalar == native, f"{name} seed {seed}"


def test_full_mix_trial_records_identical():
    design = _design()
    config = FaultCampaignConfig(misfire_rate=0.02,
                                 premature_stuck_open_rate=0.01,
                                 stuck_closed_probability=0.02,
                                 temperature_c=60.0,
                                 corruption_rate=0.02,
                                 timeout_rate=0.01)
    for seed in range(3):
        scalar = run_fault_trial(design, config, make_rng(seed),
                                 vectorized=False)
        native = run_fault_trial(design, config, make_rng(seed),
                                 vectorized=True)
        assert scalar == native, f"seed {seed}"


def _drive(design, injectors, seed, vectorized):
    """Drive one controller to destruction; return outcomes + state."""
    rng = make_rng(seed)
    model = FaultModel(list(injectors), rng=make_rng(seed + 1))
    controller = ResilientAccessController(
        design, CAMPAIGN_SECRET, rng, fault_hook=model,
        policy=RetryPolicy(max_attempts=3, quarantine_after=2),
        vectorized=vectorized)
    outcomes = []
    for _ in range(design.copies * (design.t + 2) + design.t + 8):
        try:
            controller.read_key()
            outcomes.append("ok")
        except DeviceWornOutError:
            outcomes.append("worn")
            break
        except CodingError as exc:
            outcomes.append(f"coding:{type(exc).__name__}")
    state = controller._state
    return {
        "outcomes": outcomes,
        "injections": [inj.injections for inj in model.injectors],
        "streams": [s.bit_generator.state["state"] for s in model.streams],
        "used": state.used.copy(),
        "bank_accesses": state.bank_accesses.copy(),
        "bank_dead": state.bank_dead.copy(),
        "stats": controller.stats,
    }


#: An actuation injector, a persistent-conversion injector and a readout
#: injector: the three hook classes whose stage interleaving the
#: pipeline must reproduce in any order.
ORDER_INJECTORS = [
    lambda: TransientMisfire(0.03),
    lambda: StuckClosedConversion(0.03),
    lambda: ReadoutTimeout(0.02),
]


@pytest.mark.parametrize("order", list(itertools.permutations(range(3))))
def test_mixed_pipeline_identical_in_every_attachment_order(order):
    design = _design(24)
    injectors = [ORDER_INJECTORS[i]() for i in order]
    scalar = _drive(design, injectors, seed=11, vectorized=False)
    injectors = [ORDER_INJECTORS[i]() for i in order]
    native = _drive(design, injectors, seed=11, vectorized=True)
    assert scalar["outcomes"] == native["outcomes"]
    assert scalar["injections"] == native["injections"]
    assert scalar["streams"] == native["streams"]
    np.testing.assert_array_equal(scalar["used"], native["used"])
    np.testing.assert_array_equal(scalar["bank_accesses"],
                                  native["bank_accesses"])
    np.testing.assert_array_equal(scalar["bank_dead"], native["bank_dead"])
    assert scalar["stats"] == native["stats"]


def test_readout_pair_identical_in_both_orders():
    design = _design(24)
    for order in ([ShareCorruption(0.05), ReadoutTimeout(0.03)],
                  [ReadoutTimeout(0.03), ShareCorruption(0.05)]):
        scalar = _drive(design, order, seed=5, vectorized=False)
        rebuilt = [type(inj)(inj.rate) for inj in order]
        native = _drive(design, rebuilt, seed=5, vectorized=True)
        assert scalar["outcomes"] == native["outcomes"]
        assert scalar["streams"] == native["streams"]
        np.testing.assert_array_equal(scalar["used"], native["used"])
