"""Serial vs parallel campaigns must be byte-identical, any worker count.

The parallel engine's contract is that sharding is *invisible*: trial
``i`` draws from the substream ``(seed, i)`` no matter which worker runs
it, and the canonical checkpoint is rebuilt in prefix order.  These
tests drive both engines over the same campaigns and compare raw result
arrays, sorted bounds, and the literal bytes of the checkpoint files.
"""

import numpy as np
import pytest

from repro.faults.campaign import FaultCampaignConfig, run_fault_campaign
from repro.sim.montecarlo import simulate_access_bounds_checkpointed

WORKER_COUNTS = (1, 2, 3)


class TestAccessBoundIdentity:
    @pytest.fixture(scope="class")
    def serial(self, small_design, tmp_path_factory):
        path = tmp_path_factory.mktemp("serial") / "fast.ckpt"
        bounds = simulate_access_bounds_checkpointed(
            small_design, 40, seed=7, checkpoint_path=str(path),
            checkpoint_every=5)
        return bounds, path.read_bytes()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_fast_mode_bit_identical(self, small_design, serial,
                                     workers, tmp_path):
        serial_bounds, serial_ckpt = serial
        path = tmp_path / "fast.ckpt"
        bounds = simulate_access_bounds_checkpointed(
            small_design, 40, seed=7, checkpoint_path=str(path),
            checkpoint_every=5, workers=workers, shard_size=7)
        assert np.array_equal(bounds, serial_bounds)
        assert np.array_equal(np.sort(bounds), np.sort(serial_bounds))
        # The canonical checkpoint file is byte-for-byte the serial one.
        assert path.read_bytes() == serial_ckpt

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_hardware_mode_bit_identical(self, small_design, workers):
        serial = simulate_access_bounds_checkpointed(
            small_design, 24, seed=3, hardware=True)
        parallel = simulate_access_bounds_checkpointed(
            small_design, 24, seed=3, hardware=True, workers=workers,
            shard_size=5)
        assert np.array_equal(serial, parallel)

    def test_shard_size_is_invisible(self, small_design):
        reference = simulate_access_bounds_checkpointed(
            small_design, 30, seed=11, workers=2, shard_size=30)
        for shard_size in (1, 4, 13):
            bounds = simulate_access_bounds_checkpointed(
                small_design, 30, seed=11, workers=2,
                shard_size=shard_size)
            assert np.array_equal(bounds, reference)


class TestFaultCampaignIdentity:
    def test_campaign_records_identical(self, small_design, tmp_path):
        config = FaultCampaignConfig(misfire_rate=0.02,
                                     corruption_rate=0.01,
                                     timeout_rate=0.005)
        serial_path = tmp_path / "serial.ckpt"
        parallel_path = tmp_path / "parallel.ckpt"
        serial = run_fault_campaign(small_design, config, trials=8, seed=5,
                                    checkpoint_path=str(serial_path),
                                    checkpoint_every=2)
        parallel = run_fault_campaign(small_design, config, trials=8,
                                      seed=5,
                                      checkpoint_path=str(parallel_path),
                                      checkpoint_every=2, workers=2)
        assert serial.records == parallel.records
        assert serial.mean_served == parallel.mean_served
        assert serial.availability == parallel.availability
        assert serial_path.read_bytes() == parallel_path.read_bytes()
