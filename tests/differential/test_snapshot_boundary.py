"""Fault-model tenants recovered across a snapshot boundary.

Self-contained (format-2) snapshots carry pool state *and* fault-RNG
state, and segment rotation archives everything the snapshot covers -
so a recovery that restores the snapshot and replays only the
post-boundary WAL tail must land on a hub that is indistinguishable
from one that never crashed.  "Indistinguishable" is tested the strong
way: not just equal wear arrays at the crash point, but byte-identical
responses for every access served *after* recovery, which only holds if
the fault-RNG stream resumed at exactly the right draw.
"""

import numpy as np
import pytest

from repro.service.hub import WearHub
from repro.service.ledger import WearLedger

FAULTS = {"misfire_rate": 0.15, "stuck_closed_probability": 0.4,
          "timeout_rate": 0.05}
PRE_ROUNDS = 6       # rounds before the snapshot boundary
POST_ROUNDS = 9      # rounds in the replayed WAL tail
FUTURE_ROUNDS = 12   # rounds served after recovery
STATE_FIELDS = ("used", "lifetime", "bank_accesses", "bank_dead",
                "current", "total_accesses")


def _provision(hub, seed=404):
    for name, faults in (("faulty-a", FAULTS), ("faulty-b", FAULTS),
                         ("plain", None)):
        response = hub.provision({
            "op": "provision", "tenant": name, "alpha": 9.0, "beta": 6.0,
            "n": 6, "k": 2, "copies": 3, "seed": seed,
            "secret": bytes(range(16)).hex(), "faults": faults})
        assert response["status"] == "ok", response
        seed += 1


def _drive(hub, rounds, tag):
    responses = []
    for index in range(rounds):
        batch = hub.serve_round([
            ("faulty-a", f"{tag}-a-{index}"),
            ("faulty-b", f"{tag}-b-{index}"),
            ("plain", f"{tag}-p-{index}")])
        responses.append({name: batch[name]
                          for name in ("faulty-a", "faulty-b", "plain")})
    return responses


def _arrays(hub):
    out = {}
    for name, tenant in hub.tenants.items():
        state, row = tenant.pool.state, tenant.row
        out[name] = {field: np.asarray(getattr(state, field)[row]).copy()
                     for field in STATE_FIELDS}
        out[name]["counters"] = (tenant.attempts, tenant.served)
    return out


def _assert_same_state(expected, actual):
    assert set(expected) == set(actual)
    for name in expected:
        for field in STATE_FIELDS:
            assert np.array_equal(expected[name][field],
                                  actual[name][field]), (name, field)
        assert expected[name]["counters"] == actual[name]["counters"], name


def _uninterrupted_reference(ref_dir):
    """The never-crashed twin: same population, same round plan."""
    hub = WearHub(WearLedger(ref_dir))
    hub.ledger.open_for_append()
    _provision(hub)
    _drive(hub, PRE_ROUNDS, "pre")
    _drive(hub, POST_ROUNDS, "post")
    checkpoint = _arrays(hub)
    future = _drive(hub, FUTURE_ROUNDS, "future")
    hub.ledger.close()
    return checkpoint, future


@pytest.mark.parametrize("post_rounds", [POST_ROUNDS, 0],
                         ids=["replayed-tail", "boundary-crash"])
def test_recovery_across_the_boundary_is_bit_exact(tmp_path, post_rounds):
    checkpoint_ref, future_ref = _uninterrupted_reference(
        str(tmp_path / "reference"))
    if post_rounds == 0:
        # The crash-at-the-boundary twin never served the post rounds,
        # so its reference checkpoint stops at the snapshot.
        checkpoint_ref, future_ref = None, None

    ledger_dir = str(tmp_path / "ledger")
    hub = WearHub(WearLedger(ledger_dir))
    hub.ledger.open_for_append()
    _provision(hub)
    _drive(hub, PRE_ROUNDS, "pre")
    hub.write_snapshot()
    hub.ledger.rotate_segment()     # the boundary: pre-rounds archived
    _drive(hub, post_rounds, "post")
    expected_state = _arrays(hub)
    hub.ledger.close()

    # The crash: a torn trailing record, exactly what a kill during the
    # WAL batch write leaves behind.
    wal_path = hub.ledger.wal_path
    with open(wal_path, "rb") as handle:
        intact = handle.read()
    with open(wal_path, "ab") as handle:
        handle.write(b'{"op":"access","tenant":"faulty-a","seq":9999')

    recovered = WearHub(WearLedger(ledger_dir))
    recovered.recover()
    _assert_same_state(expected_state, _arrays(recovered))
    if checkpoint_ref is not None:
        _assert_same_state(checkpoint_ref, _arrays(recovered))
    with open(wal_path, "rb") as handle:
        assert handle.read() == intact, "torn tail absorbed"

    # The decisive check: the fault-RNG stream resumed mid-flight, so
    # post-recovery service is byte-identical to the never-crashed twin.
    recovered.ledger.open_for_append()
    future = _drive(recovered, FUTURE_ROUNDS, "future")
    if future_ref is not None:
        assert future == future_ref
    recovered.ledger.close()


def test_replayed_tail_regenerates_keyed_responses(tmp_path):
    # The WAL tail replay is *stepped* re-execution: every rid-bearing
    # record regenerates its original response for the idempotency
    # table, so retries that straddle the crash still replay.
    ledger_dir = str(tmp_path / "ledger")
    hub = WearHub(WearLedger(ledger_dir))
    hub.ledger.open_for_append()
    _provision(hub)
    _drive(hub, PRE_ROUNDS, "pre")
    hub.write_snapshot()
    hub.ledger.rotate_segment()
    post = _drive(hub, POST_ROUNDS, "post")
    hub.ledger.close()

    recovered = WearHub(WearLedger(ledger_dir))
    recovered.recover()
    for index, batch in enumerate(post):
        for name, suffix in (("faulty-a", "a"), ("faulty-b", "b"),
                             ("plain", "p")):
            assert recovered.recorded_response(
                name, f"post-{suffix}-{index}") == batch[name], \
                (name, index)
    recovered.ledger.close()
