"""Subprocess target for the SIGKILL mid-campaign differential test.

Runs a parallel hardware-mode access-bound campaign against a
checkpoint path given on the command line.  The parent test polls the
canonical checkpoint for progress and SIGKILLs this process group
mid-flight; nothing here cooperates with the kill, which is the point.

Usage: python _kill_target.py CHECKPOINT_PATH TRIALS SEED
"""

import sys


def main() -> None:
    checkpoint_path, trials, seed = (sys.argv[1], int(sys.argv[2]),
                                     int(sys.argv[3]))
    from repro.core.degradation import PAPER_CRITERIA
    from repro.core.sizing import size_architecture
    from repro.sim.montecarlo import simulate_access_bounds_checkpointed

    design = size_architecture(10.0, 8.0, 200, k_fraction=0.10,
                               criteria=PAPER_CRITERIA,
                               window="fractional")
    simulate_access_bounds_checkpointed(
        design, trials, seed, checkpoint_path=checkpoint_path,
        checkpoint_every=2, hardware=True, workers=2, shard_size=20)


if __name__ == "__main__":
    main()
