"""Bit-identity of the batched replay/drain arms against their scalar loops.

``replay_trace`` and ``simulate_drain_attack`` collapse stretches of
logins onto one engine fast-forward
(:meth:`~repro.connection.architecture.LimitedUseConnection.serve_accesses`).
This suite pins the collapse: reports, final RNG state and the hardware
wear arrays must match the event-by-event reference arm exactly -
including migrations, mid-trace exhaustion, empty traces and attacker
bursts.  Scalar logins pay the real KDF, so the designs and traces here
are deliberately tiny.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.connection.availability import simulate_drain_attack
from repro.core.degradation import PAPER_CRITERIA
from repro.core.sizing import size_architecture
from repro.sim.rng import make_rng
from repro.sim.timeline import UsageProfile
from repro.sim.traces import EventKind, TraceEvent, generate_trace, replay_trace


def _design(bound=24):
    return size_architecture(10.0, 8.0, bound, k_fraction=0.10,
                             criteria=PAPER_CRITERIA, window="fractional")


def _replay_both(designs, passcodes, trace, seed, fraction=0.05):
    results = []
    for vectorized in (False, True):
        rng = make_rng(seed)
        report = replay_trace(designs, passcodes, b"secret disk!", trace,
                              rng, fraction, vectorized=vectorized)
        results.append({
            "report": asdict(report),
            "rng": rng.bit_generator.state,
        })
    return results


def _trace(days, seed, mean_daily=2.5, burst_day=None, burst=0):
    return generate_trace(UsageProfile(mean_daily=mean_daily), days,
                          make_rng(seed), typo_rate=0.15,
                          attacker_burst_day=burst_day,
                          attacker_burst_size=burst)


def test_single_module_report_and_rng_identical():
    trace = _trace(days=5, seed=3)
    scalar, vector = _replay_both([_design(40)], ["pc-0"], trace, seed=7)
    assert scalar == vector


def test_migrating_replay_identical():
    designs = [_design(16), _design(16), _design(16)]
    passcodes = ["pc-0", "pc-1", "pc-2"]
    trace = _trace(days=8, seed=11, mean_daily=3.0)
    scalar, vector = _replay_both(designs, passcodes, trace, seed=13,
                                  fraction=0.3)
    assert scalar == vector
    # the budget is small enough that migrations actually happened
    assert scalar["report"]["migrations"] >= 1


def test_exhaustion_mid_trace_identical():
    # Far more events than the hardware can serve: both arms must die on
    # the same day with the same served counts.
    trace = _trace(days=10, seed=17, mean_daily=4.0)
    scalar, vector = _replay_both([_design(8)], ["pc-0"], trace, seed=19)
    assert scalar == vector
    assert scalar["report"]["died_on_day"] is not None


def test_attacker_burst_identical():
    trace = _trace(days=4, seed=23, burst_day=2, burst=5)
    scalar, vector = _replay_both([_design(40)], ["pc-0"], trace, seed=29)
    assert scalar == vector
    assert scalar["report"]["attacker_attempts"] >= 1
    assert scalar["report"]["attacker_breached"] is False


def test_thief_passcode_breach_identical():
    # The degenerate module whose passcode IS the thief guess: the
    # vectorized arm must flag the breach exactly like the scalar login.
    trace = [TraceEvent(0, EventKind.ATTACKER_GUESS)]
    scalar, vector = _replay_both([_design(40)], ["0000-thief"], trace,
                                  seed=31)
    assert scalar == vector
    assert scalar["report"]["attacker_breached"] is True


def test_empty_trace_identical():
    scalar, vector = _replay_both([_design(16)], ["pc-0"], [], seed=37)
    assert scalar == vector
    assert scalar["report"]["days_served"] == 0


def test_replay_hardware_state_identical():
    """The wear arrays, not just the report, must match afterwards."""
    from repro.connection.phone import MWayPhone
    from repro.sim.traces import _replay_scalar, _replay_vector, ReplayReport

    designs = [_design(16), _design(16)]
    passcodes = ["pc-0", "pc-1"]
    trace = _trace(days=6, seed=41, mean_daily=3.0)
    snapshots = []
    for arm in (_replay_scalar, _replay_vector):
        rng = make_rng(43)
        phone = MWayPhone(designs, passcodes, b"secret disk!", rng)
        report = ReplayReport()
        arm(designs, passcodes, phone, trace, report, 0.3)
        conn = phone._active.connection
        snapshots.append({
            "report": asdict(report),
            "rng": rng.bit_generator.state,
            "used": conn._state.used.copy(),
            "bank_accesses": conn._state.bank_accesses.copy(),
            "bank_dead": conn._state.bank_dead.copy(),
            "current": conn._serial._current,
            "total_accesses": conn._serial.total_accesses,
            "accesses": conn.accesses,
            "module": phone.active_module,
        })
    scalar, vector = snapshots
    assert scalar["report"] == vector["report"]
    assert scalar["rng"] == vector["rng"]
    np.testing.assert_array_equal(scalar["used"], vector["used"])
    np.testing.assert_array_equal(scalar["bank_accesses"],
                                  vector["bank_accesses"])
    np.testing.assert_array_equal(scalar["bank_dead"], vector["bank_dead"])
    for key in ("current", "total_accesses", "accesses", "module"):
        assert scalar[key] == vector[key], key


@pytest.mark.parametrize("owner,attacker", [(1, 1), (3, 2), (1, 0), (2, 5)])
def test_drain_attack_identical(owner, attacker):
    design = _design(12)
    scalar = simulate_drain_attack(design, "pc", make_rng(47), owner,
                                   attacker, vectorized=False)
    vector = simulate_drain_attack(design, "pc", make_rng(47), owner,
                                   attacker, vectorized=True)
    assert scalar == vector
