"""Vectorized vs stateful simulator cross-validation on a design grid.

``simulate_access_bounds`` computes access bounds analytically from
order statistics; ``simulate_access_bounds_hardware`` actuates every
switch of a stateful instance.  They share no code path, so statistical
agreement over a grid of seeded designs is strong evidence both
implement the same architecture semantics.  Tolerance is 4 combined
standard errors on the mean - loose enough to be deterministic under the
fixed seeds, tight enough to catch an off-by-one in either path.
"""

import math

import numpy as np
import pytest

from repro.core.degradation import PAPER_CRITERIA
from repro.core.sizing import size_architecture
from repro.sim.montecarlo import (
    simulate_access_bounds,
    simulate_access_bounds_hardware,
)
from repro.sim.rng import make_rng

FAST_TRIALS = 4000
HARDWARE_TRIALS = 300

#: (alpha, beta, access_bound) - small designs so the stateful path
#: stays affordable; spans shape, scale and sizing variation.
DESIGN_GRID = [
    (10.0, 8.0, 40),
    (9.0, 8.0, 30),
    (10.0, 5.0, 40),
    (12.0, 10.0, 60),
]


@pytest.mark.parametrize("alpha,beta,bound", DESIGN_GRID)
def test_fast_and_hardware_agree_statistically(alpha, beta, bound):
    design = size_architecture(alpha, beta, bound, k_fraction=0.10,
                               criteria=PAPER_CRITERIA,
                               window="fractional")
    seed = hash((alpha, beta, bound)) % (2 ** 31)
    fast = simulate_access_bounds(design, FAST_TRIALS, make_rng(seed))
    hardware = simulate_access_bounds_hardware(
        design, HARDWARE_TRIALS, make_rng(seed + 1))

    combined_se = math.sqrt(
        fast.var(ddof=1) / fast.size
        + hardware.var(ddof=1) / hardware.size)
    delta = abs(float(fast.mean()) - float(hardware.mean()))
    assert delta <= 4.0 * combined_se, (
        f"fast mean {fast.mean():.2f} vs hardware mean "
        f"{hardware.mean():.2f} differ by {delta:.2f} "
        f"(> 4 SE = {4 * combined_se:.2f}) on design {design}")

    # Spread must agree too - the same architecture, not just the same
    # average (a constant-output bug would pass a mean check).
    assert 0.5 <= float(fast.std()) / max(float(hardware.std()), 1e-9) \
        <= 2.0

    # Both must respect the design's sizing: every instance serves at
    # least the designed bound.
    assert int(fast.min()) >= bound
    assert int(hardware.min()) >= bound


def test_hardware_matches_itself_across_rng_paths():
    # Same seed, same design: the stateful path is deterministic.
    design = size_architecture(10.0, 8.0, 40, k_fraction=0.10,
                               criteria=PAPER_CRITERIA,
                               window="fractional")
    a = simulate_access_bounds_hardware(design, 20, make_rng(9))
    b = simulate_access_bounds_hardware(design, 20, make_rng(9))
    assert np.array_equal(a, b)
