"""Shared fixtures for the differential harness."""

import pytest

from repro.core.degradation import PAPER_CRITERIA
from repro.core.sizing import size_architecture


def paper_design(bound: int):
    """The paper's fractional-window sizing at a given access bound."""
    return size_architecture(10.0, 8.0, bound, k_fraction=0.10,
                             criteria=PAPER_CRITERIA, window="fractional")


@pytest.fixture(scope="package")
def small_design():
    """Cheap hardware-simulable design (~0.7 ms per stateful trial)."""
    return paper_design(40)


@pytest.fixture(scope="package")
def medium_design():
    """The bench smoke design (~3 ms per stateful trial)."""
    return paper_design(200)
