"""SIGKILL a parallel campaign mid-flight; resume must be bit-identical.

The campaign runs in a subprocess (its own session, so the kill takes
the whole worker pool down with it), gets SIGKILLed as soon as the
canonical checkpoint shows partial progress, and is then resumed
*in-process under a different worker count*.  The resumed results and
the final canonical checkpoint bytes must equal an uninterrupted run's.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.sim.checkpoint import list_shard_checkpoints
from repro.sim.montecarlo import simulate_access_bounds_checkpointed

from tests.differential.conftest import paper_design

TRIALS = 800
SEED = 31
KILL_TARGET = os.path.join(os.path.dirname(__file__), "_kill_target.py")
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))
POLL_S = 0.01
LAUNCH_TIMEOUT_S = 120.0


def _read_completed(path: str) -> int:
    """Completed-trial count in the canonical checkpoint, 0 if not yet."""
    try:
        with open(path, encoding="utf-8") as handle:
            return int(json.load(handle)["completed"])
    except (OSError, ValueError, KeyError):
        # Not written yet (or mid-replace on a non-atomic filesystem).
        return 0


@pytest.mark.slow
def test_sigkill_then_resume_under_different_worker_count(tmp_path):
    checkpoint = str(tmp_path / "campaign.ckpt")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [SRC_DIR, env.get("PYTHONPATH")]))
    # Own session: killpg reaps the pool workers too, exactly like a
    # machine going down, leaving canonical + shard files as they were.
    proc = subprocess.Popen(
        [sys.executable, KILL_TARGET, checkpoint, str(TRIALS), str(SEED)],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    try:
        deadline = time.monotonic() + LAUNCH_TIMEOUT_S
        while _read_completed(checkpoint) < 1:
            if proc.poll() is not None:
                stderr = proc.stderr.read().decode(errors="replace")
                pytest.fail(
                    f"campaign exited (rc={proc.returncode}) before it "
                    f"could be killed mid-flight:\n{stderr}")
            if time.monotonic() > deadline:
                pytest.fail("campaign made no checkpoint progress "
                            f"within {LAUNCH_TIMEOUT_S}s")
            time.sleep(POLL_S)
        os.killpg(proc.pid, signal.SIGKILL)
        assert proc.wait(timeout=30) == -signal.SIGKILL
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        proc.stderr.close()

    interrupted_at = _read_completed(checkpoint)
    assert 1 <= interrupted_at < TRIALS, \
        f"kill landed outside the campaign window ({interrupted_at})"

    # Resume under a different worker count than the killed run's 2.
    design = paper_design(200)
    resumed = simulate_access_bounds_checkpointed(
        design, TRIALS, SEED, checkpoint_path=checkpoint,
        checkpoint_every=2, hardware=True, workers=3, shard_size=20)

    # Uninterrupted reference: same campaign, never killed, serial.
    reference_path = str(tmp_path / "reference.ckpt")
    reference = simulate_access_bounds_checkpointed(
        design, TRIALS, SEED, checkpoint_path=reference_path,
        checkpoint_every=2, hardware=True)

    assert np.array_equal(resumed, reference)
    with open(checkpoint, "rb") as resumed_file, \
            open(reference_path, "rb") as reference_file:
        assert resumed_file.read() == reference_file.read()
    # The resume absorbed and removed every orphaned shard file.
    assert list_shard_checkpoints(checkpoint) == []
