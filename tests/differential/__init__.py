"""Differential harness: serial vs parallel vs analytic cross-validation.

Three families of guarantees live here, one per module:

- ``test_serial_parallel_identity`` - the parallel engine is a pure
  refactoring of the serial loop: byte-identical results and checkpoint
  files for any worker count;
- ``test_kill_resume`` - a campaign SIGKILLed mid-flight resumes under a
  *different* worker count bit-identical to an uninterrupted run;
- ``test_fast_vs_hardware`` - the vectorized order-statistics simulator
  and the stateful switch-by-switch simulator agree statistically on a
  seeded design grid;
- ``test_service_batching`` - coalesced multi-tenant service rounds are
  byte-identical to sequential handling (responses, wear arrays, WAL),
  with and without fault models;
- ``test_service_recovery`` - a SIGKILLed service instance recovers its
  exact wear history from the durable ledger, truncating (never
  absorbing) a torn trailing WAL record.
"""
