"""Subprocess target for the SIGKILL service crash-recovery test.

Runs one limited-use authorization service against a ledger directory
given on the command line, announcing its bound port through a ready
file.  The parent test drives accesses over the socket and SIGKILLs
this process group mid-campaign; nothing here cooperates with the kill,
which is the point.

Usage: python _kill_service.py LEDGER_DIR READY_FILE
"""

import asyncio
import sys


def main() -> None:
    ledger_dir, ready_file = sys.argv[1], sys.argv[2]
    from repro.service.server import ServiceConfig, run_service

    asyncio.run(run_service(ServiceConfig(
        ledger_dir=ledger_dir, ready_file=ready_file,
        window_s=0.001, snapshot_every=5)))


if __name__ == "__main__":
    main()
