"""Tests for statistical goodness-of-fit validation."""

import pytest

from repro.core.fitting import fit_mle
from repro.core.models import LognormalLifetime, fit_lifetime_model
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.sim.validation import (
    chi_square_binned,
    ks_test,
    validate_model,
)

TRUE = WeibullDistribution(alpha=14.0, beta=8.0)


class TestKS:
    def test_true_model_accepted(self, rng):
        data = TRUE.sample(size=2000, rng=rng)
        _, pvalue = ks_test(data, TRUE)
        assert pvalue > 0.01

    def test_wrong_scale_rejected(self, rng):
        data = TRUE.sample(size=2000, rng=rng)
        wrong = WeibullDistribution(alpha=10.0, beta=8.0)
        _, pvalue = ks_test(data, wrong)
        assert pvalue < 1e-6

    def test_accepts_models_with_reliability_only(self, rng):
        data = TRUE.sample(size=500, rng=rng)

        class OnlyReliability:
            def reliability(self, x):
                return TRUE.reliability(x)

        _, pvalue = ks_test(data, OnlyReliability())
        assert pvalue > 0.01

    def test_sample_validation(self):
        with pytest.raises(ConfigurationError):
            ks_test([1.0] * 4, TRUE)
        with pytest.raises(ConfigurationError):
            ks_test([1.0] * 10 + [-1.0], TRUE)


class TestChiSquare:
    def test_true_model_accepted(self, rng):
        data = TRUE.sample(size=3000, rng=rng)
        _, pvalue = chi_square_binned(data, TRUE)
        assert pvalue > 0.01

    def test_wrong_shape_rejected(self, rng):
        data = TRUE.sample(size=3000, rng=rng)
        wrong = WeibullDistribution(alpha=14.0, beta=3.0)
        _, pvalue = chi_square_binned(data, wrong)
        assert pvalue < 1e-6

    def test_bin_requirements(self, rng):
        data = TRUE.sample(size=30, rng=rng)
        with pytest.raises(ConfigurationError):
            chi_square_binned(data, TRUE, n_bins=10)
        with pytest.raises(ConfigurationError):
            chi_square_binned(TRUE.sample(size=100, rng=rng), TRUE,
                              n_bins=2)


class TestValidateModel:
    def test_fitted_weibull_passes(self, rng):
        data = TRUE.sample(size=3000, rng=rng)
        verdict = validate_model(data, fit_mle(data))
        assert verdict.acceptable

    def test_wrong_family_flagged(self, rng):
        """Weibull data force-fitted as lognormal gets caught - the
        Section 7 scenario these tools exist for."""
        data = WeibullDistribution(alpha=14.0, beta=12.0).sample(
            size=8000, rng=rng)
        lognorm = fit_lifetime_model(data, "lognormal")
        verdict = validate_model(data, lognorm)
        assert not verdict.acceptable

    def test_lognormal_data_with_lognormal_fit_passes(self, rng):
        truth = LognormalLifetime(mu=2.6, sigma=0.15)
        data = truth.sample(size=3000, rng=rng)
        verdict = validate_model(data, fit_lifetime_model(data,
                                                          "lognormal"))
        assert verdict.acceptable

    def test_significance_validated(self, rng):
        data = TRUE.sample(size=500, rng=rng)
        with pytest.raises(ConfigurationError):
            validate_model(data, TRUE, significance=0.9)
