"""Tests for the Monte Carlo harness, including fast-vs-exact agreement."""

import numpy as np
import pytest

from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.sim.montecarlo import (
    simulate_access_bounds,
    simulate_access_bounds_hardware,
    summarize_bounds,
)
from repro.sim.rng import make_rng, spawn_rngs


@pytest.fixture(scope="module")
def small_design():
    device = WeibullDistribution(alpha=10.0, beta=8.0)
    return solve_encoded_fractional(device, 100, 0.10, PAPER_CRITERIA)


class TestRngHelpers:
    def test_make_rng_seeded_reproducible(self):
        assert (make_rng(7).integers(0, 100, 5).tolist()
                == make_rng(7).integers(0, 100, 5).tolist())

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(3, 4)
        assert len(rngs) == 4
        draws = [r.integers(0, 10 ** 9) for r in rngs]
        assert len(set(draws)) == 4

    def test_spawn_reproducible(self):
        a = [r.integers(0, 10 ** 9) for r in spawn_rngs(5, 3)]
        b = [r.integers(0, 10 ** 9) for r in spawn_rngs(5, 3)]
        assert a == b


class TestFastPath:
    def test_bounds_cover_guarantee(self, small_design, rng):
        bounds = simulate_access_bounds(small_design, 300, rng)
        frac_ok = (bounds >= small_design.guaranteed_accesses).mean()
        assert frac_ok > 0.95

    def test_chunking_invariant(self, small_design):
        a = simulate_access_bounds(small_design, 50,
                                   np.random.default_rng(1),
                                   max_copies_per_chunk=10 ** 9)
        b = simulate_access_bounds(small_design, 50,
                                   np.random.default_rng(1),
                                   max_copies_per_chunk=small_design.copies
                                   * small_design.n)
        np.testing.assert_array_equal(a, b)

    def test_rejects_zero_trials(self, small_design, rng):
        with pytest.raises(ConfigurationError):
            simulate_access_bounds(small_design, 0, rng)

    def test_mean_matches_expected_bound(self, small_design, rng):
        bounds = simulate_access_bounds(small_design, 2000, rng)
        assert bounds.mean() == pytest.approx(
            small_design.expected_access_bound(), rel=0.01)


class TestHardwarePathAgreement:
    def test_fast_and_exact_paths_agree(self, small_design):
        """The order-statistics shortcut must match driving real switches."""
        fast = simulate_access_bounds(small_design, 150,
                                      np.random.default_rng(2))
        slow = simulate_access_bounds_hardware(small_design, 60,
                                               np.random.default_rng(3))
        assert fast.mean() == pytest.approx(slow.mean(), rel=0.01)
        assert abs(fast.std() - slow.std()) < max(fast.std(), 2.0)

    def test_hardware_path_max_accesses(self, small_design, rng):
        bounds = simulate_access_bounds_hardware(small_design, 3, rng,
                                                 max_accesses=10)
        assert np.all(bounds == 10)

    def test_rejects_zero_trials(self, small_design, rng):
        with pytest.raises(ConfigurationError):
            simulate_access_bounds_hardware(small_design, 0, rng)


class TestSummary:
    def test_summary_fields(self, small_design, rng):
        bounds = simulate_access_bounds(small_design, 500, rng)
        summary = summarize_bounds(bounds)
        assert summary.trials == 500
        assert summary.minimum <= summary.p01 <= summary.p50
        assert summary.p50 <= summary.p99 <= summary.maximum
        assert summary.meets_lower_bound(summary.minimum)
        assert not summary.meets_lower_bound(summary.maximum + 1)

    def test_summary_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            summarize_bounds(np.array([]))
