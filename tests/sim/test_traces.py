"""Tests for trace generation and replay."""

import numpy as np
import pytest

from repro.core.degradation import (
    PAPER_CRITERIA,
    DesignPoint,
    solve_encoded_fractional,
)
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.sim.timeline import UsageProfile
from repro.sim.traces import (
    EndState,
    EventKind,
    TraceEvent,
    generate_trace,
    replay_trace,
)

DEVICE = WeibullDistribution(alpha=10.0, beta=8.0)
PROFILE = UsageProfile(mean_daily=10.0)


def design(bound):
    return solve_encoded_fractional(DEVICE, bound, 0.10, PAPER_CRITERIA)


class TestGenerateTrace:
    def test_chronological_and_sized(self, rng):
        trace = generate_trace(PROFILE, 30, rng)
        days = [e.day for e in trace]
        assert days == sorted(days)
        owner = sum(e.kind is EventKind.OWNER_LOGIN for e in trace)
        assert owner == pytest.approx(300, rel=0.25)

    def test_typo_rate(self, rng):
        trace = generate_trace(PROFILE, 200, rng, typo_rate=0.2)
        logins = sum(e.kind is EventKind.OWNER_LOGIN for e in trace)
        typos = sum(e.kind is EventKind.OWNER_TYPO for e in trace)
        assert typos / logins == pytest.approx(0.2, abs=0.04)

    def test_attacker_burst(self, rng):
        trace = generate_trace(PROFILE, 10, rng, attacker_burst_day=5,
                               attacker_burst_size=40)
        burst = [e for e in trace if e.kind is EventKind.ATTACKER_GUESS]
        assert len(burst) == 40
        assert all(e.day == 5 for e in burst)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            generate_trace(PROFILE, 0, rng)
        with pytest.raises(ConfigurationError):
            generate_trace(PROFILE, 5, rng, typo_rate=1.0)
        with pytest.raises(ConfigurationError):
            generate_trace(PROFILE, 5, rng, attacker_burst_size=-1)


class TestReplay:
    def test_quiet_life_survives(self, rng):
        trace = generate_trace(PROFILE, 20, rng, typo_rate=0.0)
        report = replay_trace([design(400)], ["pc-0"], b"data", trace, rng)
        assert report.survived
        assert report.owner_logins == len(trace)
        assert report.migrations == 0
        assert not report.attacker_breached

    def test_migration_extends_service(self, rng):
        trace = generate_trace(PROFILE, 60, rng, typo_rate=0.0)
        # One 300-access module dies mid-trace (~600 logins)...
        single = replay_trace([design(300)], ["pc-0"], b"data", trace,
                              np.random.default_rng(1))
        assert not single.survived
        # ...two modules with auto-migration survive it.
        double = replay_trace([design(300)] * 2, ["pc-0", "pc-1"],
                              b"data", trace, np.random.default_rng(1))
        assert double.survived
        assert double.migrations == 1
        assert double.owner_logins == len(trace)

    def test_attacker_burst_burns_budget_without_breach(self, rng):
        trace = generate_trace(PROFILE, 30, rng, typo_rate=0.0,
                               attacker_burst_day=3,
                               attacker_burst_size=100)
        report = replay_trace([design(350)], ["pc-0"], b"data", trace,
                              rng)
        assert report.attacker_attempts > 0
        assert not report.attacker_breached
        # The burst consumed budget the owner would have used.
        assert not report.survived or report.owner_logins < len(trace)

    def test_typos_count_against_budget(self, rng):
        trace = generate_trace(PROFILE, 25, rng, typo_rate=0.3)
        report = replay_trace([design(400)], ["pc-0"], b"data", trace,
                              rng)
        assert report.owner_typos > 0

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            replay_trace([design(100)], ["x"], b"d", [], rng,
                         migrate_below_fraction=1.0)


# Hand-built designs for the end-state edge cases.  alpha=0.5 devices die
# before their first actuation completes; alpha=2.5/beta=200 devices are so
# consistent they serve exactly 2 accesses and die on the third.
FRAGILE = DesignPoint(device=WeibullDistribution(alpha=0.5, beta=8.0),
                      n=4, k=1, t=1, copies=1, access_bound=1,
                      criteria=PAPER_CRITERIA)
TWO_SHOT = DesignPoint(device=WeibullDistribution(alpha=2.5, beta=200.0),
                       n=1, k=1, t=3, copies=1, access_bound=3,
                       criteria=PAPER_CRITERIA)


class TestReplayEndStates:
    """The EndState taxonomy is exhaustive: each state is reachable and
    every replay lands in exactly one."""

    def test_empty_trace_serves_in_full(self, rng):
        report = replay_trace([design(100)], ["pc-0"], b"data", [], rng)
        assert report.end_state is EndState.SERVED_FULL_TRACE
        assert report.survived
        assert report.days_served == 0
        assert report.owner_logins == 0
        assert report.migrations == 0

    def test_wearout_on_first_login(self, rng):
        trace = [TraceEvent(0, EventKind.OWNER_LOGIN)]
        report = replay_trace([FRAGILE], ["pc-0"], b"data", trace, rng)
        assert report.end_state is EndState.WORN_OUT
        assert not report.survived
        assert report.died_on_day == 0
        assert not report.died_during_migration
        assert report.owner_logins == 0
        assert report.days_served == 0

    def test_death_during_migration(self, rng):
        # The module guarantees 3 accesses; the phone serves 2 logins and
        # then migrates proactively (remaining 1 <= 0.4 * 3).  Migration
        # itself logs in on the retiring module - its third and fatal
        # access - so the phone dies migrating, not serving.
        trace = [TraceEvent(d, EventKind.OWNER_LOGIN) for d in range(3)]
        report = replay_trace([TWO_SHOT, TWO_SHOT], ["pc-0", "pc-1"],
                              b"data", trace, rng,
                              migrate_below_fraction=0.4)
        assert report.end_state is EndState.DIED_MIGRATING
        assert report.died_during_migration
        assert not report.survived
        assert report.migrations == 0

    def test_taxonomy_is_total(self, rng):
        # Every replay outcome maps to exactly one of the three states.
        outcomes = {
            replay_trace([design(100)], ["p"], b"d", [], rng).end_state,
            replay_trace([FRAGILE], ["p"], b"d",
                         [TraceEvent(0, EventKind.OWNER_LOGIN)],
                         rng).end_state,
            replay_trace([TWO_SHOT, TWO_SHOT], ["p", "q"], b"d",
                         [TraceEvent(d, EventKind.OWNER_LOGIN)
                          for d in range(3)],
                         rng, migrate_below_fraction=0.4).end_state,
        }
        assert outcomes == set(EndState)
