"""Shard-checkpoint merge edge cases (satellite of the parallelism issue).

The merge step is where a parallel campaign's on-disk shards become a
canonical serial-compatible checkpoint; these tests pin the refusal
behaviors (overlap, schema drift, out-of-range) that keep a stale or
mixed-generation shard directory from being silently absorbed.
"""

import pytest

from repro.errors import ConfigurationError
from repro.sim.checkpoint import (
    SCHEMA_VERSION,
    list_shard_checkpoints,
    merge_shard_payloads,
    save_checkpoint,
    shard_checkpoint_path,
)


def shard_payload(start, stop, results, schema_version=SCHEMA_VERSION):
    return {
        "schema_version": schema_version,
        "meta": {"seed": 0, "trials": 10, "shard": [start, stop]},
        "completed": len(results),
        "results": results,
    }


class TestShardPaths:
    def test_path_embeds_zero_padded_range(self, tmp_path):
        base = str(tmp_path / "c.ckpt")
        assert shard_checkpoint_path(base, 0, 25) \
            == f"{base}.shard-00000000-00000025"

    def test_rejects_inverted_or_negative_range(self, tmp_path):
        base = str(tmp_path / "c.ckpt")
        with pytest.raises(ConfigurationError):
            shard_checkpoint_path(base, 5, 4)
        with pytest.raises(ConfigurationError):
            shard_checkpoint_path(base, -1, 4)

    def test_listing_finds_only_this_campaigns_shards(self, tmp_path):
        base = str(tmp_path / "c.ckpt")
        other = str(tmp_path / "other.ckpt")
        for path_base, start, stop in [(base, 0, 5), (base, 5, 10),
                                       (other, 0, 5)]:
            save_checkpoint(shard_checkpoint_path(path_base, start, stop),
                            {"shard": [start, stop]}, [])
        assert list_shard_checkpoints(base) == [
            shard_checkpoint_path(base, 0, 5),
            shard_checkpoint_path(base, 5, 10),
        ]

    def test_listing_survives_glob_metacharacters_in_path(self, tmp_path):
        base = str(tmp_path / "run[1].ckpt")
        save_checkpoint(shard_checkpoint_path(base, 0, 3),
                        {"shard": [0, 3]}, [1, 2, 3])
        assert list_shard_checkpoints(base) \
            == [shard_checkpoint_path(base, 0, 3)]


class TestMerge:
    def test_merges_disjoint_shards(self):
        merged = merge_shard_payloads(
            [shard_payload(0, 3, ["a", "b", "c"]),
             shard_payload(7, 9, ["h", "i"]),
             shard_payload(3, 5, ["d"])],  # partial shard: only trial 3
            trials=10)
        assert merged == {0: "a", 1: "b", 2: "c", 3: "d", 7: "h", 8: "i"}

    def test_empty_shard_contributes_nothing(self):
        assert merge_shard_payloads([shard_payload(4, 8, [])], 10) == {}
        assert merge_shard_payloads([], 10) == {}

    def test_overlapping_ranges_raise(self):
        with pytest.raises(ConfigurationError, match="both claim trial 2"):
            merge_shard_payloads(
                [shard_payload(0, 3, ["a", "b", "c"]),
                 shard_payload(2, 5, ["x", "y"])],
                trials=10)

    def test_overlap_only_counts_materialized_results(self):
        # Ranges overlap on paper, but the first shard's results stop
        # before the overlap - no trial is claimed twice, so this is a
        # legitimate partial-progress layout and must merge.
        merged = merge_shard_payloads(
            [shard_payload(0, 5, ["a", "b"]),
             shard_payload(2, 5, ["c", "d", "e"])],
            trials=10)
        assert merged == {0: "a", 1: "b", 2: "c", 3: "d", 4: "e"}

    def test_schema_version_mismatch_raises(self):
        with pytest.raises(ConfigurationError, match="schema_version"):
            merge_shard_payloads(
                [shard_payload(0, 2, ["a", "b"]),
                 shard_payload(2, 4, ["c"], schema_version=2)],
                trials=10)

    def test_range_outside_campaign_raises(self):
        with pytest.raises(ConfigurationError, match="outside"):
            merge_shard_payloads([shard_payload(8, 12, ["x"])], trials=10)
        with pytest.raises(ConfigurationError, match="outside"):
            merge_shard_payloads([shard_payload(-2, 2, ["x"])], trials=10)

    def test_too_many_results_for_range_raises(self):
        with pytest.raises(ConfigurationError, match="holds 3 results"):
            merge_shard_payloads([shard_payload(0, 2, ["a", "b", "c"])],
                                 trials=10)

    def test_missing_or_malformed_shard_meta_raises(self):
        bad = shard_payload(0, 2, ["a"])
        del bad["meta"]["shard"]
        with pytest.raises(ConfigurationError, match="shard"):
            merge_shard_payloads([bad], trials=10)
        with pytest.raises(ConfigurationError, match="shard"):
            merge_shard_payloads(
                [{"schema_version": SCHEMA_VERSION,
                  "meta": {"shard": [0, "two"]},
                  "completed": 1, "results": ["a"]}],
                trials=10)

    def test_invalid_trial_count_raises(self):
        with pytest.raises(ConfigurationError):
            merge_shard_payloads([], trials=0)
