"""Tests for checkpoint IO, substreams, and the checkpointed runner."""

import json
import os

import numpy as np
import pytest

from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.sim.checkpoint import (
    load_checkpoint,
    save_checkpoint,
    validate_checkpoint,
)
from repro.sim.montecarlo import (
    run_checkpointed_trials,
    simulate_access_bounds_checkpointed,
)
from repro.sim.rng import (
    get_default_seed,
    make_rng,
    set_default_seed,
    spawn_rngs,
    substream,
)


@pytest.fixture(scope="module")
def design():
    device = WeibullDistribution(alpha=9.0, beta=8.0)
    return solve_encoded_fractional(device, 30, 0.10, PAPER_CRITERIA)


class TestSubstream:
    def test_keyed_by_seed_and_index_only(self):
        a = substream(7, 3).random(5)
        b = substream(7, 3).random(5)
        assert np.array_equal(a, b)

    def test_matches_spawn_semantics(self):
        spawned = spawn_rngs(7, 4)[3].random(5)
        direct = substream(7, 3).random(5)
        assert np.array_equal(spawned, direct)

    def test_distinct_indices_are_independent(self):
        assert not np.array_equal(substream(7, 0).random(5),
                                  substream(7, 1).random(5))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            substream(7, -1)


class TestDefaultSeedPolicy:
    def test_default_seed_makes_make_rng_reproducible(self):
        try:
            set_default_seed(99)
            assert get_default_seed() == 99
            first = make_rng().random(4)
            set_default_seed(99)
            again = make_rng().random(4)
            assert np.array_equal(first, again)
        finally:
            set_default_seed(None)
        assert get_default_seed() is None

    def test_explicit_seed_overrides_policy(self):
        try:
            set_default_seed(99)
            assert np.array_equal(make_rng(5).random(4),
                                  np.random.default_rng(5).random(4))
        finally:
            set_default_seed(None)


class TestCheckpointIO:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        meta = {"seed": 1, "trials": 3}
        save_checkpoint(path, meta, [10, 20])
        payload = load_checkpoint(path)
        assert payload["completed"] == 2
        assert validate_checkpoint(payload, meta, path) == [10, 20]

    def test_missing_file_is_none(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "absent.json")) is None

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_checkpoint(str(path))

    def test_inconsistent_completed_count_rejected(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text(json.dumps({"schema_version": 1, "meta": {},
                                    "completed": 5, "results": [1]}))
        with pytest.raises(ConfigurationError):
            load_checkpoint(str(path))

    def test_meta_mismatch_names_the_field(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(path, {"seed": 1}, [1])
        payload = load_checkpoint(path)
        with pytest.raises(ConfigurationError, match="seed"):
            validate_checkpoint(payload, {"seed": 2}, path)

    def test_write_is_atomic(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(path, {}, [1])
        save_checkpoint(path, {}, [1, 2])
        assert not os.path.exists(path + ".tmp")
        assert load_checkpoint(path)["completed"] == 2


class TestCheckpointedRunner:
    @staticmethod
    def trial(index, rng):
        return [index, float(rng.random())]

    def test_results_independent_of_interruption(self, tmp_path):
        path = str(tmp_path / "run.json")
        straight = run_checkpointed_trials(self.trial, 10, seed=3)

        calls = {"n": 0}

        def dying_trial(index, rng):
            calls["n"] += 1
            if calls["n"] > 4:  # simulate a kill mid-campaign
                raise KeyboardInterrupt
            return self.trial(index, rng)

        with pytest.raises(KeyboardInterrupt):
            run_checkpointed_trials(dying_trial, 10, seed=3,
                                    checkpoint_path=path,
                                    checkpoint_every=2)
        assert load_checkpoint(path)["completed"] == 4
        resumed = run_checkpointed_trials(self.trial, 10, seed=3,
                                          checkpoint_path=path,
                                          checkpoint_every=2)
        assert resumed == straight

    def test_completed_campaign_is_not_rerun(self, tmp_path):
        path = str(tmp_path / "run.json")
        first = run_checkpointed_trials(self.trial, 5, seed=3,
                                        checkpoint_path=path)

        def exploding(index, rng):  # would fail if any trial re-ran
            raise AssertionError("trial re-executed")

        again = run_checkpointed_trials(exploding, 5, seed=3,
                                        checkpoint_path=path)
        assert again == first

    def test_oversized_checkpoint_rejected(self, tmp_path):
        path = str(tmp_path / "run.json")
        run_checkpointed_trials(self.trial, 5, seed=3,
                                checkpoint_path=path)
        with pytest.raises(ConfigurationError):
            run_checkpointed_trials(self.trial, 3, seed=3,
                                    checkpoint_path=path)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            run_checkpointed_trials(self.trial, 0, seed=3)
        with pytest.raises(ConfigurationError):
            run_checkpointed_trials(self.trial, 1, seed=3,
                                    checkpoint_every=0)


class TestCheckpointedAccessBounds:
    def test_fast_path_deterministic_and_resumable(self, design, tmp_path):
        path = str(tmp_path / "mc.json")
        straight = simulate_access_bounds_checkpointed(design, 8, seed=11)
        resumed_half = simulate_access_bounds_checkpointed(
            design, 8, seed=11, checkpoint_path=path, checkpoint_every=3)
        assert np.array_equal(straight, resumed_half)
        # Re-running from the completed checkpoint changes nothing.
        again = simulate_access_bounds_checkpointed(
            design, 8, seed=11, checkpoint_path=path)
        assert np.array_equal(straight, again)

    def test_hardware_and_fast_paths_agree_on_scale(self, design):
        fast = simulate_access_bounds_checkpointed(design, 6, seed=2)
        hardware = simulate_access_bounds_checkpointed(design, 6, seed=2,
                                                       hardware=True)
        assert hardware.mean() == pytest.approx(fast.mean(), rel=0.2)

    def test_mode_mismatch_rejected(self, design, tmp_path):
        path = str(tmp_path / "mc.json")
        simulate_access_bounds_checkpointed(design, 3, seed=2,
                                            checkpoint_path=path)
        with pytest.raises(ConfigurationError):
            simulate_access_bounds_checkpointed(design, 3, seed=2,
                                                hardware=True,
                                                checkpoint_path=path)
