"""Unit tests for the process-pool sharded campaign engine.

The bit-identity guarantees (serial == parallel for any worker count,
kill + resume) live in ``tests/differential``; this module covers the
engine mechanics: shard planning, structured failure handling with
retries, checkpoint bookkeeping, and the worker-side RNG isolation that
keeps workers decorrelated.
"""

import json
import os
import time

import pytest

from repro.errors import ConfigurationError, ParallelExecutionError
from repro.sim.checkpoint import list_shard_checkpoints, save_checkpoint
from repro.sim.parallel import (
    _shard_worker,
    default_shard_size,
    default_workers,
    plan_shards,
    run_parallel_trials,
)
from repro.sim.rng import get_default_seed, set_default_seed, substream


def draw_trial(index, rng):
    """Contract-abiding trial: all randomness from the supplied rng."""
    return int(rng.integers(0, 10 ** 6))


def crash_once_trial(index, rng, flag_dir):
    """Kills its worker process the first time trial 5 runs."""
    flag = os.path.join(flag_dir, "crashed")
    if index == 5 and not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os._exit(3)
    return draw_trial(index, rng)


def raising_trial(index, rng):
    if index == 2:
        raise ValueError("injected trial failure")
    return index


def sleeping_trial(index, rng):
    time.sleep(1.0)
    return index


def default_seed_probe_trial(index, rng):
    """Reports whether the worker still carries an inherited default seed."""
    return get_default_seed()


def reference(trials, seed):
    return [int(substream(seed, i).integers(0, 10 ** 6))
            for i in range(trials)]


class TestPlanning:
    def test_partitions_into_bounded_contiguous_shards(self):
        assert plan_shards(list(range(10)), 4) == [(0, 4), (4, 8), (8, 10)]
        assert plan_shards(list(range(3)), 100) == [(0, 3)]
        assert plan_shards([], 5) == []

    def test_gaps_break_shards(self):
        indices = [0, 1, 4, 5, 6, 9]
        assert plan_shards(indices, 100) == [(0, 2), (4, 7), (9, 10)]

    def test_rejects_unsorted_indices(self):
        with pytest.raises(ConfigurationError):
            plan_shards([3, 2], 4)
        with pytest.raises(ConfigurationError):
            plan_shards([1, 1], 4)

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ConfigurationError):
            plan_shards([0], 0)

    def test_default_shard_size(self):
        assert default_shard_size(100, 2) == 13  # ceil(100 / (2 * 4))
        assert default_shard_size(1, 64) == 1
        assert default_workers() >= 1


class TestEngine:
    def test_matches_substream_reference(self):
        assert run_parallel_trials(draw_trial, 17, 9, workers=3) \
            == reference(17, 9)

    def test_single_worker_pool(self):
        assert run_parallel_trials(draw_trial, 7, 1, workers=1) \
            == reference(7, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_parallel_trials(draw_trial, 0, 0)
        with pytest.raises(ConfigurationError):
            run_parallel_trials(draw_trial, 1, 0, workers=0)
        with pytest.raises(ConfigurationError):
            run_parallel_trials(draw_trial, 1, 0, checkpoint_every=0)
        with pytest.raises(ConfigurationError):
            run_parallel_trials(draw_trial, 1, 0, max_shard_retries=-1)
        with pytest.raises(ConfigurationError):
            run_parallel_trials(draw_trial, 1, 0, shard_timeout=0.0)

    def test_worker_crash_is_retried(self, tmp_path):
        results = run_parallel_trials(
            crash_once_trial, 12, 9, trial_args=(str(tmp_path),),
            workers=2, max_shard_retries=2, shard_size=3)
        assert results == reference(12, 9)
        assert (tmp_path / "crashed").exists()

    def test_persistent_error_raises_structured(self):
        with pytest.raises(ParallelExecutionError) as excinfo:
            run_parallel_trials(raising_trial, 6, 0, workers=2,
                                max_shard_retries=1, shard_size=3)
        error = excinfo.value
        assert error.kind == "error"
        assert error.shard == (0, 3)  # trial 2 lives in the first shard
        assert error.attempts == 2
        assert isinstance(error.cause, ValueError)

    def test_timeout_raises_structured(self):
        started = time.perf_counter()
        with pytest.raises(ParallelExecutionError) as excinfo:
            run_parallel_trials(sleeping_trial, 1, 0, workers=1,
                                max_shard_retries=0, shard_timeout=0.2)
        assert excinfo.value.kind == "timeout"
        assert excinfo.value.shard == (0, 1)
        # The engine gave up on the hung worker instead of joining it.
        assert time.perf_counter() - started < 0.9

    def test_finished_shards_survive_a_failure(self, tmp_path):
        path = str(tmp_path / "campaign.ckpt")
        with pytest.raises(ParallelExecutionError):
            run_parallel_trials(raising_trial, 12, 0, workers=2,
                                max_shard_retries=0, shard_size=3,
                                checkpoint_path=path, checkpoint_every=1)
        # Later shards completed and remain resumable on disk.
        assert list_shard_checkpoints(path)

    def test_checkpoint_written_and_shards_cleaned(self, tmp_path):
        path = str(tmp_path / "campaign.ckpt")
        results = run_parallel_trials(draw_trial, 20, 3, workers=2,
                                      checkpoint_path=path,
                                      checkpoint_every=2, shard_size=4)
        payload = json.loads(open(path).read())
        assert payload["completed"] == 20
        assert payload["results"] == results
        assert payload["meta"]["seed"] == 3
        assert list_shard_checkpoints(path) == []

    def test_resumes_canonical_checkpoint(self, tmp_path):
        path = str(tmp_path / "campaign.ckpt")
        full = run_parallel_trials(draw_trial, 10, 5, workers=2,
                                   checkpoint_path=path)
        # Truncate to a 4-trial prefix and resume.
        save_checkpoint(path, {"seed": 5, "trials": 10}, full[:4])
        resumed = run_parallel_trials(draw_trial, 10, 5, workers=3,
                                      checkpoint_path=path)
        assert resumed == full

    def test_oversized_checkpoint_rejected(self, tmp_path):
        path = str(tmp_path / "campaign.ckpt")
        save_checkpoint(path, {"seed": 0, "trials": 2}, [1, 2, 3])
        with pytest.raises(ConfigurationError):
            run_parallel_trials(draw_trial, 2, 0, workers=1,
                                checkpoint_path=path)


class TestWorkerRngIsolation:
    """Regression: forked workers must not replay inherited RNG state.

    A worker inherits the parent's module-level default-seed stream on
    fork; if trial code fell back to it, every worker would replay the
    *same* stream and observe correlated draws.  The worker entry point
    therefore clears the default seed, and all sampling derives from the
    per-trial substream.
    """

    def test_worker_entry_clears_inherited_default_seed(self):
        set_default_seed(123)
        try:
            # Run the worker body in-process: it must clear the default
            # seed before executing any trial.
            _, _, probes = _shard_worker(
                default_seed_probe_trial, (), 0, 0, 3, None, 1,
                {"seed": 0, "trials": 3})
            assert probes == [None, None, None]
            assert get_default_seed() is None
        finally:
            set_default_seed(None)

    def test_two_workers_never_observe_correlated_draws(self):
        # Two "workers" that both inherited the same parent default seed
        # run adjacent shards: their per-trial results must all be
        # distinct (substream-keyed), never a replay of one another.
        set_default_seed(77)
        try:
            _, _, left = _shard_worker(draw_trial, (), 11, 0, 6, None, 1,
                                       {"seed": 11, "trials": 12})
        finally:
            set_default_seed(None)
        set_default_seed(77)
        try:
            _, _, right = _shard_worker(draw_trial, (), 11, 6, 12, None, 1,
                                        {"seed": 11, "trials": 12})
        finally:
            set_default_seed(None)
        assert left + right == reference(12, 11)
        assert not set(left) & set(right)

    def test_parallel_matches_serial_despite_parent_default_seed(self):
        set_default_seed(42)
        try:
            results = run_parallel_trials(draw_trial, 8, 2, workers=2)
        finally:
            set_default_seed(None)
        assert results == reference(8, 2)
