"""Tests for calendar-time usage simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.timeline import (
    UsageProfile,
    required_safety_factor,
    simulate_service_life,
)


class TestUsageProfile:
    def test_mean_daily(self, rng):
        profile = UsageProfile(mean_daily=50.0)
        days = profile.sample_days(20_000, rng)
        assert days.mean() == pytest.approx(50.0, rel=0.02)

    def test_weekend_factor(self, rng):
        profile = UsageProfile(mean_daily=50.0, weekend_factor=2.0)
        days = profile.sample_days(70_000, rng)
        weekdays = days[np.arange(70_000) % 7 < 5]
        weekends = days[np.arange(70_000) % 7 >= 5]
        assert weekends.mean() / weekdays.mean() == pytest.approx(2.0,
                                                                  rel=0.05)

    def test_heavy_days_raise_mean(self, rng):
        base = UsageProfile(mean_daily=50.0)
        heavy = UsageProfile(mean_daily=50.0, heavy_day_probability=0.1,
                             heavy_day_factor=5.0)
        assert (heavy.sample_days(20_000, rng).mean()
                > base.sample_days(20_000, rng).mean() * 1.2)

    @pytest.mark.parametrize("kwargs", [
        {"mean_daily": 0.0}, {"weekend_factor": 0.0},
        {"heavy_day_probability": 1.0}, {"heavy_day_factor": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            UsageProfile(**kwargs)

    def test_sample_days_validation(self, rng):
        with pytest.raises(ConfigurationError):
            UsageProfile().sample_days(0, rng)


class TestServiceLife:
    def test_paper_sizing_fails_half_the_time_under_poisson(self, rng):
        """The paper's exact bound (50/day * 5 years) is a *mean* under
        Poisson usage: ~half of owners run out before year five."""
        summary = simulate_service_life(
            access_budget=91_250, profile=UsageProfile(mean_daily=50.0),
            target_years=5.0, trials=200, rng=rng)
        assert 0.25 < summary.fraction_reaching_target < 0.75

    def test_oversized_budget_always_reaches_target(self, rng):
        summary = simulate_service_life(
            access_budget=2 * 91_250, profile=UsageProfile(mean_daily=50.0),
            target_years=5.0, trials=100, rng=rng)
        assert summary.fraction_reaching_target == 1.0

    def test_light_usage_extends_life(self, rng):
        light = simulate_service_life(10_000, UsageProfile(mean_daily=10),
                                      1.0, 100, rng)
        heavy = simulate_service_life(10_000, UsageProfile(mean_daily=100),
                                      1.0, 100, rng)
        assert light.mean_days > heavy.mean_days * 5

    def test_percentiles_ordered(self, rng):
        summary = simulate_service_life(5_000, UsageProfile(mean_daily=50),
                                        1.0, 150, rng)
        assert summary.p05_days <= summary.p50_days <= 2 * 365

    def test_validation(self, rng):
        profile = UsageProfile()
        with pytest.raises(ConfigurationError):
            simulate_service_life(0, profile, 1.0, 10, rng)
        with pytest.raises(ConfigurationError):
            simulate_service_life(100, profile, 0.0, 10, rng)
        with pytest.raises(ConfigurationError):
            simulate_service_life(100, profile, 1.0, 0, rng)


class TestSafetyFactor:
    def test_poisson_usage_needs_replication(self, rng):
        """Exact-mean sizing needs M >= 2 for 99% service confidence -
        a deployment insight the paper's deterministic sizing misses."""
        factor = required_safety_factor(
            UsageProfile(mean_daily=50.0), target_years=5.0,
            base_budget=91_250, rng=rng, confidence=0.99, trials=60)
        assert factor == 2

    def test_generous_budget_needs_no_replication(self, rng):
        factor = required_safety_factor(
            UsageProfile(mean_daily=20.0), target_years=5.0,
            base_budget=91_250, rng=rng, confidence=0.99, trials=40)
        assert factor == 1

    def test_overwhelming_usage_raises(self, rng):
        with pytest.raises(ConfigurationError):
            required_safety_factor(
                UsageProfile(mean_daily=5000.0), target_years=5.0,
                base_budget=91_250, rng=rng, max_factor=2, trials=20)

    def test_confidence_validated(self, rng):
        with pytest.raises(ConfigurationError):
            required_safety_factor(UsageProfile(), 1.0, 1000, rng,
                                   confidence=1.5)
