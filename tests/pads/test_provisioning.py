"""Tests for end-user one-time programming of pad chips."""

import pytest

from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.pads.provisioning import (
    AlreadyProgrammedError,
    AntifuseCell,
    BlankPadChip,
    OneTimeProgrammer,
    provision_blank_chip,
)

RELIABLE = WeibullDistribution(alpha=1000.0, beta=8.0)


class TestAntifuseCell:
    def test_programs_once(self):
        cell = AntifuseCell()
        cell.program(1)
        assert cell.value == 1
        with pytest.raises(AlreadyProgrammedError):
            cell.program(0)

    def test_zero_is_also_a_program(self):
        cell = AntifuseCell()
        cell.program(0)
        with pytest.raises(AlreadyProgrammedError):
            cell.program(0)

    def test_bit_validation(self):
        with pytest.raises(ConfigurationError):
            AntifuseCell().program(2)


class TestOneTimeProgrammer:
    def test_burn_and_read_back(self):
        programmer = OneTimeProgrammer(capacity_bytes=8)
        programmer.burn(0, b"\xA5\x3C")
        assert programmer.read(0, 2) == b"\xA5\x3C"

    def test_unburned_reads_zero(self):
        programmer = OneTimeProgrammer(capacity_bytes=4)
        assert programmer.read(0, 4) == b"\x00" * 4

    def test_double_burn_rejected(self):
        programmer = OneTimeProgrammer(capacity_bytes=4)
        programmer.burn(1, b"\xFF")
        with pytest.raises(AlreadyProgrammedError):
            programmer.burn(1, b"\x00")

    def test_disjoint_regions_ok(self):
        programmer = OneTimeProgrammer(capacity_bytes=4)
        programmer.burn(0, b"\x01")
        programmer.burn(2, b"\x02")
        assert programmer.read(0, 4) == b"\x01\x00\x02\x00"

    def test_capacity_enforced(self):
        programmer = OneTimeProgrammer(capacity_bytes=2)
        with pytest.raises(ConfigurationError):
            programmer.burn(1, b"\x00\x01")
        with pytest.raises(ConfigurationError):
            OneTimeProgrammer(capacity_bytes=0)


class TestProvisioningCeremony:
    def test_blank_chip_becomes_usable(self, rng):
        blank = BlankPadChip(n_pads=3, height=4, n_copies=8, k=2,
                             device=RELIABLE, key_bytes=16)
        chip, addresses = provision_blank_chip(blank, rng)
        assert len(addresses) == 3
        address = addresses[0]
        assert chip.retrieve(address) == chip.pads[0].true_key

    def test_second_provisioning_physically_rejected(self, rng):
        blank = BlankPadChip(n_pads=2, height=3, n_copies=4, k=1,
                             device=RELIABLE, key_bytes=8)
        provision_blank_chip(blank, rng)
        with pytest.raises(AlreadyProgrammedError):
            provision_blank_chip(blank, rng)

    def test_paths_burned_into_antifuses(self, rng):
        blank = BlankPadChip(n_pads=2, height=4, n_copies=4, k=1,
                             device=RELIABLE, key_bytes=8)
        chip, addresses = provision_blank_chip(blank, rng)
        for i, address in enumerate(addresses):
            stored = chip.programmer.read(i, 1)[0]
            assert stored == int(address.path, 2)

    def test_blank_validation(self):
        with pytest.raises(ConfigurationError):
            BlankPadChip(n_pads=0, height=3, n_copies=4, k=1,
                         device=RELIABLE)
