"""Tests for the hardware decision tree."""

import pytest

from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.pads.decision_tree import HardwareDecisionTree, path_bits_to_leaf

RELIABLE = WeibullDistribution(alpha=1000.0, beta=8.0)
FRAGILE = WeibullDistribution(alpha=0.5, beta=8.0)  # dies on first use


def make_tree(height, device, rng, marker=b"X"):
    leaves = 2 ** (height - 1)
    contents = [bytes([i]) + marker for i in range(leaves)]
    return HardwareDecisionTree(height, contents, device, rng), contents


class TestPathMapping:
    def test_empty_path(self):
        assert path_bits_to_leaf("") == 0

    def test_binary_interpretation(self):
        assert path_bits_to_leaf("010") == 2
        assert path_bits_to_leaf("111") == 7

    def test_invalid_characters(self):
        with pytest.raises(ConfigurationError):
            path_bits_to_leaf("01x")


class TestGeometry:
    def test_switch_count_is_2h_minus_1(self, rng):
        for height in (1, 2, 3, 5):
            tree, _ = make_tree(height, RELIABLE, rng)
            assert tree.switch_count == 2 ** height - 1

    def test_leaves_and_paths(self, rng):
        tree, _ = make_tree(4, RELIABLE, rng)
        assert tree.n_leaves == 8
        assert tree.n_paths == 8

    def test_path_has_h_switches(self, rng):
        tree, _ = make_tree(4, RELIABLE, rng)
        assert len(tree.path_switches("010")) == 4

    def test_distinct_paths_share_prefix_switches(self, rng):
        tree, _ = make_tree(3, RELIABLE, rng)
        a = tree.path_switches("00")
        b = tree.path_switches("01")
        c = tree.path_switches("11")
        assert a[0] is b[0] is c[0]      # shared root
        assert a[1] is b[1]              # shared level-2 switch (prefix 0)
        assert a[1] is not c[1]

    def test_leaf_count_must_match(self, rng):
        with pytest.raises(ConfigurationError):
            HardwareDecisionTree(3, [b"a"] * 3, RELIABLE, rng)

    def test_path_length_validated(self, rng):
        tree, _ = make_tree(3, RELIABLE, rng)
        with pytest.raises(ConfigurationError):
            tree.traverse("0")


class TestTraversal:
    def test_right_path_reads_right_leaf(self, rng):
        tree, contents = make_tree(4, RELIABLE, rng)
        assert tree.traverse("101") == contents[5]

    def test_leaf_read_is_destructive(self, rng):
        tree, contents = make_tree(3, RELIABLE, rng)
        assert tree.traverse("10") == contents[2]
        assert tree.traverse("10") is None  # register destroyed

    def test_other_leaves_still_readable(self, rng):
        tree, contents = make_tree(3, RELIABLE, rng)
        tree.traverse("10")
        assert tree.traverse("01") == contents[1]

    def test_fragile_tree_fails_traversal(self, rng):
        tree, _ = make_tree(4, FRAGILE, rng)
        assert tree.traverse("000") is None

    def test_failed_traversal_still_wears_switches(self, rng):
        tree, _ = make_tree(3, FRAGILE, rng)
        tree.traverse("00")
        assert all(s.cycles_used >= 1 for s in tree.path_switches("00"))

    def test_traversals_counted(self, rng):
        tree, _ = make_tree(3, RELIABLE, rng)
        tree.traverse("00")
        tree.traverse("11")
        assert tree.traversals == 2

    def test_wearout_eventually_blocks_path(self, rng):
        # Repeated traversals of the same path must kill it.
        short_lived = WeibullDistribution(alpha=5.0, beta=8.0)
        tree, _ = make_tree(2, short_lived, rng)
        results = [tree.traverse("0") for _ in range(30)]
        assert results[-1] is None
        # once dead, stays dead
        assert tree.traverse("0") is None

    def test_height_one_tree(self, rng):
        tree = HardwareDecisionTree(1, [b"only"], RELIABLE, rng)
        assert tree.traverse("") == b"only"
