"""Tests for one-time pads and pad chips."""

import pytest

from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError, InsufficientSharesError
from repro.pads.chip import OneTimePad, OneTimePadChip, PadAddress

DEVICE = WeibullDistribution(alpha=10.0, beta=1.0)
RELIABLE = WeibullDistribution(alpha=1000.0, beta=8.0)


class TestOneTimePad:
    def test_retrieve_with_right_path(self, rng):
        pad = OneTimePad(height=4, n_copies=16, k=3, device=RELIABLE,
                         rng=rng, key_bytes=32)
        assert pad.retrieve(pad.path) == pad.true_key

    def test_retrieve_wrong_path_gives_garbage_or_fails(self, rng):
        pad = OneTimePad(height=4, n_copies=16, k=3, device=RELIABLE,
                         rng=rng, key_bytes=32)
        wrong = "000" if pad.path != "000" else "001"
        try:
            value = pad.retrieve(wrong)
        except InsufficientSharesError:
            return
        assert value != pad.true_key

    def test_key_length_default_scales_with_height(self, rng):
        pad = OneTimePad(height=4, n_copies=4, k=1, device=RELIABLE,
                         rng=rng)
        assert len(pad.true_key) == (1000 * 4) // 8

    def test_second_retrieval_fails_registers_destroyed(self, rng):
        pad = OneTimePad(height=4, n_copies=8, k=2, device=RELIABLE,
                         rng=rng, key_bytes=16)
        pad.retrieve(pad.path)
        with pytest.raises(InsufficientSharesError):
            pad.retrieve(pad.path)

    def test_fragile_device_fails_retrieval(self, rng):
        dead = WeibullDistribution(alpha=0.5, beta=8.0)
        pad = OneTimePad(height=4, n_copies=8, k=2, device=dead, rng=rng,
                         key_bytes=16)
        with pytest.raises(InsufficientSharesError):
            pad.retrieve(pad.path)

    def test_k1_single_copy_suffices(self, rng):
        pad = OneTimePad(height=3, n_copies=6, k=1, device=RELIABLE,
                         rng=rng, key_bytes=16)
        assert pad.retrieve(pad.path) == pad.true_key

    def test_switch_count(self, rng):
        pad = OneTimePad(height=3, n_copies=4, k=1, device=RELIABLE,
                         rng=rng, key_bytes=8)
        assert pad.switch_count == 4 * (2 ** 3 - 1)

    def test_invalid_parameters(self, rng):
        with pytest.raises(ConfigurationError):
            OneTimePad(height=3, n_copies=4, k=5, device=RELIABLE, rng=rng)


class TestOneTimePadChip:
    def test_addresses_match_pads(self, rng):
        chip = OneTimePadChip(n_pads=5, height=3, n_copies=4, k=1,
                              device=RELIABLE, rng=rng, key_bytes=8)
        addresses = chip.addresses()
        assert [a.pad_id for a in addresses] == list(range(5))
        for address, pad in zip(addresses, chip.pads):
            assert address.path == pad.path

    def test_retrieve_by_address(self, rng):
        chip = OneTimePadChip(n_pads=3, height=4, n_copies=8, k=2,
                              device=RELIABLE, rng=rng, key_bytes=16)
        address = chip.addresses()[1]
        assert chip.retrieve(address) == chip.pads[1].true_key

    def test_unknown_pad_rejected(self, rng):
        chip = OneTimePadChip(n_pads=2, height=3, n_copies=4, k=1,
                              device=RELIABLE, rng=rng, key_bytes=8)
        with pytest.raises(ConfigurationError):
            chip.retrieve(PadAddress(pad_id=9, path="00"))

    def test_needs_at_least_one_pad(self, rng):
        with pytest.raises(ConfigurationError):
            OneTimePadChip(n_pads=0, height=3, n_copies=4, k=1,
                           device=RELIABLE, rng=rng)

    def test_switch_count_aggregates(self, rng):
        chip = OneTimePadChip(n_pads=3, height=3, n_copies=4, k=1,
                              device=RELIABLE, rng=rng, key_bytes=8)
        assert chip.switch_count == 3 * 4 * 7

    def test_empirical_receiver_success_matches_analysis(self, rng):
        """Monte Carlo over fabricated pads vs Eq. 10."""
        from repro.pads.analysis import receiver_success_probability

        successes = 0
        trials = 150
        for _ in range(trials):
            pad = OneTimePad(height=4, n_copies=16, k=2, device=DEVICE,
                             rng=rng, key_bytes=8)
            try:
                if pad.retrieve(pad.path) == pad.true_key:
                    successes += 1
            except InsufficientSharesError:
                pass
        predicted = receiver_success_probability(DEVICE, 4, 16, 2)
        assert successes / trials == pytest.approx(predicted, abs=0.08)
