"""Tests for adaptive raid planning and the defender's height rule."""

import numpy as np
import pytest

from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.pads.raid_planning import (
    defender_min_height,
    leak_probability,
    optimal_raid_plan,
    per_trial_success,
)

DEVICE = WeibullDistribution(alpha=10.0, beta=8.0)


class TestPerTrialSuccess:
    def test_decreases_with_wear(self):
        probs = [per_trial_success(DEVICE, 8, 32, 4, j)
                 for j in (1, 5, 9, 12, 20)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))
        assert probs[-1] < probs[0] / 100  # worn pads are worthless

    def test_halves_per_level(self):
        p8 = per_trial_success(DEVICE, 8, 32, 4, 1)
        p9 = per_trial_success(DEVICE, 9, 32, 4, 1)
        # One more level: half the guess probability, slightly lower
        # traversal success.
        assert p9 < p8 / 2 * 1.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            per_trial_success(DEVICE, 0, 8, 2, 1)
        with pytest.raises(ConfigurationError):
            per_trial_success(DEVICE, 4, 8, 9, 1)


class TestLeakProbability:
    def test_zero_trials_zero_leak(self):
        assert leak_probability(DEVICE, 8, 32, 4, 0) == 0.0

    def test_concave_increasing(self):
        vals = [leak_probability(DEVICE, 8, 32, 4, m)
                for m in range(1, 16)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))
        # Diminishing returns: each marginal trial gains no more than
        # the one before it.
        gains = [b - a for a, b in zip(vals, vals[1:])]
        assert all(g2 <= g1 + 1e-12 for g1, g2 in zip(gains, gains[1:]))

    def test_saturates_at_wearout(self):
        knee = leak_probability(DEVICE, 8, 32, 4, 12)
        far = leak_probability(DEVICE, 8, 32, 4, 500)
        assert far == pytest.approx(knee, rel=0.01)

    def test_matches_simulation(self):
        """The closed form tracks a direct Monte Carlo of planned raids."""
        from repro.pads.chip import OneTimePad

        height, n, k, trials = 4, 16, 2, 5
        wins = 0
        runs = 400
        for i in range(runs):
            pad = OneTimePad(height, n, k, DEVICE,
                             np.random.default_rng(i), key_bytes=4)
            rng = np.random.default_rng(10_000 + i)
            for _ in range(trials):
                guess = "".join(str(b) for b in rng.integers(0, 2,
                                                             height - 1))
                try:
                    if pad.retrieve(guess) == pad.true_key:
                        wins += 1
                        break
                except Exception:
                    continue
        predicted = leak_probability(DEVICE, height, n, k, trials)
        assert wins / runs == pytest.approx(predicted, abs=0.05)


class TestOptimalPlan:
    def test_spreads_across_pads(self):
        plan = optimal_raid_plan(DEVICE, 8, 32, 4, total_trials=100,
                                 n_pads=100)
        # One trial per pad beats ten on ten: concavity.
        assert plan.trials_per_pad == 1
        assert plan.pads_attacked == 100

    def test_caps_depth_at_wearout(self):
        plan = optimal_raid_plan(DEVICE, 8, 32, 4, total_trials=10_000,
                                 n_pads=3)
        assert plan.trials_per_pad <= DEVICE.mean * 2
        assert plan.pads_attacked == 3

    def test_zero_budget(self):
        plan = optimal_raid_plan(DEVICE, 8, 32, 4, 0, 10)
        assert plan.expected_leaks == 0.0

    def test_more_budget_never_worse(self):
        small = optimal_raid_plan(DEVICE, 8, 32, 4, 50, 20)
        large = optimal_raid_plan(DEVICE, 8, 32, 4, 200, 20)
        assert large.expected_leaks >= small.expected_leaks

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_raid_plan(DEVICE, 8, 32, 4, -1, 10)


class TestDefenderRule:
    def test_height_bounds_optimal_raid(self):
        height = defender_min_height(DEVICE, 32, 4, total_trials=1_000,
                                     n_pads=100,
                                     max_expected_leaks=0.01)
        plan = optimal_raid_plan(DEVICE, height, 32, 4, 1_000, 100)
        assert plan.expected_leaks <= 0.01
        if height > 1:
            weaker = optimal_raid_plan(DEVICE, height - 1, 32, 4, 1_000,
                                       100)
            assert weaker.expected_leaks > 0.01

    def test_height_grows_logarithmically_with_budget(self):
        h_small = defender_min_height(DEVICE, 32, 4, 100, 100, 0.01)
        h_large = defender_min_height(DEVICE, 32, 4, 10_000, 10_000, 0.01)
        # 100x the budget costs ~log2(100) ~ 7 extra levels, not 100x.
        assert 4 <= h_large - h_small <= 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            defender_min_height(DEVICE, 32, 4, 100, 10,
                                max_expected_leaks=0.0)
