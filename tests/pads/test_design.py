"""Tests for the pad geometry solver."""

import pytest

from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError, InfeasibleDesignError
from repro.pads.design import design_pad
from repro.pads.layout import tree_area_nm2

DEVICE = WeibullDistribution(alpha=10.0, beta=1.0)


class TestDesignPad:
    def test_meets_both_targets(self):
        design = design_pad(DEVICE, receiver_min=0.999,
                            adversary_max=1e-4)
        assert design.receiver_success >= 0.999
        assert design.eq15_adversary_success <= 1e-4
        assert design.same_path_adversary_success <= 1e-4

    def test_same_path_constraint_forces_height(self):
        """The same-path adversary is bounded only by 2^-(H-1), so an
        adversary_max of 1e-4 needs H >= 15 regardless of k - taller
        than anything the paper's Eq. 15-only analysis would pick."""
        design = design_pad(DEVICE, receiver_min=0.99,
                            adversary_max=1e-4)
        assert design.height >= 15

    def test_stricter_security_costs_area(self):
        loose = design_pad(DEVICE, receiver_min=0.99, adversary_max=1e-3)
        strict = design_pad(DEVICE, receiver_min=0.99, adversary_max=1e-6)
        assert strict.area_nm2 > loose.area_nm2
        assert strict.height > loose.height

    def test_area_model_consistent(self):
        design = design_pad(DEVICE, receiver_min=0.99, adversary_max=1e-3)
        assert design.area_nm2 == pytest.approx(
            design.n_copies * tree_area_nm2(design.height))

    def test_k_respects_receiver_floor(self):
        from repro.pads.analysis import receiver_success_probability

        design = design_pad(DEVICE, receiver_min=0.999,
                            adversary_max=1e-4)
        # k is maximal: one more component share would break the floor
        # (or k is already n).
        if design.k < design.n_copies:
            worse = receiver_success_probability(
                DEVICE, design.height, design.n_copies, design.k + 1)
            assert worse < 0.999

    def test_infeasible_targets_raise(self):
        fragile = WeibullDistribution(alpha=0.5, beta=8.0)
        with pytest.raises(InfeasibleDesignError):
            design_pad(fragile, receiver_min=0.999, adversary_max=1e-6,
                       max_height=10)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            design_pad(DEVICE, receiver_min=1.5)
        with pytest.raises(ConfigurationError):
            design_pad(DEVICE, adversary_max=0.0)
        with pytest.raises(ConfigurationError):
            design_pad(DEVICE, max_height=0)

    def test_better_devices_shrink_designs(self):
        cheap = design_pad(WeibullDistribution(50.0, 1.0),
                           receiver_min=0.999, adversary_max=1e-4)
        fragile = design_pad(WeibullDistribution(5.0, 1.0),
                             receiver_min=0.999, adversary_max=1e-4)
        assert cheap.n_copies <= fragile.n_copies