"""Tests for the closed-form pad success probabilities (Eqs. 9-15)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.pads.analysis import (
    adversary_success_probability,
    path_success_probability,
    receiver_success_probability,
    success_grid,
)

DEVICE = WeibullDistribution(alpha=10.0, beta=1.0)


class TestPathSuccess:
    def test_equation_nine(self):
        # S1 = exp(-(1/alpha)^beta * H)
        for h in (1, 4, 8):
            expected = math.exp(-((1 / 10.0) ** 1.0) * h)
            assert path_success_probability(DEVICE, h) == pytest.approx(
                expected)

    def test_decreases_with_height(self):
        vals = [path_success_probability(DEVICE, h) for h in (1, 4, 16, 64)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_increases_with_alpha(self):
        low = path_success_probability(WeibullDistribution(2, 1), 8)
        high = path_success_probability(WeibullDistribution(50, 1), 8)
        assert high > low

    def test_height_validated(self):
        with pytest.raises(ConfigurationError):
            path_success_probability(DEVICE, 0)


class TestReceiverSuccess:
    def test_equation_ten_binomial_tail(self):
        s1 = path_success_probability(DEVICE, 4)
        # k = n: all copies must succeed -> s1 ** n.
        assert receiver_success_probability(DEVICE, 4, 8, 8) == \
            pytest.approx(s1 ** 8)

    def test_redundancy_helps_receiver(self):
        strict = receiver_success_probability(DEVICE, 8, 128, 64)
        loose = receiver_success_probability(DEVICE, 8, 128, 8)
        assert loose > strict

    def test_paper_reference_point(self):
        """At alpha=10, beta=1, n=128, H=8, k=8 the receiver is ~certain."""
        assert receiver_success_probability(DEVICE, 8, 128, 8) > 0.999

    def test_k_validated(self):
        with pytest.raises(ConfigurationError):
            receiver_success_probability(DEVICE, 4, 8, 9)


class TestAdversarySuccess:
    def test_height_blocks_adversary(self):
        """Paper: H >= 8 drives the adversary to ~zero at k >= 8."""
        assert adversary_success_probability(DEVICE, 8, 128, 8) < 1e-6

    def test_short_trees_are_weak(self):
        weak = adversary_success_probability(DEVICE, 2, 128, 8)
        assert weak > 0.5

    def test_adversary_never_beats_receiver(self):
        for h in (2, 4, 8, 16):
            for k in (1, 8, 32):
                adv = adversary_success_probability(DEVICE, h, 128, k)
                recv = receiver_success_probability(DEVICE, h, 128, k)
                assert adv <= recv + 1e-12

    def test_height_one_single_path(self):
        """H = 1 has one path (2^0): guessing is trivially right, so the
        adversary equals the receiver."""
        adv = adversary_success_probability(DEVICE, 1, 16, 4)
        recv = receiver_success_probability(DEVICE, 1, 16, 4)
        assert adv == pytest.approx(recv)

    def test_lower_redundancy_hurts_adversary_more(self):
        high_red = adversary_success_probability(DEVICE, 4, 128, 4)
        low_red = adversary_success_probability(DEVICE, 4, 128, 32)
        assert low_red < high_red

    @given(h=st.integers(1, 12), n=st.integers(1, 64), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_probability_bounds_property(self, h, n, data):
        k = data.draw(st.integers(1, n))
        adv = adversary_success_probability(DEVICE, h, n, k)
        recv = receiver_success_probability(DEVICE, h, n, k)
        assert 0.0 <= adv <= 1.0 + 1e-12
        assert 0.0 <= recv <= 1.0 + 1e-12
        assert adv <= recv + 1e-9


class TestSuccessGrid:
    def test_grid_shape_and_content(self):
        recv, adv = success_grid(lambda h, k: DEVICE, [2, 8], [1, 8, 16],
                                 32)
        assert recv.shape == adv.shape == (2, 3)
        assert recv[0, 0] == pytest.approx(
            receiver_success_probability(DEVICE, 2, 32, 1))
        assert adv[1, 2] == pytest.approx(
            adversary_success_probability(DEVICE, 8, 32, 16))
