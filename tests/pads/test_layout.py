"""Tests for pad layout, density, latency and energy models."""

import pytest

from repro.errors import ConfigurationError
from repro.pads.layout import (
    pads_per_chip,
    retrieval_cost,
    tree_area_nm2,
    trees_per_mm2,
)


class TestTreeArea:
    def test_doubles_per_level(self):
        # Leaves double with height; register area dominates and scales
        # as leaves * height.
        a4, a5 = tree_area_nm2(4), tree_area_nm2(5)
        assert 2.0 < a5 / a4 < 2.6

    def test_height_validated(self):
        with pytest.raises(ConfigurationError):
            tree_area_nm2(0)


class TestDensity:
    @pytest.mark.parametrize("height,paper", [
        (2, 5e6), (3, 2e6), (4, 6e5), (5, 2e5), (6, 1e5),
        (7, 4e4), (8, 2e4), (9, 9e3), (10, 4e3), (11, 2e3),
    ])
    def test_fig10_bars_within_a_factor(self, height, paper):
        """Every Fig. 10 bar within 30% of the paper's label."""
        measured = trees_per_mm2(height)
        assert measured == pytest.approx(paper, rel=0.30)

    def test_pads_per_chip_paper_example(self):
        """H = 4, n = 128 -> ~4,687 pads on 1 mm^2."""
        assert pads_per_chip(4, 128) == pytest.approx(4687, rel=0.10)

    def test_pads_scale_with_chip_area(self):
        assert pads_per_chip(4, 128, chip_area_mm2=2.0) == pytest.approx(
            2 * pads_per_chip(4, 128), rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pads_per_chip(4, 0)
        with pytest.raises(ConfigurationError):
            pads_per_chip(4, 128, chip_area_mm2=0)


class TestRetrievalCost:
    def test_paper_section_652_numbers(self):
        cost = retrieval_cost(height=4, n_copies=128)
        assert cost.traversal_latency_s == pytest.approx(5.12e-6)
        assert cost.readout_latency_s == pytest.approx(8.0e-5)
        assert cost.total_latency_s == pytest.approx(8.512e-5)
        assert cost.energy_j == pytest.approx(5.12e-18)

    def test_scales_with_copies(self):
        a = retrieval_cost(4, 64)
        b = retrieval_cost(4, 128)
        assert b.traversal_latency_s == pytest.approx(
            2 * a.traversal_latency_s)
        assert b.energy_j == pytest.approx(2 * a.energy_j)
        assert b.readout_latency_s == a.readout_latency_s  # one readout

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            retrieval_cost(0, 128)
