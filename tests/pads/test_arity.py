"""Tests for m-ary decision-tree analysis."""

import pytest

from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.pads.analysis import (
    adversary_success_probability,
    receiver_success_probability,
)
from repro.pads.arity import (
    MaryTreeDesign,
    compare_arities,
    mary_adversary_success,
    mary_path_success,
    mary_receiver_success,
)

DEVICE = WeibullDistribution(alpha=10.0, beta=1.0)


class TestGeometry:
    def test_binary_matches_paper_geometry(self):
        # 128 paths binary: 7 branch levels, path length 8 = the paper's
        # H = 8 tree.
        design = MaryTreeDesign(arity=2, n_paths=128)
        assert design.paths == 128
        assert design.path_length == 8

    def test_higher_arity_shortens_paths(self):
        binary = MaryTreeDesign(2, 4096)
        hex16 = MaryTreeDesign(16, 4096)
        assert binary.path_length == 13
        assert hex16.path_length == 4
        assert binary.paths == hex16.paths == 4096

    def test_paths_rounded_up_to_power(self):
        design = MaryTreeDesign(4, 100)
        assert design.paths == 256

    def test_single_path_tree(self):
        design = MaryTreeDesign(2, 1)
        assert design.paths == 1
        assert design.path_length == 1
        assert design.switch_count == 1

    def test_switch_count_binary(self):
        # Binary, 4 paths: entry + (1 + 2) internal nodes * 2 switches.
        design = MaryTreeDesign(2, 4)
        assert design.switch_count == 1 + 3 * 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MaryTreeDesign(1, 8)
        with pytest.raises(ConfigurationError):
            MaryTreeDesign(2, 0)


class TestSuccessProbabilities:
    def test_binary_matches_base_analysis(self):
        """Arity-2 trees must agree with the paper's Eqs. 9-15 code."""
        design = MaryTreeDesign(2, 128)  # == height-8 binary tree
        assert mary_receiver_success(DEVICE, design, 128, 8) == \
            pytest.approx(receiver_success_probability(DEVICE, 8, 128, 8))
        assert mary_adversary_success(DEVICE, design, 128, 8) == \
            pytest.approx(adversary_success_probability(DEVICE, 8, 128, 8))

    def test_higher_arity_helps_receiver(self):
        binary = MaryTreeDesign(2, 128)
        oct8 = MaryTreeDesign(8, 512)  # still >= 128 paths
        assert (mary_path_success(DEVICE, oct8)
                > mary_path_success(DEVICE, binary))

    def test_adversary_still_blocked_at_fixed_paths(self):
        for arity in (2, 4, 16):
            design = MaryTreeDesign(arity, 128)
            adv = mary_adversary_success(DEVICE, design, 128, 8)
            assert adv < 1e-4

    def test_k_validation(self):
        design = MaryTreeDesign(2, 8)
        with pytest.raises(ConfigurationError):
            mary_receiver_success(DEVICE, design, 8, 9)


class TestComparison:
    def test_dominance_pattern(self):
        """At a fixed search space, higher arity improves receiver
        success and latency while the adversary stays negligible - the
        extension's takeaway."""
        rows = compare_arities(DEVICE, n_paths=128, n=128, k=8)
        by_arity = {r["arity"]: r for r in rows}
        assert by_arity[16]["receiver"] >= by_arity[2]["receiver"]
        assert (mary_path_success(DEVICE, MaryTreeDesign(16, 128))
                > mary_path_success(DEVICE, MaryTreeDesign(2, 128)))
        assert (by_arity[16]["traversal_latency_s"]
                < by_arity[2]["traversal_latency_s"])
        assert all(r["adversary"] < 1e-3 for r in rows)

    def test_register_area_shrinks_with_arity(self):
        rows = compare_arities(DEVICE, n_paths=128, n=128, k=8)
        by_arity = {r["arity"]: r for r in rows}
        # Key length ~ path length, so shorter paths mean smaller leaves.
        assert (by_arity[16]["register_area_nm2"]
                < by_arity[2]["register_area_nm2"])

    def test_paths_never_below_target(self):
        rows = compare_arities(DEVICE, n_paths=100, n=64, k=4)
        assert all(r["paths"] >= 100 for r in rows)
