"""Tests for the pad messaging protocol and the evil-maid adversary."""

import numpy as np
import pytest

from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError, KeyConsumedError
from repro.pads.chip import OneTimePadChip
from repro.pads.protocol import EvilMaidAttacker, PadReceiver, PadSender

RELIABLE = WeibullDistribution(alpha=1000.0, beta=8.0)
PAPER_DEVICE = WeibullDistribution(alpha=10.0, beta=1.0)


def make_chip(rng, n_pads=3, height=4, n_copies=16, k=3, key_bytes=32):
    return OneTimePadChip(n_pads=n_pads, height=height, n_copies=n_copies,
                          k=k, device=RELIABLE, rng=rng,
                          key_bytes=key_bytes)


class TestProtocol:
    def test_send_receive_roundtrip(self, rng):
        chip = make_chip(rng)
        sender, receiver = PadSender(chip), PadReceiver(chip)
        message = sender.send(b"attack at dawn")
        assert receiver.receive(message) == b"attack at dawn"

    def test_each_message_uses_fresh_pad(self, rng):
        chip = make_chip(rng)
        sender = PadSender(chip)
        a = sender.send(b"one")
        b = sender.send(b"two")
        assert a.address.pad_id != b.address.pad_id
        assert sender.pads_remaining == 1

    def test_sender_destroys_keys_after_use(self, rng):
        chip = make_chip(rng)
        sender = PadSender(chip)
        sender.send(b"x")
        assert sender._keys[0] == b""

    def test_runs_out_of_pads(self, rng):
        chip = make_chip(rng, n_pads=1)
        sender = PadSender(chip)
        sender.send(b"only")
        with pytest.raises(KeyConsumedError):
            sender.send(b"one more")

    def test_message_longer_than_pad_rejected(self, rng):
        chip = make_chip(rng, key_bytes=4)
        sender = PadSender(chip)
        with pytest.raises(ConfigurationError):
            sender.send(b"much longer than four bytes")

    def test_ciphertext_is_not_plaintext(self, rng):
        chip = make_chip(rng)
        message = PadSender(chip).send(b"attack at dawn")
        assert message.ciphertext != b"attack at dawn"


class TestEvilMaid:
    def test_unknown_strategy_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            EvilMaidAttacker(rng, strategy="psychic")

    def test_trials_validated(self, rng):
        chip = make_chip(rng)
        with pytest.raises(ConfigurationError):
            EvilMaidAttacker(rng).raid(chip, trials_per_pad=0)

    def test_tall_trees_resist_light_raids(self, rng):
        chip = OneTimePadChip(n_pads=6, height=8, n_copies=32, k=4,
                              device=PAPER_DEVICE, rng=rng, key_bytes=8)
        maid = EvilMaidAttacker(np.random.default_rng(1))
        leaked, _ = maid.raid(chip, trials_per_pad=1)
        assert leaked == 0

    def test_independent_strategy_matches_eq15_order(self, rng):
        """The paper-model adversary on short trees: empirical success
        within Monte Carlo error of Eq. 15."""
        from repro.pads.analysis import adversary_success_probability

        height, n, k = 2, 8, 1
        predicted = adversary_success_probability(PAPER_DEVICE, height, n, k)
        wins = 0
        trials = 200
        for i in range(trials):
            chip = OneTimePadChip(n_pads=1, height=height, n_copies=n, k=k,
                                  device=PAPER_DEVICE,
                                  rng=np.random.default_rng(1000 + i),
                                  key_bytes=4)
            maid = EvilMaidAttacker(np.random.default_rng(5000 + i),
                                    strategy="independent")
            leaked, _ = maid.raid(chip, trials_per_pad=1)
            wins += leaked
        assert wins / trials == pytest.approx(predicted, abs=0.10)

    def test_same_path_dominates_in_secure_regime(self):
        """The reproduction's finding: in the paper's recommended H >= 8
        regime, one guessed path applied to every copy beats the Eq. 15
        adversary, because a single right guess collects every surviving
        share at once.  Analytically: per-trial same-path success is
        2**-(H-1) * P[Binom(n, S1) >= k], vs Eq. 15's value."""
        from repro.pads.analysis import (
            adversary_success_probability,
            path_success_probability,
            receiver_success_probability,
        )

        height, n, k = 8, 16, 2
        eq15 = adversary_success_probability(PAPER_DEVICE, height, n, k)
        same_path = (2.0 ** -(height - 1)
                     * receiver_success_probability(PAPER_DEVICE, height,
                                                    n, k))
        assert same_path > 3 * eq15
        # And empirically the simulated same-path attacker achieves it.
        wins = 0
        trials = 400
        for i in range(trials):
            chip = OneTimePadChip(
                n_pads=1, height=height, n_copies=n, k=k,
                device=PAPER_DEVICE,
                rng=np.random.default_rng(i), key_bytes=4)
            maid = EvilMaidAttacker(np.random.default_rng(77 + i),
                                    strategy="same-path")
            leaked, _ = maid.raid(chip, trials_per_pad=1)
            wins += leaked
        assert wins / trials == pytest.approx(same_path, abs=0.02)
        assert path_success_probability(PAPER_DEVICE, height) > 0.4

    def test_heavy_raid_burns_pads(self, rng):
        chip = OneTimePadChip(n_pads=4, height=6, n_copies=16, k=2,
                              device=PAPER_DEVICE, rng=rng, key_bytes=4)
        maid = EvilMaidAttacker(np.random.default_rng(2))
        _, burned = maid.raid(chip, trials_per_pad=40)
        assert burned >= 3  # sabotage is visible

    def test_keys_extracted_recorded(self, rng):
        # Height-1 trees have a single path: the maid always wins; use
        # them to check bookkeeping.
        chip = OneTimePadChip(n_pads=2, height=1, n_copies=4, k=1,
                              device=RELIABLE, rng=rng, key_bytes=4)
        maid = EvilMaidAttacker(np.random.default_rng(3))
        leaked, _ = maid.raid(chip, trials_per_pad=1)
        assert leaked == 2
        assert len(maid.keys_extracted) == 2
