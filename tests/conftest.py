"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _isolated_runs_db(tmp_path, monkeypatch):
    """Point run recording at a per-test registry.

    CLI recording is on by default and would otherwise write
    ``runs.db`` into the repository root whenever a test drives
    ``main()`` in-process.
    """
    monkeypatch.setenv("REPRO_RUNS_DB", str(tmp_path / "runs.db"))
