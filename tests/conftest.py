"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded generator, fresh per test."""
    return np.random.default_rng(12345)
