"""Tests for one-time-pad encryption and single-use key semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.otp import OneTimeKey, generate_pad, xor_decrypt, xor_encrypt
from repro.errors import ConfigurationError, KeyConsumedError


class TestXor:
    def test_roundtrip(self):
        key = b"\x01\x02\x03\x04\x05"
        assert xor_decrypt(key, xor_encrypt(key, b"hello")) == b"hello"

    def test_longer_key_ok_never_recycled(self):
        key = bytes(range(10))
        ct = xor_encrypt(key, b"abc")
        assert len(ct) == 3
        assert ct == bytes(c ^ k for c, k in zip(b"abc", key))

    def test_short_key_rejected(self):
        with pytest.raises(ConfigurationError):
            xor_encrypt(b"ab", b"abc")

    def test_perfect_secrecy_shape(self, rng):
        """Same plaintext, fresh keys -> ciphertext bytes ~uniform."""
        counts = np.zeros(256, dtype=int)
        for _ in range(4000):
            ct = xor_encrypt(generate_pad(1, rng), b"\x41")
            counts[ct[0]] += 1
        assert counts.max() < 4000 * 0.02

    @given(msg=st.binary(max_size=64), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, msg, data):
        key = data.draw(st.binary(min_size=len(msg), max_size=len(msg) + 8))
        assert xor_decrypt(key, xor_encrypt(key, msg)) == msg


class TestGeneratePad:
    def test_length(self, rng):
        assert len(generate_pad(100, rng)) == 100

    def test_rejects_non_positive(self, rng):
        with pytest.raises(ConfigurationError):
            generate_pad(0, rng)

    def test_reproducible_with_seed(self):
        a = generate_pad(32, np.random.default_rng(5))
        b = generate_pad(32, np.random.default_rng(5))
        assert a == b


class TestOneTimeKey:
    def test_single_use(self):
        key = OneTimeKey(b"\x10" * 8)
        assert key.use() == b"\x10" * 8
        with pytest.raises(KeyConsumedError):
            key.use()

    def test_zeroized_after_use(self):
        key = OneTimeKey(b"\xff" * 4)
        key.use()
        assert key.consumed
        assert key._material == b"\x00" * 4

    def test_encrypt_consumes(self):
        key = OneTimeKey(b"\x01" * 5)
        ct = key.encrypt(b"hello")
        assert ct == xor_encrypt(b"\x01" * 5, b"hello")
        with pytest.raises(KeyConsumedError):
            key.encrypt(b"again")

    def test_decrypt_consumes(self):
        material = b"\x07" * 5
        ct = xor_encrypt(material, b"hello")
        key = OneTimeKey(material)
        assert key.decrypt(ct) == b"hello"
        with pytest.raises(KeyConsumedError):
            key.decrypt(ct)

    def test_length_property(self):
        assert OneTimeKey(b"abc").length == 3
