"""Tests for CTR mode, CBC-MAC sealing, and the passcode KDF."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import (
    cbc_mac,
    ctr_decrypt,
    ctr_encrypt,
    ctr_keystream,
    derive_key,
    seal,
    unseal,
)
from repro.errors import AuthenticationError, ConfigurationError

KEY = bytes(range(16))
NONCE = b"\x01" * 8


class TestCTR:
    def test_roundtrip(self):
        msg = b"a message that spans multiple AES blocks easily" * 3
        assert ctr_decrypt(KEY, NONCE, ctr_encrypt(KEY, NONCE, msg)) == msg

    def test_empty_message(self):
        assert ctr_encrypt(KEY, NONCE, b"") == b""

    def test_keystream_matches_block_cipher(self):
        stream = ctr_keystream(AES(KEY), NONCE, 32)
        block0 = AES(KEY).encrypt_block(NONCE + (0).to_bytes(8, "big"))
        block1 = AES(KEY).encrypt_block(NONCE + (1).to_bytes(8, "big"))
        assert stream == block0 + block1

    def test_keystream_truncates(self):
        assert len(ctr_keystream(AES(KEY), NONCE, 5)) == 5

    def test_different_nonce_different_stream(self):
        a = ctr_encrypt(KEY, b"\x01" * 8, b"same message")
        b = ctr_encrypt(KEY, b"\x02" * 8, b"same message")
        assert a != b

    def test_nonce_length_enforced(self):
        with pytest.raises(ConfigurationError):
            ctr_encrypt(KEY, b"short", b"msg")

    @given(msg=st.binary(max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, msg):
        assert ctr_decrypt(KEY, NONCE, ctr_encrypt(KEY, NONCE, msg)) == msg


class TestCBCMAC:
    def test_deterministic(self):
        assert cbc_mac(KEY, b"hello") == cbc_mac(KEY, b"hello")

    def test_sensitive_to_message(self):
        assert cbc_mac(KEY, b"hello") != cbc_mac(KEY, b"hellp")

    def test_sensitive_to_key(self):
        assert cbc_mac(KEY, b"hello") != cbc_mac(bytes(16), b"hello")

    def test_length_prefix_blocks_extension_shapes(self):
        # m and m || 0x00 pad to the same block content without the
        # length prefix; with it they must differ.
        assert cbc_mac(KEY, b"A" * 15) != cbc_mac(KEY, b"A" * 15 + b"\x00")

    def test_tag_length(self):
        assert len(cbc_mac(KEY, b"x")) == 16


class TestSealUnseal:
    def test_roundtrip(self):
        blob = seal(KEY, NONCE, b"disk contents")
        assert unseal(KEY, NONCE, blob) == b"disk contents"

    def test_wrong_key_fails_authentication(self):
        blob = seal(KEY, NONCE, b"disk contents")
        with pytest.raises(AuthenticationError):
            unseal(bytes(16), NONCE, blob)

    def test_tampered_ciphertext_fails(self):
        blob = bytearray(seal(KEY, NONCE, b"disk contents"))
        blob[0] ^= 1
        with pytest.raises(AuthenticationError):
            unseal(KEY, NONCE, bytes(blob))

    def test_tampered_tag_fails(self):
        blob = bytearray(seal(KEY, NONCE, b"disk contents"))
        blob[-1] ^= 1
        with pytest.raises(AuthenticationError):
            unseal(KEY, NONCE, bytes(blob))

    def test_truncated_blob_rejected(self):
        with pytest.raises(ConfigurationError):
            unseal(KEY, NONCE, b"short")

    def test_blob_layout(self):
        blob = seal(KEY, NONCE, b"xyz")
        assert len(blob) == 3 + 16


class TestDeriveKey:
    def test_deterministic(self):
        assert derive_key("pass", b"salt") == derive_key("pass", b"salt")

    def test_passcode_sensitivity(self):
        assert derive_key("pass", b"salt") != derive_key("pasS", b"salt")

    def test_salt_sensitivity(self):
        assert derive_key("pass", b"salt1") != derive_key("pass", b"salt2")

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_key_lengths(self, key_len):
        assert len(derive_key("pass", b"salt", key_len=key_len)) == key_len

    def test_invalid_key_len(self):
        with pytest.raises(ConfigurationError):
            derive_key("pass", b"salt", key_len=20)

    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            derive_key("pass", b"salt", iterations=0)

    def test_iterations_change_output(self):
        assert (derive_key("pass", b"salt", iterations=2)
                != derive_key("pass", b"salt", iterations=3))
