"""AES validated against FIPS-197 / SP 800-38A vectors plus properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX
from repro.errors import ConfigurationError

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestFIPS197Vectors:
    def test_aes128_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = "69c4e0d86a7b0430d8cdb78070b4c55a"
        assert AES(key).encrypt_block(PLAINTEXT).hex() == expected

    def test_aes192_appendix_c2(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f1011121314151617")
        expected = "dda97ca4864cdfe06eaf70a0ec0d7191"
        assert AES(key).encrypt_block(PLAINTEXT).hex() == expected

    def test_aes256_appendix_c3(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f"
                            "101112131415161718191a1b1c1d1e1f")
        expected = "8ea2b7ca516745bfeafc49904b496089"
        assert AES(key).encrypt_block(PLAINTEXT).hex() == expected

    def test_sp800_38a_ecb_block(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = "3ad77bb40d7a3660a89ecaf32466ef97"
        assert AES(key).encrypt_block(pt).hex() == expected

    def test_all_zero_key_and_block(self):
        expected = "66e94bd4ef8a2c3b884cfa59ca342b2e"
        assert AES(bytes(16)).encrypt_block(bytes(16)).hex() == expected


class TestSBox:
    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox(self):
        assert all(INV_SBOX[SBOX[a]] == a for a in range(256))

    def test_no_fixed_points(self):
        assert all(SBOX[a] != a for a in range(256))


class TestBlockOps:
    def test_decrypt_inverts_encrypt_all_key_sizes(self):
        for size in (16, 24, 32):
            cipher = AES(bytes(range(size)))
            ct = cipher.encrypt_block(PLAINTEXT)
            assert cipher.decrypt_block(ct) == PLAINTEXT

    def test_invalid_key_length(self):
        with pytest.raises(ConfigurationError):
            AES(b"short")

    def test_invalid_block_length(self):
        cipher = AES(bytes(16))
        with pytest.raises(ConfigurationError):
            cipher.encrypt_block(b"short")
        with pytest.raises(ConfigurationError):
            cipher.decrypt_block(b"short")

    def test_round_counts(self):
        assert AES(bytes(16)).rounds == 10
        assert AES(bytes(24)).rounds == 12
        assert AES(bytes(32)).rounds == 14

    def test_avalanche(self):
        cipher = AES(bytes(16))
        a = cipher.encrypt_block(bytes(16))
        flipped = bytes([1] + [0] * 15)
        b = cipher.encrypt_block(flipped)
        differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert differing > 40  # ~half of 128 bits should flip

    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
