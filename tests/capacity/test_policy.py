"""Tests for the capacity policy and the read-only advisor."""

import pytest

from repro.capacity.policy import CapacityAdvisor, CapacityPolicy
from repro.errors import ConfigurationError


class TestCapacityPolicy:
    def test_defaults_are_advisory_only(self):
        policy = CapacityPolicy()
        assert policy.horizon == 0
        assert policy.refuse_probability == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"horizon": -1},
        {"warn_probability": 0.0},
        {"warn_probability": 1.5},
        {"refuse_probability": -0.1},
        {"refuse_probability": 1.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            CapacityPolicy(**kwargs)

    def test_from_params_none_returns_default(self):
        default = CapacityPolicy(horizon=9)
        assert CapacityPolicy.from_params(None, default=default) \
            is default

    def test_from_params_overrides_merge_with_default(self):
        default = CapacityPolicy(horizon=9, warn_probability=0.4)
        policy = CapacityPolicy.from_params(
            {"refuse_probability": 0.9}, default=default)
        assert policy.horizon == 9
        assert policy.warn_probability == 0.4
        assert policy.refuse_probability == 0.9

    def test_from_params_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            CapacityPolicy.from_params("not a dict")
        with pytest.raises(ConfigurationError):
            CapacityPolicy.from_params({"huh": 1})
        with pytest.raises(ConfigurationError):
            CapacityPolicy.from_params({"horizon": "soon"})


class TestCapacityAdvisor:
    def _advisor(self, **overrides):
        settings = {"refresh_every": 4, "resamples": 30, "draws": 80,
                    "seed": 0}
        settings.update(overrides)
        default = settings.pop("default", CapacityPolicy(
            horizon=10, warn_probability=0.3, refuse_probability=0.9))
        return CapacityAdvisor(default, **settings)

    def test_refresh_every_validation(self):
        with pytest.raises(ConfigurationError):
            self._advisor(refresh_every=0)

    def test_all_censored_keeps_advisor_silent(self):
        advisor = self._advisor()
        advisor.refresh({"t": {"values": [3.0, 0.0],
                               "events": [False, False]}})
        assert advisor.estimate is None
        assert advisor.forecasts == {}
        assert advisor.renewal_warning("t", None) is None
        assert advisor.should_refuse("t", None) is None

    def test_refresh_builds_estimate_and_forecasts(self, observations):
        advisor = self._advisor()
        advisor.refresh(observations)
        assert advisor.estimate is not None
        assert set(advisor.forecasts) == set(observations)
        assert advisor.refreshes == 1

    def test_maybe_refresh_cadence(self, observations):
        advisor = self._advisor(refresh_every=4)
        calls = []

        def snapshot():
            calls.append(1)
            return observations

        # First assessment refreshes (counter starts saturated)...
        advisor.maybe_refresh(snapshot)
        assert len(calls) == 1
        # ...then nothing until the interval elapses again.
        for _ in range(4):
            advisor.maybe_refresh(snapshot)
        assert len(calls) == 1
        advisor.maybe_refresh(snapshot)
        assert len(calls) == 2

    def test_warning_payload_when_risk_crosses_bar(self, observations):
        # A huge horizon makes exhaustion within it a certainty, so
        # every tenant crosses any warn bar.
        advisor = self._advisor(default=CapacityPolicy(
            horizon=10_000, warn_probability=0.5))
        advisor.refresh(observations)
        name = sorted(observations)[0]
        warning = advisor.renewal_warning(name, None)
        assert warning is not None
        assert warning["p_exhaust"] == 1.0
        assert warning["horizon"] == 10_000
        lo, hi = warning["remaining_interval"]
        assert lo <= hi

    def test_refusal_disabled_at_zero_probability(self, observations):
        advisor = self._advisor(default=CapacityPolicy(
            horizon=10_000, warn_probability=0.5,
            refuse_probability=0.0))
        advisor.refresh(observations)
        name = sorted(observations)[0]
        assert advisor.renewal_warning(name, None) is not None
        assert advisor.should_refuse(name, None) is None

    def test_refusal_payload(self, observations):
        advisor = self._advisor(default=CapacityPolicy(
            horizon=10_000, warn_probability=0.5,
            refuse_probability=0.9))
        advisor.refresh(observations)
        name = sorted(observations)[0]
        refusal = advisor.should_refuse(name, None)
        assert refusal is not None
        assert refusal["p_exhaust"] >= 0.9
        assert refusal["horizon"] == 10_000

    def test_tenant_override_rides_provision_params(self, observations):
        advisor = self._advisor(default=CapacityPolicy(
            horizon=10_000, warn_probability=0.5,
            refuse_probability=0.9))
        advisor.refresh(observations)
        name = sorted(observations)[0]
        assert advisor.should_refuse(name, None) is not None
        # The tenant opted out of hard refusals via its own policy.
        params = {"capacity": {"refuse_probability": 0.0}}
        assert advisor.should_refuse(name, params) is None
        # And a tenant with a tiny horizon sees (almost) no risk.
        params = {"capacity": {"horizon": 0}}
        warning = advisor.renewal_warning(name, params)
        assert warning is None or warning["horizon"] == 0

    def test_unknown_tenant_has_no_forecast(self, observations):
        advisor = self._advisor(default=CapacityPolicy(
            horizon=10_000, warn_probability=0.1,
            refuse_probability=0.1))
        advisor.refresh(observations)
        assert advisor.renewal_warning("stranger", None) is None
        assert advisor.should_refuse("stranger", None) is None
