"""Shared fixtures for capacity tests: worn engine populations."""

import pytest

from repro.capacity.estimator import observations_from_state
from repro.core.weibull import WeibullDistribution
from repro.engine.state import WearState
from repro.sim.rng import make_rng


def worn_state(*, alpha=9.0, beta=5.0, instances=24, copies=3, n=6,
               k=2, accesses=12, seed=7) -> WearState:
    """A batch of architectures driven partway through their lifetime."""
    model = WeibullDistribution(alpha=alpha, beta=beta)
    state = WearState.fabricate(model, instances, copies, n, k,
                                make_rng(seed))
    state.run_to_exhaustion(max_accesses=accesses)
    return state


@pytest.fixture
def observations() -> dict:
    """Named per-tenant observation dicts with real failures present."""
    state = worn_state()
    return {f"tenant-{b:03d}": obs
            for b, obs in enumerate(observations_from_state(state))}
