"""Tests for censored observation pooling and endurance estimation."""

import numpy as np
import pytest

from repro.capacity.estimator import (
    EVENT_MIDPOINT,
    estimate_endurance,
    observations_from_state,
    pooled_observations,
)
from repro.errors import AllCensoredError, ConfigurationError
from repro.sim.rng import make_rng

from tests.capacity.conftest import worn_state


class TestObservationsFromState:
    def test_schema_and_shapes(self):
        state = worn_state(instances=4, copies=3, n=6, k=2)
        observations = observations_from_state(state)
        assert len(observations) == 4
        for b, obs in enumerate(observations):
            assert len(obs["values"]) == 3 * 6
            assert len(obs["events"]) == 3 * 6
            assert len(obs["bank_dead"]) == 3
            assert obs["copies"] == 3 and obs["n"] == 6 and obs["k"] == 2
            assert obs["remaining_capacity"] == \
                int(state.remaining_capacity()[b])
            assert obs["exhausted"] == bool(state.exhausted[b])

    def test_json_safe(self):
        import json

        observations = observations_from_state(worn_state(instances=2))
        json.dumps(observations)  # raises on any numpy scalar


class TestPooledObservations:
    def test_midpoint_correction_on_events(self):
        obs = {"values": [4.0, 7.0, 0.0], "events": [True, False, False]}
        values, events = pooled_observations([obs])
        # The failure moves to the interval midpoint; the censored
        # switch keeps its exact wear; the untouched one is dropped.
        assert values.tolist() == [4.0 - EVENT_MIDPOINT, 7.0]
        assert events.tolist() == [True, False]

    def test_mapping_and_iterable_agree(self, observations):
        from_map = pooled_observations(observations)
        from_list = pooled_observations(
            [observations[name] for name in sorted(observations)])
        np.testing.assert_array_equal(from_map[0], from_list[0])
        np.testing.assert_array_equal(from_map[1], from_list[1])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ConfigurationError):
            pooled_observations([{"values": [1.0, 2.0],
                                  "events": [True]}])

    def test_empty_input_yields_empty_arrays(self):
        values, events = pooled_observations([])
        assert values.size == 0 and events.size == 0


class TestEstimateEndurance:
    def test_recovers_truth_from_worn_population(self, observations):
        values, events = pooled_observations(observations)
        estimate = estimate_endurance(values, events, resamples=60,
                                      rng=make_rng(1))
        assert estimate.alpha == pytest.approx(9.0, rel=0.15)
        assert estimate.beta == pytest.approx(5.0, rel=0.5)
        assert estimate.failures >= 1
        assert estimate.censored == \
            estimate.observations - estimate.failures
        assert estimate.alpha_ci[0] < estimate.alpha < estimate.alpha_ci[1]

    def test_all_censored_raises_typed_error(self):
        values = np.array([3.0, 4.0, 5.0])
        events = np.array([False, False, False])
        with pytest.raises(AllCensoredError):
            estimate_endurance(values, events, rng=make_rng(0))

    def test_no_observations_raises_typed_error(self):
        with pytest.raises(AllCensoredError):
            estimate_endurance([], [], rng=make_rng(0))

    def test_all_censored_is_a_configuration_error(self):
        # Callers that already catch ConfigurationError keep working.
        assert issubclass(AllCensoredError, ConfigurationError)

    def test_deterministic_given_seed(self, observations):
        values, events = pooled_observations(observations)
        first = estimate_endurance(values, events, resamples=40,
                                   rng=make_rng(5))
        second = estimate_endurance(values, events, resamples=40,
                                    rng=make_rng(5))
        assert first.alpha == second.alpha
        assert first.alpha_ci == second.alpha_ci
        assert first.beta_ci == second.beta_ci

    def test_payload_round_trips_to_json(self, observations):
        import json

        values, events = pooled_observations(observations)
        estimate = estimate_endurance(values, events, resamples=30,
                                      rng=make_rng(2))
        payload = json.loads(json.dumps(estimate.to_payload()))
        assert payload["observations"] == estimate.observations
        assert payload["resamples"] == 30
        assert payload["alpha_ci"][0] <= payload["alpha"] \
            <= payload["alpha_ci"][1]
