"""Tests for conditional remaining-use forecasting."""

import pytest

from repro.capacity.estimator import (
    estimate_endurance,
    observations_from_state,
    pooled_observations,
)
from repro.capacity.forecast import forecast_remaining, forecast_tenants
from repro.sim.rng import make_rng

from tests.capacity.conftest import worn_state


@pytest.fixture
def fitted(observations):
    values, events = pooled_observations(observations)
    return estimate_endurance(values, events, resamples=60,
                              rng=make_rng(3))


class TestForecastRemaining:
    def test_summary_statistics_are_coherent(self, observations, fitted):
        name = sorted(observations)[0]
        forecast = forecast_remaining(name, observations[name], fitted,
                                      draws=200, horizon=10,
                                      rng=make_rng(4))
        lo, hi = forecast.interval
        assert 0.0 <= lo <= hi
        assert forecast.remaining_mean >= 0.0
        assert 0.0 <= forecast.p_exhaust <= 1.0
        assert forecast.draws == 200
        assert forecast.tenant == name
        assert len(forecast.samples) == 200

    def test_interval_brackets_engine_truth(self, observations, fitted):
        # The engine knows the exact remaining capacity; a calibrated
        # forecast interval should bracket it for most tenants (the
        # pinned sweep asserts the precise rate; this is the smoke
        # version).
        hits = 0
        forecasts = forecast_tenants(observations, fitted, draws=200,
                                     rng=make_rng(5))
        for name, forecast in forecasts.items():
            lo, hi = forecast.interval
            if lo <= observations[name]["remaining_capacity"] <= hi:
                hits += 1
        assert hits / len(forecasts) >= 0.6

    def test_exhausted_tenant_forecasts_zero(self, fitted):
        state = worn_state(alpha=4.0, beta=6.0, instances=3,
                           accesses=200, seed=11)
        observations = observations_from_state(state)
        exhausted = [obs for obs in observations if obs["exhausted"]]
        assert exhausted, "population did not exhaust; bump accesses"
        forecast = forecast_remaining("dead", exhausted[0], fitted,
                                      draws=50, horizon=5,
                                      rng=make_rng(6))
        assert forecast.exhausted
        assert forecast.remaining_mean == 0.0
        assert forecast.p_exhaust == 1.0

    def test_p_exhaust_at_is_monotone_in_horizon(self, observations,
                                                 fitted):
        name = sorted(observations)[0]
        forecast = forecast_remaining(name, observations[name], fitted,
                                      draws=300, horizon=5,
                                      rng=make_rng(7))
        probabilities = [forecast.p_exhaust_at(h)
                         for h in (0, 5, 10, 20, 100)]
        assert probabilities == sorted(probabilities)
        assert forecast.p_exhaust_at(5) == forecast.p_exhaust

    def test_deterministic_given_seed(self, observations, fitted):
        name = sorted(observations)[0]
        first = forecast_remaining(name, observations[name], fitted,
                                   draws=100, rng=make_rng(8))
        second = forecast_remaining(name, observations[name], fitted,
                                    draws=100, rng=make_rng(8))
        assert first.interval == second.interval
        assert first.remaining_mean == second.remaining_mean

    def test_payload_is_json_safe(self, observations, fitted):
        import json

        name = sorted(observations)[0]
        forecast = forecast_remaining(name, observations[name], fitted,
                                      draws=50, rng=make_rng(9))
        payload = json.loads(json.dumps(forecast.to_payload()))
        assert payload["tenant"] == name
        assert "samples" not in payload  # draws stay in-process


class TestForecastTenants:
    def test_covers_every_tenant_sorted(self, observations, fitted):
        forecasts = forecast_tenants(observations, fitted, draws=50,
                                     rng=make_rng(10))
        assert list(forecasts) == sorted(observations)

    def test_heavier_wear_forecasts_less(self, fitted):
        light = observations_from_state(
            worn_state(instances=6, accesses=4, seed=21))
        heavy = observations_from_state(
            worn_state(instances=6, accesses=16, seed=21))
        light_forecast = forecast_remaining("t", light[0], fitted,
                                            draws=300, rng=make_rng(11))
        heavy_forecast = forecast_remaining("t", heavy[0], fitted,
                                            draws=300, rng=make_rng(11))
        assert heavy_forecast.remaining_mean \
            < light_forecast.remaining_mean
