"""Tests for the pinned ground-truth calibration sweep and its gate."""

import pytest

from repro.capacity.calibrate import (
    DEFAULT_SEED,
    calibration_sweep,
    check_calibration,
)
from repro.errors import ConfigurationError

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def pinned_payload() -> dict:
    """One shared pinned-sweep run (the expensive part) per module."""
    return calibration_sweep()


class TestPinnedSweep:
    def test_gate_passes_at_pinned_settings(self, pinned_payload):
        assert pinned_payload["seed"] == DEFAULT_SEED
        assert pinned_payload["coverage_ok"], pinned_payload["coverage"]
        assert pinned_payload["error_monotone"], \
            pinned_payload["median_rel_err_by_length"]
        assert pinned_payload["gate_ok"]
        assert check_calibration(pinned_payload) == []

    def test_coverage_within_acceptance_bounds(self, pinned_payload):
        # The PR's acceptance bar, asserted directly: nominal 90%
        # intervals at 85-95% empirical coverage.
        assert 0.85 <= pinned_payload["coverage"] <= 0.95

    def test_error_shrinks_with_trace_length(self, pinned_payload):
        lengths = pinned_payload["trace_lengths"]
        curve = [pinned_payload["median_rel_err_by_length"][str(length)]
                 for length in lengths]
        assert all(a > b for a, b in zip(curve, curve[1:])), curve

    def test_payload_is_json_safe(self, pinned_payload):
        import json

        round_tripped = json.loads(json.dumps(pinned_payload))
        assert round_tripped["fits"] == pinned_payload["fits"]


class TestSweepMechanics:
    def test_deterministic_given_seed(self):
        small = dict(grid=((9.0, 5.0),), trace_lengths=(8, 14),
                     instances=12, resamples=20, draws=60, seed=5)
        first = calibration_sweep(**small)
        second = calibration_sweep(**small)
        assert first["coverage"] == second["coverage"]
        assert first["median_rel_err_by_length"] == \
            second["median_rel_err_by_length"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            calibration_sweep(instances=1)
        with pytest.raises(ConfigurationError):
            calibration_sweep(trace_lengths=(14, 8))

    def test_check_calibration_names_each_problem(self):
        payload = calibration_sweep(grid=((9.0, 5.0),),
                                    trace_lengths=(8, 14),
                                    instances=12, resamples=20,
                                    draws=60, seed=5)
        broken = dict(payload, coverage=0.5, coverage_ok=False,
                      error_monotone=False, gate_ok=False)
        problems = check_calibration(broken)
        assert len(problems) == 2
        assert any("coverage" in problem for problem in problems)
