"""Tests for the password guessability model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.passwords.model import PasswordModel, UR_ANCHORS


@pytest.fixture(scope="module")
def model():
    return PasswordModel()


class TestCalibration:
    def test_ur_anchors_reproduced(self, model):
        """The model must pass through the paper's quoted statistics."""
        for guesses, fraction in UR_ANCHORS:
            assert model.cracked_fraction(guesses) == pytest.approx(
                fraction, rel=0.01)

    def test_lab_crack_fraction_below_one_percent(self, model):
        """'Only a few very popular passwords can be guessed within
        91,250 attempts' - under 1%."""
        assert model.cracked_fraction(91_250) < 0.01

    def test_guesses_for_fraction_inverts(self, model):
        assert model.guesses_for_fraction(0.01) == pytest.approx(
            100_000, rel=0.01)
        assert model.guesses_for_fraction(0.02) == pytest.approx(
            200_000, rel=0.01)

    def test_head_contains_popular_passwords(self, model):
        # The first few guesses already crack a visible sliver.
        assert model.cracked_fraction(10) > 1e-6
        assert model.cracked_fraction(1) > 0


class TestCurveShape:
    def test_monotone_nondecreasing(self, model):
        gs = np.unique(np.logspace(0, 7, 200).astype(int))
        fractions = model.cracked_fraction(gs)
        assert np.all(np.diff(fractions) >= -1e-15)

    def test_zero_guesses_zero_fraction(self, model):
        assert model.cracked_fraction(0) == 0.0

    def test_saturates_at_one(self, model):
        assert model.cracked_fraction(10 ** 9) == 1.0

    def test_vocabulary_size_consistent(self, model):
        v = model.vocabulary_size
        assert model.cracked_fraction(v) == pytest.approx(1.0, abs=1e-6)

    def test_fraction_bounds_validated(self, model):
        with pytest.raises(ConfigurationError):
            model.guesses_for_fraction(1.5)
        assert model.guesses_for_fraction(0.0) == 0

    @given(g=st.integers(1, 10 ** 8))
    @settings(max_examples=50, deadline=None)
    def test_fraction_in_unit_interval(self, g):
        model = PasswordModel()
        assert 0.0 <= model.cracked_fraction(g) <= 1.0


class TestSampling:
    def test_rank_distribution_matches_curve(self, model, rng):
        ranks = np.array([model.sample_rank(rng) for _ in range(20_000)])
        for g in (100_000, 200_000, 1_000_000):
            empirical = (ranks <= g).mean()
            assert empirical == pytest.approx(model.cracked_fraction(g),
                                              abs=0.005)

    def test_exclusion_shifts_ranks_up(self, model, rng):
        floor = model.guesses_for_fraction(0.01)
        ranks = [model.sample_rank(rng, min_fraction_excluded=0.01)
                 for _ in range(500)]
        assert min(ranks) >= floor * 0.99

    def test_exclusion_validated(self, model, rng):
        with pytest.raises(ConfigurationError):
            model.sample_rank(rng, min_fraction_excluded=1.0)

    def test_guesses_to_crack_alias(self, model):
        a = model.guesses_to_crack(np.random.default_rng(3))
        b = model.sample_rank(np.random.default_rng(3))
        assert a == b


class TestConstructionValidation:
    @pytest.mark.parametrize("kwargs", [
        {"head_mass": 1.0}, {"head_mass": -0.1},
        {"head_size": 0}, {"tail_rate": 0.0}, {"tail_rate": 1.0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            PasswordModel(**kwargs)
