"""Tests for the brute-force attacker simulation."""

import pytest

from repro.errors import ConfigurationError
from repro.passwords.attacker import BruteForceAttacker
from repro.passwords.model import PasswordModel


class TestAttack:
    def test_outcome_fields(self, rng):
        attacker = BruteForceAttacker(rng=rng)
        outcome = attacker.attack(access_budget=10 ** 7)
        assert outcome.cracked
        assert outcome.attempts == outcome.victim_rank

    def test_zero_budget_never_cracks(self, rng):
        attacker = BruteForceAttacker(rng=rng)
        outcome = attacker.attack(access_budget=0)
        assert not outcome.cracked
        assert outcome.attempts == 0

    def test_failed_attack_spends_full_budget(self, rng):
        attacker = BruteForceAttacker(rng=rng)
        # Budget of 1 essentially never matches the victim's rank.
        outcomes = [attacker.attack(access_budget=1) for _ in range(50)]
        failed = [o for o in outcomes if not o.cracked]
        assert all(o.attempts == 1 for o in failed)

    def test_negative_budget_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            BruteForceAttacker(rng=rng).attack(-1)


class TestSuccessProbability:
    def test_analytic_matches_model(self, rng):
        model = PasswordModel()
        attacker = BruteForceAttacker(model, rng)
        assert attacker.success_probability(100_000) == pytest.approx(0.01,
                                                                      rel=0.01)

    def test_exclusion_reduces_success(self, rng):
        attacker = BruteForceAttacker(rng=rng)
        base = attacker.success_probability(150_000)
        hardened = attacker.success_probability(
            150_000, min_fraction_excluded=0.01)
        assert hardened < base

    def test_exclusion_can_zero_out(self, rng):
        attacker = BruteForceAttacker(rng=rng)
        # Budget below the excluded head: attack cannot succeed at all.
        assert attacker.success_probability(
            91_250, min_fraction_excluded=0.01) == 0.0

    def test_empirical_matches_analytic(self, rng):
        attacker = BruteForceAttacker(rng=rng)
        analytic = attacker.success_probability(200_000)
        empirical = attacker.empirical_success_rate(200_000, trials=8000)
        assert empirical == pytest.approx(analytic, abs=0.006)

    def test_empirical_rejects_no_trials(self, rng):
        with pytest.raises(ConfigurationError):
            BruteForceAttacker(rng=rng).empirical_success_rate(10, 0)
