"""Tests for piecewise guessability curves."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.passwords.curves import PiecewiseGuessCurve
from repro.passwords.model import UR_ANCHORS

UR_CURVE = PiecewiseGuessCurve(UR_ANCHORS)


class TestConstruction:
    @pytest.mark.parametrize("anchors", [
        [(100, 0.1)],                      # too few
        [(0, 0.1), (10, 0.2)],             # guesses < 1
        [(10, 0.2), (10, 0.3)],            # duplicate x
        [(10, 0.5), (100, 0.2)],           # decreasing fraction
        [(10, -0.1), (100, 0.2)],          # fraction out of range
    ])
    def test_invalid_anchors(self, anchors):
        with pytest.raises(ConfigurationError):
            PiecewiseGuessCurve(anchors)

    def test_unsorted_anchors_accepted(self):
        curve = PiecewiseGuessCurve([(1000, 0.2), (10, 0.01)])
        assert curve.cracked_fraction(10) == pytest.approx(0.01)


class TestInterpolation:
    def test_passes_through_anchors(self):
        for guesses, fraction in UR_ANCHORS:
            assert UR_CURVE.cracked_fraction(guesses) == pytest.approx(
                fraction)

    def test_log_linear_between_anchors(self):
        mid = 10 ** ((np.log10(100_000) + np.log10(200_000)) / 2)
        assert UR_CURVE.cracked_fraction(mid) == pytest.approx(0.015,
                                                               rel=0.01)

    def test_ramp_below_first_anchor(self):
        assert UR_CURVE.cracked_fraction(50_000) == pytest.approx(0.005)
        assert UR_CURVE.cracked_fraction(0) == 0.0

    def test_exhaustion_anchor_reaches_one(self):
        assert UR_CURVE.cracked_fraction(10 ** 14) == 1.0
        assert UR_CURVE.cracked_fraction(10 ** 15) == 1.0
        # Between the last published anchor and exhaustion the curve
        # keeps climbing log-linearly.
        assert 0.02 < UR_CURVE.cracked_fraction(10 ** 9) < 1.0

    def test_exhaustion_must_exceed_last_anchor(self):
        with pytest.raises(ConfigurationError):
            PiecewiseGuessCurve(UR_ANCHORS, exhaustion_guesses=100)

    def test_monotone(self):
        gs = np.unique(np.logspace(0, 9, 300).astype(int))
        vals = UR_CURVE.cracked_fraction(gs)
        assert np.all(np.diff(vals) >= -1e-12)

    def test_vector_and_scalar_agree(self):
        assert UR_CURVE.cracked_fraction(
            np.array([123_456]))[0] == pytest.approx(
                UR_CURVE.cracked_fraction(123_456))


class TestInversion:
    def test_guesses_for_fraction_inverts(self):
        g = UR_CURVE.guesses_for_fraction(0.015)
        assert UR_CURVE.cracked_fraction(g) >= 0.015
        assert UR_CURVE.cracked_fraction(g - 1) < 0.015

    def test_zero_fraction(self):
        assert UR_CURVE.guesses_for_fraction(0.0) == 0

    def test_flat_region_resolved_by_exhaustion_anchor(self):
        flat = PiecewiseGuessCurve([(10, 0.1), (100, 0.1)])
        g = flat.guesses_for_fraction(0.5)
        assert 100 < g <= 10 ** 14
        assert flat.cracked_fraction(g) >= 0.5

    def test_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            UR_CURVE.guesses_for_fraction(2.0)


class TestSampling:
    def test_sampled_ranks_follow_curve(self, rng):
        ranks = np.array([UR_CURVE.sample_rank(rng) for _ in range(4000)])
        for g in (100_000, 1_000_000):
            assert (ranks <= g).mean() == pytest.approx(
                UR_CURVE.cracked_fraction(g), abs=0.02)

    def test_exclusion(self, rng):
        floor = UR_CURVE.guesses_for_fraction(0.01)
        ranks = [UR_CURVE.sample_rank(rng, min_fraction_excluded=0.01)
                 for _ in range(200)]
        assert min(ranks) >= floor - 1
