"""Cross-module integration tests: the three use cases end to end."""

import numpy as np
import pytest

from repro import (
    AuthenticationError,
    DeviceWornOutError,
    InsufficientSharesError,
    KeyConsumedError,
)
from repro.connection.phone import MWayPhone, SecurePhone
from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.sizing import size_architecture
from repro.core.variation import LognormalVariation
from repro.core.weibull import WeibullDistribution
from repro.pads.chip import OneTimePadChip
from repro.pads.protocol import EvilMaidAttacker, PadReceiver, PadSender
from repro.targeting.system import (
    CommandCenter,
    LaunchStation,
    design_targeting_system,
)


class TestSmartphoneLifecycle:
    def test_five_year_life_in_miniature(self, rng):
        """Provision, use through the bound, survive wrong guesses in
        between, die at the end - the full Section 4 story scaled down."""
        design = size_architecture(12, 8, 120, k_fraction=0.10,
                                   criteria=PAPER_CRITERIA,
                                   window="fractional")
        phone = SecurePhone(design, "horse-staple", b"the disk", rng)
        successes = wrong = 0
        try:
            while True:
                if (successes + wrong) % 7 == 3:
                    assert not phone.login("guess").success
                    wrong += 1
                else:
                    assert phone.login("horse-staple").success
                    successes += 1
        except DeviceWornOutError:
            pass
        assert successes + wrong >= 120
        assert phone.is_bricked

    def test_mway_lifecycle_with_variation(self, rng):
        variation = LognormalVariation(sigma_alpha=0.05)
        designs = [size_architecture(12, 8, 40, k_fraction=0.10,
                                     criteria=PAPER_CRITERIA,
                                     window="fractional")] * 2
        phone = MWayPhone(designs, ["one", "two"], b"payload", rng,
                          variation=variation)
        for _ in range(20):
            assert phone.login("one").success
        phone.migrate()
        for _ in range(20):
            assert phone.login("two").success
        assert phone.login("two").plaintext == b"payload"


class TestTargetingMission:
    def test_mission_with_interference(self, rng):
        design = design_targeting_system(alpha=10, beta=8,
                                         mission_bound=30)
        key = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        center = CommandCenter(key)
        station = LaunchStation(design, key, rng)
        executed = 0
        try:
            for i in range(10 ** 5):
                if i % 5 == 4:  # intruder probes burn budget
                    with pytest.raises(AuthenticationError):
                        station.execute(
                            type(center.issue(b""))(sealed=bytes(40)))
                else:
                    station.execute(center.issue(b"go"))
                    executed += 1
        except DeviceWornOutError:
            pass
        assert station.is_decommissioned
        # Probes + commands together bounded by the hardware.
        assert executed + station.rejected <= design.copies * (design.t + 2)


class TestPadExchange:
    def test_full_exchange_then_raid(self, rng):
        device = WeibullDistribution(alpha=10.0, beta=1.0)
        chip = OneTimePadChip(n_pads=5, height=8, n_copies=64, k=4,
                              device=device, rng=rng, key_bytes=48)
        sender, receiver = PadSender(chip), PadReceiver(chip)
        transcripts = [b"msg one", b"second message", b"third"]
        for text in transcripts:
            assert receiver.receive(sender.send(text)) == text
        # Pads are one-time: re-receiving the last message fails because
        # the registers are destroyed.
        replay = sender.send(b"fourth")
        assert receiver.receive(replay) == b"fourth"
        with pytest.raises(InsufficientSharesError):
            receiver.receive(replay)
        # The evil maid gets the final pad but (overwhelmingly) no keys.
        maid = EvilMaidAttacker(np.random.default_rng(9))
        leaked, _ = maid.raid(chip, trials_per_pad=1)
        assert leaked == 0
        # And the sender is out of pads afterward.
        sender.send(b"last one")
        with pytest.raises(KeyConsumedError):
            sender.send(b"no more")


class TestAnalyticSimulationCoherence:
    def test_design_guarantees_hold_under_simulation(self, rng):
        """Every architecture layer agrees: solver guarantee <= simulated
        bound <= solver ceiling."""
        from repro.sim.montecarlo import simulate_access_bounds

        device = WeibullDistribution(alpha=14.0, beta=8.0)
        design = solve_encoded_fractional(device, 1_000, 0.10,
                                          PAPER_CRITERIA)
        bounds = simulate_access_bounds(design, 500, rng)
        # The legitimate bound is covered essentially always (the design
        # over-provisions: copies * t >= access_bound with per-copy slack).
        assert (bounds >= design.access_bound).mean() > 0.99
        assert (bounds <= design.copies * (design.t + 2)).all()
