"""Tests for the ``python -m repro.experiments`` entry point."""

from repro.experiments.__main__ import main


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4b" in out and "ext-rotation" in out

    def test_single_experiment(self, capsys):
        assert main(["sec6.5.2"]) == 0
        out = capsys.readouterr().out
        assert "0.08512" in out

    def test_unknown_id(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_output_file(self, capsys, tmp_path):
        target = tmp_path / "report.txt"
        assert main(["sec6.5.2", "-o", str(target)]) == 0
        text = target.read_text()
        assert "0.08512" in text
        assert "wrote 1 experiments" in capsys.readouterr().err
