"""One table-driven module asserting every EXPERIMENTS.md claim.

Each row of the comparison table in EXPERIMENTS.md has a test here, so
the document cannot silently drift from what the code produces.
"""

import math

import pytest

from repro.core.degradation import (
    PAPER_CRITERIA,
    solve_encoded,
    solve_encoded_fractional,
    solve_unencoded_fractional,
    solve_with_upper_bound,
)
from repro.core.replication import plan_replication
from repro.core.structures import (
    SeriesStructure,
    parallel_reliability,
)
from repro.core.weibull import WeibullDistribution
from repro.pads.analysis import (
    adversary_success_probability,
    receiver_success_probability,
)
from repro.pads.layout import pads_per_chip, retrieval_cost, trees_per_mm2

LAB = 91_250


class TestFig1Anchors:
    @pytest.mark.parametrize("beta,window", [
        (1, 4.595e6), (6, 8.253e5), (12, 4.541e5),
    ])
    def test_window_widths(self, beta, window):
        w = WeibullDistribution(1e6, beta)
        assert w.degradation_window() == pytest.approx(window, rel=0.01)

    def test_r_alpha_is_inverse_e(self):
        for beta in (1, 6, 12):
            assert WeibullDistribution(1e6, beta).reliability(1e6) == \
                pytest.approx(math.exp(-1))


class TestFig3Anchors:
    def test_3a(self):
        w = WeibullDistribution(1.7, 12)
        assert w.reliability(1) == pytest.approx(0.9983, abs=0.0005)
        assert w.reliability(2) == pytest.approx(0.0009, abs=0.0005)

    def test_3b(self):
        w = WeibullDistribution(9.3, 12)
        assert float(parallel_reliability(w.reliability(10), 40)) == \
            pytest.approx(0.9787, abs=0.001)
        assert float(parallel_reliability(w.reliability(11), 40)) == \
            pytest.approx(0.0219, abs=0.001)

    def test_series_chain(self):
        assert SeriesStructure.devices_for_scale_reduction(2, 12) == 4096


class TestFig4Anchors:
    def test_4a_exponential(self):
        totals = [
            solve_unencoded_fractional(WeibullDistribution(a, 8), LAB,
                                       PAPER_CRITERIA).total_devices
            for a in (10, 14, 20)
        ]
        assert totals[0] == pytest.approx(1.32e7, rel=0.05)
        assert totals[1] == pytest.approx(4.26e8, rel=0.05)
        assert totals[2] == pytest.approx(1.32e11, rel=0.05)

    def test_4b_paper_quote_675250(self):
        point = solve_encoded(WeibullDistribution(14, 8), LAB, 0.10,
                              PAPER_CRITERIA)
        assert point.total_devices == 675_324  # paper: 675,250

    def test_4b_linear_range(self):
        lo = solve_encoded_fractional(WeibullDistribution(10, 8), LAB,
                                      0.10, PAPER_CRITERIA).total_devices
        hi = solve_encoded_fractional(WeibullDistribution(20, 8), LAB,
                                      0.10, PAPER_CRITERIA).total_devices
        assert lo == pytest.approx(4.84e5, rel=0.05)
        assert hi == pytest.approx(9.39e5, rel=0.05)

    def test_4c_upper_bound_quote_91326(self):
        point = solve_encoded(WeibullDistribution(14, 8), LAB, 0.10,
                              PAPER_CRITERIA)
        assert point.expected_access_bound() == pytest.approx(
            91_326, rel=0.002)  # paper: 91,326

    def test_4d_monotone_drops(self):
        device = WeibullDistribution(14, 8)
        baseline = solve_encoded_fractional(device, LAB, 0.10,
                                            PAPER_CRITERIA).total_devices
        at_100k = solve_with_upper_bound(device, LAB, 100_000, 0.10,
                                         PAPER_CRITERIA).total_devices
        at_200k = solve_with_upper_bound(device, LAB, 200_000, 0.10,
                                         PAPER_CRITERIA).total_devices
        assert at_200k < at_100k < baseline
        assert baseline / at_200k > 10


class TestFig5Anchors:
    def test_targeting_encoded_order(self):
        point = solve_encoded_fractional(WeibullDistribution(10, 8), 100,
                                         0.10, PAPER_CRITERIA)
        # Paper's comparable point: ~810 switches.
        assert point.total_devices == pytest.approx(530, rel=0.1)


class TestFig8And9Anchors:
    def test_h8_kills_adversary(self):
        device = WeibullDistribution(10, 1)
        for k in (8, 16, 64):
            assert adversary_success_probability(device, 8, 128, k) < 1e-6

    def test_receiver_space_at_h8(self):
        device = WeibullDistribution(10, 1)
        assert receiver_success_probability(device, 8, 128, 8) > 0.999


class TestFig10Anchors:
    PAPER = {2: 5e6, 3: 2e6, 4: 6e5, 5: 2e5, 6: 1e5,
             7: 4e4, 8: 2e4, 9: 9e3, 10: 4e3, 11: 2e3}

    def test_every_bar(self):
        for height, paper in self.PAPER.items():
            assert trees_per_mm2(height) == pytest.approx(paper, rel=0.30)

    def test_pads_per_chip(self):
        assert pads_per_chip(4, 128) == pytest.approx(4687, rel=0.10)


class TestSection65Anchors:
    def test_latency_and_energy(self):
        cost = retrieval_cost(4, 128)
        assert cost.traversal_latency_s == pytest.approx(5.12e-6)
        assert cost.total_latency_s == pytest.approx(8.512e-5)
        assert cost.energy_j == pytest.approx(5.12e-18)


class TestSection415Anchor:
    def test_replication_schedule(self):
        plan = plan_replication(500)
        assert plan.m == 10
        assert plan.module_duration_months == pytest.approx(6.0, rel=0.01)


class TestFindings:
    def test_same_path_dominates_eq15_at_h8(self):
        """Finding 1: same-path evil maid beats Eq. 15 in the secure
        regime (H=8, n=16, k=2: 0.78% vs 0.14%)."""
        device = WeibullDistribution(10, 1)
        eq15 = adversary_success_probability(device, 8, 16, 2)
        same_path = (2.0 ** -7
                     * receiver_success_probability(device, 8, 16, 2))
        assert same_path > 3 * eq15
        assert same_path == pytest.approx(0.0078, rel=0.05)
        assert eq15 == pytest.approx(0.0014, rel=0.1)

    def test_integer_window_resonance(self):
        """Finding 2: alpha=18, beta=8, k=10% resonates (integer window)
        while alpha=14 does not."""
        resonant = solve_encoded(WeibullDistribution(18, 8), LAB, 0.10,
                                 PAPER_CRITERIA)
        smooth = solve_encoded(WeibullDistribution(14, 8), LAB, 0.10,
                               PAPER_CRITERIA)
        assert resonant.total_devices > 50 * smooth.total_devices

    def test_stated_criteria_infeasible_for_fig3b_bank(self):
        """Finding 3: the paper's stated 99%/1% criteria reject its own
        Fig. 3b working point."""
        from repro.core.degradation import (
            DEFAULT_CRITERIA,
            max_reliable_accesses,
        )

        device = WeibullDistribution(9.3, 12)
        assert max_reliable_accesses(device, 40, 1, DEFAULT_CRITERIA) \
            is None
