"""Tests for the extension experiments (beyond the paper's evaluation)."""

import pytest

from repro.experiments.extensions import (
    run_availability,
    run_failure_modes,
    run_temperature,
    run_tolerance_margins,
)
from repro.experiments.registry import EXPERIMENTS


class TestRegistry:
    def test_extensions_registered(self):
        assert {"ext-failure-modes", "ext-temperature", "ext-tolerance",
                "ext-availability", "ext-rotation", "ext-arity",
                "ext-deployment"} <= set(EXPERIMENTS)


class TestFailureModes:
    def test_ceiling_violation_grows_with_stiction(self):
        result = run_failure_modes()
        probs = [row[1] for row in result.data["rows"]]
        assert probs[0] < 1e-9
        assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:]))

    def test_tolerable_fraction_below_k_over_n(self):
        result = run_failure_modes()
        design = result.data["design"]
        assert result.data["q_max"] < design.k / design.n


class TestTemperature:
    def test_no_gain_anywhere(self):
        result = run_temperature()
        assert result.data["max_factor"] <= 1.0
        assert (result.data["best_attacker_mean"]
                <= result.data["room_temperature_mean"])


class TestTolerance:
    def test_acceptance_outcomes(self):
        result = run_tolerance_margins()
        assert result.data["good"].accepted
        assert not result.data["drifted"].accepted
        assert result.data["alpha_margin"].relative_width > 0.02


class TestAvailability:
    def test_loss_monotone_in_drain(self):
        result = run_availability()
        losses = [row[2] for row in result.data["rows"]]
        assert losses == sorted(losses)
        assert losses[0] == pytest.approx(0.0)


class TestDeployment:
    def test_replay_holds_both_promises(self):
        from repro.experiments.deployment import run_deployment

        result = run_deployment()
        replay = result.data["report"]
        assert replay.survived
        assert not replay.attacker_breached
        assert replay.owner_logins > 0
