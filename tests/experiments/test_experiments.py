"""Tests that every registered experiment runs and matches paper anchors.

These are correctness checks on the experiment *data* (the benchmarks
re-run the same callables for timing and printing).  Heavy sweeps use
reduced grids here; full grids run in the benchmark suite.
"""

import numpy as np
import pytest

from repro.experiments import ablations
from repro.experiments.fig01_wearout_model import run as run_fig1
from repro.experiments.fig03_degradation_techniques import run as run_fig3
from repro.experiments.fig08_09_pads import run_fig8, run_fig9
from repro.experiments.fig10_density_costs import run_fig10, run_sec65
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.report import ExperimentResult, format_series, format_table


class TestReport:
    def test_format_table_alignment(self):
        lines = format_table(["a", "bb"], [[1, 2.5], [None, 1e9]])
        assert len(lines) == 4
        assert "-" in lines[1]
        assert "1.000e+09" in lines[3] or "1e+09" in lines[3]

    def test_format_series(self):
        line = format_series("beta=8", [(10, 1e6), (12, None)])
        assert line.startswith("beta=8:")
        assert "12->-" in line

    def test_render(self):
        result = ExperimentResult("x", "t", ["row"])
        assert result.render() == "== x: t ==\nrow"


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"fig1", "fig3", "fig4a", "fig4b", "fig4c", "fig4d",
                    "table1", "fig5a", "fig5b", "fig8", "fig9", "fig10",
                    "sec6.5.2"}
        assert expected <= set(EXPERIMENTS)

    def test_ablations_registered(self):
        assert {"ablation-structures", "ablation-floor",
                "ablation-montecarlo", "sec4.1.5"} <= set(EXPERIMENTS)


class TestFig1:
    def test_curves_and_anchor(self):
        result = run_fig1()
        curves = result.data["curves"]
        assert set(curves) == {1, 6, 12}
        # Sharper shape -> taller PDF peak.
        assert curves[12]["pdf"].max() > curves[6]["pdf"].max()
        assert result.lines


class TestFig3:
    def test_anchors(self):
        data = run_fig3().data
        assert data["fig3a"]["R(1)"] > 0.99
        assert data["fig3a"]["R(2)"] < 0.01
        rows_b = {row[0]: row for row in data["fig3b"]}
        assert rows_b[40][1] == pytest.approx(0.98, abs=0.005)
        assert rows_b[40][2] == pytest.approx(0.022, abs=0.003)


class TestPadsGrids:
    def test_fig8_success_space_structure(self):
        data = run_fig8(heights=(2, 8), ks=(1, 8, 64)).data
        recv, adv = data["receiver"], data["adversary"]
        # Receiver beats adversary everywhere; H=8 kills the adversary
        # at k >= 8.
        assert np.all(recv >= adv - 1e-12)
        h8 = data["heights"].index(8)
        k8 = data["ks"].index(8)
        assert adv[h8, k8] < 1e-6

    def test_fig9_height_compensates_alpha(self):
        data = run_fig9(alphas=(10, 40), heights=(2, 8)).data
        adv = data["adversary"]
        # Looser wearout (higher alpha) helps the adversary at low H...
        assert adv[0, 1] > adv[0, 0]
        # ...but H = 8 blocks it regardless.
        assert np.all(adv[1, :] < 1e-4)


class TestDensityCosts:
    def test_fig10_within_paper_labels(self):
        result = run_fig10()
        for height, measured in result.data["densities"].items():
            assert measured > 0
        assert result.data["pads_h4_n128"] == pytest.approx(4687, rel=0.1)

    def test_sec65_cost(self):
        cost = run_sec65().data["cost"]
        assert cost.total_latency_s == pytest.approx(8.512e-5)


class TestAblations:
    def test_structures_ordering(self):
        rows = ablations.run_structures(access_bound=2_000).data["rows"]
        by_name = {row[0]: row[1] for row in rows}
        assert (by_name["k=10%*n encoded"]
                < by_name["1-of-n parallel"]
                < by_name["series chain (alpha -> 1)"])

    def test_floor_cost_multiplier_matches_paper(self):
        rows = ablations.run_reliability_floor().data["rows"]
        by_floor = {row[0]: row[2] for row in rows}
        # Paper: 99.99999% floor costs ~3x the baseline.
        assert by_floor[0.9999999] == pytest.approx(3.0, rel=0.3)

    def test_montecarlo_agreement(self):
        result = ablations.run_montecarlo_validation(access_bound=500,
                                                     trials=150)
        summary = result.data["summary"]
        expected = result.data["expected"]
        assert summary.mean == pytest.approx(expected, rel=0.01)
        design = result.data["design"]
        assert (result.data["bounds"] >= design.access_bound).mean() > 0.95

    def test_replication_plan(self):
        plan = ablations.run_replication().data["plan"]
        assert plan.m == 10

    def test_window_modes_smaller_bound(self):
        result = ablations.run_window_modes(access_bound=5_000)
        rows = result.data["rows"]
        assert len(rows) == 6
        # The fractional window is never worse than the integer one.
        for _, integer, fractional, ratio in rows:
            if integer is not None:
                assert fractional <= integer
                assert ratio >= 1.0
