"""API-surface tests: every public name exists, imports, and is documented.

Keeps the ``__all__`` lists honest as the library grows: a renamed or
removed symbol, or a public callable without a docstring, fails here
before any user hits it.
"""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.capacity",
    "repro.codes",
    "repro.connection",
    "repro.core",
    "repro.crypto",
    "repro.engine",
    "repro.errors",
    "repro.experiments",
    "repro.gf",
    "repro.pads",
    "repro.passwords",
    "repro.runs",
    "repro.service",
    "repro.sim",
    "repro.targeting",
    "repro.viz",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
class TestPublicSurface:
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        missing = [name for name in exported
                   if not hasattr(module, name)]
        assert not missing, f"{module_name} exports unresolved: {missing}"

    def test_all_sorted_for_readability(self, module_name):
        module = importlib.import_module(module_name)
        exported = list(getattr(module, "__all__", []))
        if module_name == "repro.errors":
            return  # hierarchy order is intentional there
        assert exported == sorted(exported, key=str.lower) or \
            exported == sorted(exported), \
            f"{module_name}.__all__ is unsorted"

    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    undocumented.append(name)
        assert not undocumented, (
            f"{module_name} exports undocumented: {undocumented}")


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        import repro.errors as errors

        base = errors.ReproError
        for name in errors.__dict__:
            obj = getattr(errors, name)
            if (inspect.isclass(obj) and issubclass(obj, Exception)
                    and obj is not base):
                assert issubclass(obj, base), name

    def test_domain_errors_importable_from_top_level(self):
        import repro

        for name in ("DeviceWornOutError", "InsufficientSharesError",
                     "DecodingFailure", "InfeasibleDesignError"):
            assert hasattr(repro, name)
