"""Tests for GF(2^16), including hypothesis field axioms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gf.field16 import GF65536, gf65536

WORDS = st.integers(0, 65535)
NONZERO = st.integers(1, 65535)


@pytest.fixture(scope="module")
def field():
    return gf65536()


class TestConstruction:
    def test_singleton_cached(self):
        assert gf65536() is gf65536()

    def test_rejects_wrong_degree(self):
        with pytest.raises(ConfigurationError):
            GF65536(primitive_poly=0x11D)

    def test_generator_and_poly(self, field):
        assert field.generator == 2
        assert field.primitive_poly == 0x1100B


class TestScalarOps:
    def test_mul_identities(self, field):
        assert field.mul(0, 12345) == 0
        assert field.mul(1, 12345) == 12345
        assert field.mul(2, 2) == 4

    def test_reduction(self, field):
        # x^15 * x = x^16 reduces by the primitive polynomial.
        assert field.mul(0x8000, 2) == 0x1100B ^ 0x10000

    def test_inverse_spot_checks(self, field):
        for a in (1, 2, 255, 256, 40_000, 65_535):
            assert field.mul(a, field.inverse(a)) == 1

    def test_div_inverts_mul(self, field):
        assert field.div(field.mul(777, 555), 555) == 777

    def test_zero_division(self, field):
        with pytest.raises(ZeroDivisionError):
            field.div(1, 0)
        with pytest.raises(ZeroDivisionError):
            field.inverse(0)

    def test_pow(self, field):
        assert field.pow(2, 0) == 1
        assert field.pow(2, 16) == 0x1100B ^ 0x10000
        assert field.pow(0, 3) == 0
        assert field.mul(field.pow(3, -1), 3) == 1


class TestFieldAxioms:
    @given(a=WORDS, b=WORDS)
    @settings(max_examples=100, deadline=None)
    def test_commutative(self, a, b):
        field = gf65536()
        assert field.mul(a, b) == field.mul(b, a)

    @given(a=WORDS, b=WORDS, c=WORDS)
    @settings(max_examples=100, deadline=None)
    def test_distributive(self, a, b, c):
        field = gf65536()
        assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)

    @given(a=NONZERO)
    @settings(max_examples=60, deadline=None)
    def test_inverse_property(self, a):
        field = gf65536()
        assert field.mul(a, field.inverse(a)) == 1


class TestVectorOps:
    def test_mul_vec_matches_scalar(self, field, rng):
        a = rng.integers(0, 1 << 16, 300, dtype=np.uint32).astype(np.uint16)
        b = rng.integers(0, 1 << 16, 300, dtype=np.uint32).astype(np.uint16)
        out = field.mul_vec(a, b)
        for i in range(0, 300, 29):
            assert out[i] == field.mul(int(a[i]), int(b[i]))
