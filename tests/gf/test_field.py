"""Tests for GF(2^8) arithmetic, including hypothesis field axioms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gf.field import GF256, GF_AES, GF_RS

BYTES = st.integers(0, 255)
NONZERO = st.integers(1, 255)


class TestConstruction:
    def test_standard_fields_build(self):
        assert GF_RS.primitive_poly == 0x11D
        assert GF_AES.primitive_poly == 0x11B

    def test_rejects_wrong_degree(self):
        with pytest.raises(ConfigurationError):
            GF256(primitive_poly=0xFF)

    def test_rejects_non_primitive_generator(self):
        # 2 is not primitive modulo the AES polynomial 0x11B.
        with pytest.raises(ConfigurationError):
            GF256(primitive_poly=0x11B, generator=2)

    def test_exp_log_roundtrip(self):
        for a in range(1, 256):
            assert GF_RS.exp(GF_RS.log(a)) == a


class TestScalarOps:
    def test_known_products(self):
        # 2 * 2 = 4; x^7 * x = x^8 = poly reduction.
        assert GF_RS.mul(2, 2) == 4
        assert GF_RS.mul(0x80, 2) == 0x11D ^ 0x100

    def test_mul_by_zero(self):
        assert GF_RS.mul(0, 77) == 0
        assert GF_RS.mul(77, 0) == 0

    def test_mul_by_one_identity(self):
        for a in (0, 1, 7, 255):
            assert GF_RS.mul(a, 1) == a

    def test_div_inverts_mul(self):
        for a, b in [(5, 9), (200, 3), (255, 254)]:
            assert GF_RS.div(GF_RS.mul(a, b), b) == a

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF_RS.div(5, 0)

    def test_inverse(self):
        for a in range(1, 256):
            assert GF_RS.mul(a, GF_RS.inverse(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF_RS.inverse(0)

    def test_pow(self):
        assert GF_RS.pow(2, 0) == 1
        assert GF_RS.pow(2, 1) == 2
        assert GF_RS.pow(2, 8) == 0x11D ^ 0x100
        assert GF_RS.pow(0, 5) == 0
        assert GF_RS.pow(0, 0) == 1

    def test_pow_negative_exponent(self):
        for a in (1, 2, 77):
            assert GF_RS.mul(GF_RS.pow(a, -1), a) == 1

    def test_pow_zero_negative_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF_RS.pow(0, -1)

    def test_log_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF_RS.log(0)


class TestFieldAxioms:
    @given(a=BYTES, b=BYTES)
    @settings(max_examples=200)
    def test_mul_commutative(self, a, b):
        assert GF_RS.mul(a, b) == GF_RS.mul(b, a)

    @given(a=BYTES, b=BYTES, c=BYTES)
    @settings(max_examples=200)
    def test_mul_associative(self, a, b, c):
        assert GF_RS.mul(GF_RS.mul(a, b), c) == GF_RS.mul(a, GF_RS.mul(b, c))

    @given(a=BYTES, b=BYTES, c=BYTES)
    @settings(max_examples=200)
    def test_distributive(self, a, b, c):
        assert GF_RS.mul(a, b ^ c) == GF_RS.mul(a, b) ^ GF_RS.mul(a, c)

    @given(a=BYTES)
    @settings(max_examples=100)
    def test_additive_self_inverse(self, a):
        assert GF_RS.add(a, a) == 0

    @given(a=NONZERO, b=NONZERO)
    @settings(max_examples=200)
    def test_division_consistent(self, a, b):
        assert GF_RS.mul(GF_RS.div(a, b), b) == a

    @given(a=NONZERO)
    @settings(max_examples=100)
    def test_fermat_little_theorem(self, a):
        assert GF_RS.pow(a, 255) == 1


class TestVectorOps:
    def test_mul_vec_matches_scalar(self, rng):
        a = rng.integers(0, 256, 500, dtype=np.uint8)
        b = rng.integers(0, 256, 500, dtype=np.uint8)
        out = GF_RS.mul_vec(a, b)
        for i in range(0, 500, 37):
            assert out[i] == GF_RS.mul(int(a[i]), int(b[i]))

    def test_mul_vec_broadcasts_scalar(self):
        a = np.array([1, 2, 3], dtype=np.uint8)
        out = GF_RS.mul_vec(a, np.uint8(2))
        assert list(out) == [GF_RS.mul(v, 2) for v in (1, 2, 3)]

    def test_div_vec_matches_scalar(self, rng):
        a = rng.integers(0, 256, 200, dtype=np.uint8)
        b = rng.integers(1, 256, 200, dtype=np.uint8)
        out = GF_RS.div_vec(a, b)
        for i in range(0, 200, 17):
            assert out[i] == GF_RS.div(int(a[i]), int(b[i]))

    def test_div_vec_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF_RS.div_vec(np.array([1], dtype=np.uint8),
                          np.array([0], dtype=np.uint8))

    def test_elements(self):
        assert len(list(GF_RS.elements())) == 256
