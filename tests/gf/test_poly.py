"""Tests for polynomials over GF(256)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gf.field import GF_AES, GF_RS
from repro.gf.poly import Poly, lagrange_interpolate

COEFFS = st.lists(st.integers(0, 255), min_size=0, max_size=8)


class TestConstruction:
    def test_trailing_zeros_trimmed(self):
        assert Poly([1, 2, 0, 0]).coeffs == (1, 2)

    def test_zero_polynomial(self):
        assert Poly([]).is_zero
        assert Poly([0, 0]).is_zero
        assert Poly.zero().degree == -1

    def test_one_and_monomial(self):
        assert Poly.one().coeffs == (1,)
        assert Poly.monomial(3, 5).coeffs == (0, 0, 0, 5)

    def test_monomial_rejects_negative_degree(self):
        with pytest.raises(ConfigurationError):
            Poly.monomial(-1)

    def test_rejects_out_of_range_coeffs(self):
        with pytest.raises(ConfigurationError):
            Poly([300])

    def test_equality_includes_field(self):
        assert Poly([1, 2], GF_RS) != Poly([1, 2], GF_AES)
        assert Poly([1, 2]) == Poly([1, 2])

    def test_cross_field_arithmetic_rejected(self):
        with pytest.raises(ConfigurationError):
            Poly([1], GF_RS) + Poly([1], GF_AES)


class TestArithmetic:
    def test_addition_is_xor(self):
        assert (Poly([1, 2]) + Poly([3, 2])).coeffs == (2,)

    def test_addition_identity(self):
        p = Poly([5, 6, 7])
        assert p + Poly.zero() == p

    def test_multiplication_known(self):
        # (1 + x)(1 + x) = 1 + x^2 in characteristic 2.
        assert (Poly([1, 1]) * Poly([1, 1])).coeffs == (1, 0, 1)

    def test_multiplication_by_zero(self):
        assert (Poly([1, 2]) * Poly.zero()).is_zero

    def test_scale(self):
        p = Poly([1, 2]).scale(3)
        assert p.coeffs == (3, 6)

    def test_shift(self):
        assert Poly([1, 2]).shift(2).coeffs == (0, 0, 1, 2)
        with pytest.raises(ConfigurationError):
            Poly([1]).shift(-1)

    def test_divmod_roundtrip(self):
        a = Poly([5, 3, 1, 7, 2])
        b = Poly([1, 1, 3])
        q, r = divmod(a, b)
        assert q * b + r == a
        assert r.degree < b.degree

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            divmod(Poly([1]), Poly.zero())

    def test_floordiv_and_mod(self):
        a, b = Poly([5, 3, 1, 7, 2]), Poly([1, 1, 3])
        q, r = divmod(a, b)
        assert a // b == q
        assert a % b == r

    @given(a=COEFFS, b=COEFFS)
    @settings(max_examples=80)
    def test_mul_commutative(self, a, b):
        assert Poly(a) * Poly(b) == Poly(b) * Poly(a)

    @given(a=COEFFS, b=COEFFS)
    @settings(max_examples=80)
    def test_divmod_invariant(self, a, b):
        pb = Poly(b)
        if pb.is_zero:
            return
        pa = Poly(a)
        q, r = divmod(pa, pb)
        assert q * pb + r == pa

    @given(a=COEFFS, b=COEFFS, x=st.integers(0, 255))
    @settings(max_examples=80)
    def test_evaluation_homomorphism(self, a, b, x):
        pa, pb = Poly(a), Poly(b)
        assert (pa * pb)(x) == GF_RS.mul(pa(x), pb(x))
        assert (pa + pb)(x) == pa(x) ^ pb(x)


class TestEvaluation:
    def test_constant(self):
        assert Poly([7])(100) == 7

    def test_known_polynomial(self):
        # p(x) = 1 + 2x at x = 3: 1 ^ mul(2,3) = 1 ^ 6 = 7.
        assert Poly([1, 2])(3) == 7

    def test_eval_many_matches_scalar(self):
        p = Poly([9, 4, 7, 1])
        xs = list(range(0, 256, 15))
        out = p.eval_many(xs)
        assert [int(v) for v in out] == [p(x) for x in xs]

    def test_zero_poly_evaluates_zero(self):
        assert Poly.zero()(5) == 0


class TestDerivative:
    def test_even_terms_vanish(self):
        # d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
        p = Poly([10, 20, 30, 40])
        assert p.derivative().coeffs == (20, 0, 40)

    def test_constant_derivative_zero(self):
        assert Poly([5]).derivative().is_zero

    def test_derivative_of_product_rule_spot(self):
        # (fg)' = f'g + fg' must hold in any ring.
        f, g = Poly([3, 1, 4]), Poly([1, 5])
        lhs = (f * g).derivative()
        rhs = f.derivative() * g + f * g.derivative()
        assert lhs == rhs


class TestLagrange:
    def test_recovers_constant_term(self):
        p = Poly([42, 17, 93])
        points = [(x, p(x)) for x in (1, 2, 3)]
        assert lagrange_interpolate(points, x0=0) == 42

    def test_evaluates_at_arbitrary_point(self):
        p = Poly([7, 1])
        points = [(x, p(x)) for x in (1, 2)]
        assert lagrange_interpolate(points, x0=9) == p(9)

    def test_rejects_duplicate_x(self):
        with pytest.raises(ConfigurationError):
            lagrange_interpolate([(1, 2), (1, 3)])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            lagrange_interpolate([])

    @given(coeffs=st.lists(st.integers(0, 255), min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_interpolation_roundtrip_property(self, coeffs):
        p = Poly(coeffs)
        k = max(len(p.coeffs), 1)
        points = [(x, p(x)) for x in range(1, k + 1)]
        assert lagrange_interpolate(points, x0=0) == p(0)
