"""End-to-end tests of the asyncio service over real loopback sockets.

``pytest-asyncio`` is not a dependency here, so every test is a sync
function driving one ``asyncio.run`` scenario.
"""

import asyncio
import json

import pytest

from repro.errors import ConfigurationError
from repro.service.client import (
    ServiceClient,
    read_ready_file,
    run_loadgen,
    tenant_population,
)
from repro.service.server import ServiceConfig, WearService

pytestmark = pytest.mark.slow


def _config(tmp_path, **overrides) -> ServiceConfig:
    settings = {"ledger_dir": str(tmp_path / "ledger"),
                "window_s": 0.001}
    settings.update(overrides)
    return ServiceConfig(**settings)


async def _with_service(config, scenario):
    """Start a service, run ``scenario(host, port, service)``, drain."""
    service = WearService(config)
    host, port = await service.start()
    try:
        return await scenario(host, port, service)
    finally:
        await service.shutdown()


class TestConfig:
    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            _config(tmp_path, queue_cap=0)
        with pytest.raises(ConfigurationError):
            _config(tmp_path, rate_limit=-1.0)
        with pytest.raises(ConfigurationError):
            _config(tmp_path, rate_burst=0)
        with pytest.raises(ConfigurationError):
            _config(tmp_path, snapshot_every=-1)


class TestServing:
    def test_provision_access_status(self, tmp_path):
        async def scenario(host, port, service):
            client = await ServiceClient(host, port).connect()
            payload = tenant_population(1, seed=3)[0]
            provisioned = await client.provision(**payload)
            assert provisioned["status"] == "ok"
            assert provisioned["capacity"] > 0

            response = await client.access("tenant-000")
            assert response["status"] == "ok"
            assert response["served"] == 1
            assert bytes.fromhex(response["secret"])

            status = await client.status("tenant-000")
            assert status["served"] == 1
            everyone = await client.status()
            assert everyone["service"]["requests"] == 1
            assert everyone["service"]["draining"] is False
            await client.close()

        asyncio.run(_with_service(_config(tmp_path), scenario))

    def test_unknown_ops_and_tenants_are_denials(self, tmp_path):
        async def scenario(host, port, service):
            client = await ServiceClient(host, port).connect()
            assert (await client.request({"op": "dance"}))["status"] \
                == "bad-request"
            assert (await client.access("ghost"))["status"] \
                == "unknown-tenant"
            assert (await client.request({"op": "access"}))["status"] \
                == "bad-request"
            await client.close()

        asyncio.run(_with_service(_config(tmp_path), scenario))

    def test_concurrent_clients_are_batched(self, tmp_path):
        async def scenario(host, port, service):
            admin = await ServiceClient(host, port).connect()
            for payload in tenant_population(3, seed=5):
                await admin.provision(**payload)

            async def one_access(name):
                client = await ServiceClient(host, port).connect()
                response = await client.access(name)
                await client.close()
                return response

            responses = await asyncio.gather(
                *(one_access(f"tenant-{i:03d}") for i in range(3)))
            assert all(r["status"] == "ok" for r in responses)
            stats = service.batcher.stats()
            await admin.close()
            return stats

        stats = asyncio.run(_with_service(_config(tmp_path), scenario))
        # Three concurrent requests over distinct tenants coalesce into
        # fewer rounds than requests (usually one).
        assert stats["rounds"] < 3
        assert stats["batch_size_max"] >= 2

    def test_rate_limit_answers_denial_not_drop(self, tmp_path):
        async def scenario(host, port, service):
            client = await ServiceClient(host, port).connect()
            await client.provision(**tenant_population(1, seed=9)[0])
            outcomes = []
            for _ in range(6):
                response = await client.access("tenant-000")
                outcomes.append(response["status"])
            await client.close()
            return outcomes

        outcomes = asyncio.run(_with_service(
            _config(tmp_path, rate_limit=0.001, rate_burst=2), scenario))
        assert outcomes.count("rate-limited") == 4
        assert [s for s in outcomes if s != "rate-limited"] == ["ok", "ok"]

    def test_queue_cap_answers_busy(self, tmp_path):
        async def scenario(host, port, service):
            client = await ServiceClient(host, port).connect()
            await client.provision(**tenant_population(1, seed=11)[0])
            # Pause the batcher loop by replacing the hub round; simpler:
            # fill the queue faster than the (long-window) batcher drains.
            async def one_access():
                c = await ServiceClient(host, port).connect()
                response = await c.access("tenant-000")
                await c.close()
                return response["status"]

            statuses = await asyncio.gather(
                *(one_access() for _ in range(8)))
            await client.close()
            return statuses

        statuses = asyncio.run(_with_service(
            _config(tmp_path, window_s=0.2, queue_cap=2), scenario))
        assert "busy" in statuses
        # Every request got exactly one answer; nothing was dropped.
        assert len(statuses) == 8
        assert set(statuses) <= {"ok", "busy", "exhausted"}


class TestDrain:
    def test_drain_op_flushes_and_stops(self, tmp_path):
        config = _config(tmp_path)

        async def scenario():
            service = WearService(config)
            host, port = await service.start()
            client = await ServiceClient(host, port).connect()
            await client.provision(**tenant_population(1, seed=13)[0])
            await client.access("tenant-000")
            drained = await client.drain()
            assert drained["status"] == "ok"
            assert drained["requests"] == 1
            await client.close()
            await asyncio.wait_for(service.wait_closed(), timeout=10)

        asyncio.run(scenario())
        # The drain snapshot covers the whole WAL.
        snapshot = json.loads(
            (tmp_path / "ledger" / "snapshot.json").read_text())
        assert snapshot["meta"]["kind"] == "svc-snapshot"
        assert snapshot["meta"]["last_seq"] == 1

    def test_draining_service_denies_new_work(self, tmp_path):
        async def scenario():
            service = WearService(_config(tmp_path))
            host, port = await service.start()
            client = await ServiceClient(host, port).connect()
            await client.provision(**tenant_population(1, seed=17)[0])
            await client.drain()
            await service.wait_closed()
            fresh = ServiceClient(host, port)
            with pytest.raises((ConnectionRefusedError, ConfigurationError,
                                ConnectionResetError)):
                await fresh.access("tenant-000")
            await fresh.close()

        asyncio.run(scenario())

    def test_restart_resumes_served_counts(self, tmp_path):
        config = _config(tmp_path)

        async def first_life():
            service = WearService(config)
            host, port = await service.start()
            client = await ServiceClient(host, port).connect()
            await client.provision(**tenant_population(1, seed=19)[0])
            for _ in range(3):
                await client.access("tenant-000")
            status = await client.status("tenant-000")
            await client.close()
            await service.shutdown()
            return status

        async def second_life():
            service = WearService(config)
            host, port = await service.start()
            client = await ServiceClient(host, port).connect()
            status = await client.status("tenant-000")
            await client.close()
            await service.shutdown()
            return status, service.recovered_records

        before = asyncio.run(first_life())
        after, recovered = asyncio.run(second_life())
        assert recovered == 4  # provision + 3 accesses
        for field in ("attempts", "served", "remaining", "wear_cycles",
                      "current_copy", "dead_banks"):
            assert after[field] == before[field]


class TestReadyFile:
    def test_ready_file_names_the_bound_port(self, tmp_path):
        ready = str(tmp_path / "ready.json")

        async def scenario(host, port, service):
            assert read_ready_file(ready, timeout_s=5) == (host, port)

        asyncio.run(_with_service(
            _config(tmp_path, ready_file=ready), scenario))

    def test_missing_ready_file_times_out(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_ready_file(str(tmp_path / "never.json"), timeout_s=0.1)


class TestLoadgen:
    def test_loadgen_reports_every_outcome(self, tmp_path):
        async def scenario(host, port, service):
            return await run_loadgen(host, port, tenants=3, requests=30,
                                     concurrency=4, seed=23)

        stats = asyncio.run(_with_service(_config(tmp_path), scenario))
        assert stats["requests"] == 30
        assert sum(stats["outcomes"].values()) == 30
        assert stats["served"] > 0
        assert stats["service"]["rounds"] > 0

    def test_loadgen_is_idempotent_over_provisioning(self, tmp_path):
        async def scenario(host, port, service):
            first = await run_loadgen(host, port, tenants=2, requests=4,
                                      concurrency=2, seed=29)
            second = await run_loadgen(host, port, tenants=2, requests=4,
                                       concurrency=2, seed=29)
            return first, second

        first, second = asyncio.run(
            _with_service(_config(tmp_path), scenario))
        assert first["provisioned"] == 2
        assert second["provisioned"] == 0  # already there, tolerated


class TestIdempotentRetries:
    def test_same_rid_over_the_socket_replays(self, tmp_path):
        async def scenario(host, port, service):
            client = await ServiceClient(host, port).connect()
            payload = tenant_population(1, seed=3)[0]
            await client.provision(**payload)
            tenant = payload["tenant"]
            first = await client.access(tenant, rid="sock-1")
            replay = await client.access(tenant, rid="sock-1")
            assert replay == first
            fresh = await client.access(tenant, rid="sock-2")
            assert fresh["attempts"] == first["attempts"] + 1
            await client.close()

        asyncio.run(_with_service(_config(tmp_path), scenario))

    def test_bad_rid_is_a_bad_request(self, tmp_path):
        async def scenario(host, port, service):
            client = await ServiceClient(host, port).connect()
            payload = tenant_population(1, seed=3)[0]
            await client.provision(**payload)
            for bad in ("", 7):
                response = await client.request(
                    {"op": "access", "tenant": payload["tenant"],
                     "rid": bad})
                assert response["status"] == "bad-request"
            # A null rid is the documented "no idempotency key" case,
            # not an error: the access goes through unkeyed.
            response = await client.request(
                {"op": "access", "tenant": payload["tenant"], "rid": None})
            assert response["status"] == "ok"
            await client.close()

        asyncio.run(_with_service(_config(tmp_path), scenario))

    def test_segment_rotation_under_load(self, tmp_path):
        async def scenario(host, port, service):
            client = await ServiceClient(host, port).connect()
            payload = tenant_population(1, seed=3)[0]
            await client.provision(**payload)
            for index in range(10):
                await client.access(payload["tenant"], rid=f"rot-{index}")
            await client.close()

        config = _config(tmp_path, snapshot_every=2, segment_records=4)
        asyncio.run(_with_service(config, scenario))
        from repro.service.hub import WearHub
        from repro.service.ledger import WearLedger

        ledger = WearLedger(config.ledger_dir)
        assert ledger.archived_records()  # rotation actually happened
        hub = WearHub(ledger)
        hub.recover()
        tenant = hub.tenants[tenant_population(1, seed=3)[0]["tenant"]]
        assert tenant.attempts == 10
        hub.ledger.close()

    def test_segment_records_requires_snapshot_every(self, tmp_path):
        with pytest.raises(ConfigurationError):
            _config(tmp_path, segment_records=8)
