"""Cross-process trace correlation across a scripted crash-restart.

The acceptance scenario for the trace plane: a client stamps an access
with a trace id, the shard persists it in the WAL access record and
tags its batch-round span event with it, the shard is SIGKILL'd and
restarted through recovery - and one merged timeline still follows the
id client -> shard round -> WAL record, because the WAL is durable even
though the first incarnation's process state is gone.
"""

import asyncio

import pytest

from repro.obs.aggregate import fleet_timeline
from repro.obs.export import follow_trace
from repro.obs.recorder import OBS
from repro.obs.sinks import JsonlSink
from repro.service.client import RetryPolicy, tenant_population
from repro.service.fleet import FleetClient
from repro.service.supervisor import FleetSupervisor

pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True)
def clean_obs():
    OBS.reset()
    yield
    OBS.reset()


def _drive_crash_scenario(root, client_trace_path):
    """Access, SIGKILL, recover, retry-same-key, access again."""
    OBS.configure(sinks=[JsonlSink(client_trace_path)], enabled=True)
    with FleetSupervisor(root, 1, window_s=0.001, snapshot_every=4,
                         max_restarts=5, restart_backoff_s=0.02,
                         obs_trace=True) as supervisor:
        retry = RetryPolicy(retries=6, base_s=0.02, cap_s=0.3)

        async def drive():
            client = FleetClient(supervisor.map_path, retry=retry)
            try:
                payload = tenant_population(1, seed=9)[0]
                assert (await client.provision(**payload))["status"] \
                    == "ok"
                before = await client.access("tenant-000", rid="cr-1",
                                             trace="tr-crash-1")
                assert before["status"] == "ok"
                return before
            finally:
                await client.close()

        async def after_restart(before):
            # A fresh client (fresh event loop): the retry carries the
            # same key and trace id - the recovered shard must replay
            # the recorded answer (charging no wear), and the WAL
            # record written *before* the crash still carries the id.
            client = FleetClient(supervisor.map_path, retry=retry)
            try:
                replay = await client.access("tenant-000", rid="cr-1",
                                             trace="tr-crash-1")
                assert replay == before
                after = await client.access("tenant-000", rid="cr-2",
                                            trace="tr-crash-2")
                assert after["status"] == "ok"
            finally:
                await client.close()

        before = asyncio.run(drive())
        supervisor.kill_shard(0)
        assert supervisor.poll() == [0]
        asyncio.run(after_restart(before))
    # Flush the client-side sink so the timeline sees every event.
    OBS.reset()


class TestCrashRestartCorrelation:
    def test_one_trace_id_spans_client_shard_and_wal(self, tmp_path):
        root = str(tmp_path / "fleet")
        client_trace = str(tmp_path / "client-trace.jsonl")
        _drive_crash_scenario(root, client_trace)

        events = fleet_timeline(
            root + "/fleet.json", trace_paths=(client_trace,),
            out=str(tmp_path / "timeline.jsonl"))
        assert events

        hops = follow_trace(events, "tr-crash-1")
        kinds = [hop.get("name") or hop.get("kind") for hop in hops]
        # Client request(s): the original plus the post-crash retry.
        assert kinds.count("client.request") == 2
        # The shard's pre-crash round event survived in its trace file.
        assert "svc.round" in kinds
        # Exactly one WAL record: the retry replayed, never re-charged.
        wal_hops = [hop for hop in hops if hop.get("kind") == "wal"]
        assert len(wal_hops) == 1
        assert wal_hops[0]["rid"] == "cr-1"
        assert wal_hops[0]["tenant"] == "tenant-000"
        # The WAL hop inherited its round's wall clock, so it sits in
        # chronological position rather than at the epoch.
        assert wal_hops[0].get("wall_time", 0.0) > 0.0

    def test_post_restart_trace_is_also_followable(self, tmp_path):
        root = str(tmp_path / "fleet")
        client_trace = str(tmp_path / "client-trace.jsonl")
        _drive_crash_scenario(root, client_trace)

        events = fleet_timeline(root + "/fleet.json",
                                trace_paths=(client_trace,))
        hops = follow_trace(events, "tr-crash-2")
        kinds = [hop.get("name") or hop.get("kind") for hop in hops]
        assert "client.request" in kinds
        assert "svc.round" in kinds  # second incarnation's trace file
        assert sum(1 for hop in hops if hop.get("kind") == "wal") == 1

    def test_timeline_is_chronologically_ordered(self, tmp_path):
        root = str(tmp_path / "fleet")
        client_trace = str(tmp_path / "client-trace.jsonl")
        _drive_crash_scenario(root, client_trace)

        events = fleet_timeline(root + "/fleet.json",
                                trace_paths=(client_trace,))
        stamped = [event["wall_time"] for event in events
                   if "wall_time" in event]
        assert stamped == sorted(stamped)
