"""Fleet supervision: spawn, probe, SIGKILL, restart through recovery.

Real subprocess shards (each ``python -m repro.cli serve`` in its own
session), so these are marked slow.  The wear-exactness half of the
failover story - recovered state bit-identical, retries replayed - is
pinned harder by the chaos scenarios; here we pin the supervision
mechanics themselves.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.service.client import RetryPolicy
from repro.service.fleet import FleetClient, run_fleet_loadgen
from repro.service.supervisor import FleetSupervisor

pytestmark = pytest.mark.slow


def _supervisor(tmp_path, **overrides):
    kwargs = dict(window_s=0.001, snapshot_every=8, max_restarts=5,
                  restart_backoff_s=0.02)
    kwargs.update(overrides)
    return FleetSupervisor(str(tmp_path / "fleet"), 2, **kwargs)


class TestLifecycle:
    def test_start_probe_stop(self, tmp_path):
        with _supervisor(tmp_path) as sup:
            assert sup.alive() == [True, True]
            for index in range(2):
                status = sup.probe(index)
                assert status["status"] == "ok"
                assert status["tenants"] == {}
        assert sup.alive() == [False, False]

    def test_invalid_configuration_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FleetSupervisor(str(tmp_path), 0)
        with pytest.raises(ConfigurationError):
            FleetSupervisor(str(tmp_path), 1, max_restarts=-1)


class TestFailover:
    def test_killed_shard_restarts_with_exact_state(self, tmp_path):
        retry = RetryPolicy(retries=6, base_s=0.02, cap_s=0.3)
        with _supervisor(tmp_path) as sup:
            stats = asyncio.run(run_fleet_loadgen(
                sup.map_path, tenants=4, requests=24, concurrency=4,
                seed=5, retry=retry))
            assert stats["served"] > 0

            sup.kill_shard(0)
            assert sup.alive() == [False, True]
            assert sup.poll() == [0]
            assert sup.alive() == [True, True]
            assert sup.restarts == [1, 0]

            # The restarted shard recovered its ledger: a retry of an
            # already-committed rid replays the recorded answer instead
            # of charging wear again.
            async def replay_check():
                client = FleetClient(sup.map_path, retry=retry)
                try:
                    first = await client.access("tenant-000",
                                                rid="fo-1")
                    again = await client.access("tenant-000",
                                                rid="fo-1")
                    return first, again
                finally:
                    await client.close()

            first, again = asyncio.run(replay_check())
            assert first["status"] in ("ok", "exhausted")
            assert again == first

    def test_restart_budget_exhaustion_raises(self, tmp_path):
        with _supervisor(tmp_path, max_restarts=0) as sup:
            sup.kill_shard(1)
            with pytest.raises(ConfigurationError,
                               match="restart budget"):
                sup.poll()

    def test_poll_is_a_noop_when_healthy(self, tmp_path):
        with _supervisor(tmp_path) as sup:
            assert sup.poll() == []
            assert sup.restarts == [0, 0]
