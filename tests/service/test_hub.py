"""Tests for the multi-tenant wear hub (provisioning, rounds, recovery)."""

import pytest

from repro.connection.architecture import LimitedUseConnection
from repro.core.degradation import PAPER_CRITERIA, DesignPoint
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError, DeviceWornOutError
from repro.service.hub import WearHub
from repro.service.ledger import WearLedger
from repro.sim.rng import make_rng

ALPHA, BETA, N, K, COPIES, SEED = 9.0, 6.0, 6, 2, 3, 42
SECRET = bytes(range(16))


def _provision_request(name="t0", *, seed=SEED, faults=None, **overrides):
    request = {"op": "provision", "tenant": name, "alpha": ALPHA,
               "beta": BETA, "n": N, "k": K, "copies": COPIES,
               "seed": seed, "secret": SECRET.hex(), "faults": faults}
    request.update(overrides)
    return request


@pytest.fixture
def hub(tmp_path):
    hub = WearHub(WearLedger(str(tmp_path)))
    hub.ledger.open_for_append()
    yield hub
    hub.ledger.close()


class TestProvision:
    def test_provision_reports_capacity(self, hub):
        response = hub.provision(_provision_request())
        assert response["status"] == "ok"
        assert response["capacity"] > 0
        assert response["copies"] == COPIES

    def test_duplicate_name_denied(self, hub):
        hub.provision(_provision_request())
        assert hub.provision(_provision_request())["status"] == "exists"

    def test_invalid_parameters_denied(self, hub):
        for bad in (_provision_request(k=0),
                    _provision_request(secret="not hex"),
                    _provision_request(secret=""),
                    _provision_request(faults={"unknown_field": 1}),
                    {"op": "provision", "tenant": "t"}):
            assert hub.provision(bad)["status"] == "bad-request"

    def test_same_shape_tenants_share_a_pool(self, hub):
        hub.provision(_provision_request("a", seed=1))
        hub.provision(_provision_request("b", seed=2))
        hub.provision(_provision_request("c", seed=3, n=4, k=2))
        assert len(hub.pools) == 2
        assert hub.tenants["a"].pool is hub.tenants["b"].pool
        assert hub.tenants["a"].row != hub.tenants["b"].row


class TestServeRound:
    def test_unknown_tenant_denied(self, hub):
        responses = hub.serve_round(["ghost"])
        assert responses["ghost"]["status"] == "unknown-tenant"

    def test_duplicate_tenant_in_round_rejected(self, hub):
        hub.provision(_provision_request())
        with pytest.raises(ConfigurationError):
            hub.serve_round(["t0", "t0"])

    def test_round_serves_each_tenant_its_own_secret(self, hub):
        hub.provision(_provision_request("a", seed=1))
        hub.provision(_provision_request("b", seed=2,
                                         secret=(b"\xaa" * 16).hex()))
        responses = hub.serve_round(["a", "b"])
        assert responses["a"]["status"] == "ok"
        assert responses["a"]["secret"] == SECRET.hex()
        assert responses["b"]["secret"] == (b"\xaa" * 16).hex()

    def test_exhaustion_is_an_explicit_denial(self, hub):
        hub.provision(_provision_request())
        last = None
        for _ in range(10_000):
            response = hub.serve_round(["t0"])["t0"]
            if response["status"] != "ok":
                last = response
                break
        assert last is not None, "tenant never exhausted"
        assert last["status"] == "exhausted"
        assert last["served"] > 0
        assert hub.tenants["t0"].exhausted
        # Post-exhaustion accesses are denied without touching the WAL.
        before = hub.ledger.next_seq
        assert hub.serve_round(["t0"])["t0"]["status"] == "exhausted"
        assert hub.ledger.next_seq == before

    def test_accesses_are_logged_before_execution(self, hub):
        hub.provision(_provision_request())
        hub.serve_round(["t0"])
        assert hub.ledger.next_seq == 2  # provision + access


class TestStatus:
    def test_single_tenant_status(self, hub):
        hub.provision(_provision_request())
        hub.serve_round(["t0"])
        status = hub.status("t0")
        assert status["status"] == "ok"
        assert status["attempts"] == 1
        assert status["served"] == 1
        assert status["wear_cycles"] > 0
        assert status["remaining"] > 0

    def test_all_tenants_status(self, hub):
        hub.provision(_provision_request("a", seed=1))
        hub.provision(_provision_request("b", seed=2))
        status = hub.status()
        assert set(status["tenants"]) == {"a", "b"}
        assert hub.status("ghost")["status"] == "unknown-tenant"

    def test_fault_tenant_reports_injections(self, hub):
        hub.provision(_provision_request(faults={"misfire_rate": 0.2}))
        for _ in range(20):
            hub.serve_round(["t0"])
        status = hub.status("t0")
        assert "injections" in status


class TestConnectionEquivalence:
    """A hub tenant must be the *same device* as a standalone connection.

    Same seed, same architecture: the service's pooled, vectorized
    tenant must serve byte-identical secrets for exactly as many
    accesses as a sequentially-driven
    :class:`~repro.connection.architecture.LimitedUseConnection`.
    """

    def test_secret_sequence_and_bound_match(self, hub):
        hub.provision(_provision_request())
        design = DesignPoint(
            device=WeibullDistribution(alpha=ALPHA, beta=BETA),
            n=N, k=K, t=1, copies=COPIES, access_bound=1,
            criteria=PAPER_CRITERIA)
        connection = LimitedUseConnection(design, SECRET, make_rng(SEED))

        served = 0
        while True:
            response = hub.serve_round(["t0"])["t0"]
            if response["status"] != "ok":
                break
            assert bytes.fromhex(response["secret"]) == connection.read_key()
            assert response["copy"] == connection.current_copy
            served += 1
        assert served > 0
        with pytest.raises(DeviceWornOutError):
            connection.read_key()
        assert connection.is_exhausted


class TestIdempotency:
    def test_replay_returns_the_recorded_response(self, hub):
        hub.provision(_provision_request())
        first = hub.serve_round([("t0", "rid-1")])["t0"]
        assert first["status"] == "ok"
        wal_after_first = hub.ledger.next_seq
        attempts = hub.tenants["t0"].attempts
        replayed = hub.serve_round([("t0", "rid-1")])["t0"]
        assert replayed == first
        # The replay charged nothing: no WAL record, no attempt.
        assert hub.ledger.next_seq == wal_after_first
        assert hub.tenants["t0"].attempts == attempts
        assert hub.idempotent_replays == 1

    def test_distinct_rids_each_charge_wear(self, hub):
        hub.provision(_provision_request())
        a = hub.serve_round([("t0", "rid-a")])["t0"]
        b = hub.serve_round([("t0", "rid-b")])["t0"]
        assert hub.tenants["t0"].attempts == 2
        assert a["attempts"] == 1 and b["attempts"] == 2

    def test_rid_is_persisted_in_the_wal_record(self, hub):
        hub.provision(_provision_request())
        hub.serve_round([("t0", "rid-x")])
        import json
        with open(hub.ledger.wal_path) as handle:
            last = json.loads(handle.read().splitlines()[-1])
        assert last["op"] == "access"
        assert last["rid"] == "rid-x"

    def test_exhausted_answer_is_recorded_too(self, hub):
        hub.provision(_provision_request(n=1, k=1, copies=1, alpha=0.5,
                                         beta=6.0))
        rid_index = 0
        while True:
            rid = f"rid-{rid_index}"
            response = hub.serve_round([("t0", rid)])["t0"]
            rid_index += 1
            if response["status"] == "exhausted":
                break
        again = hub.serve_round([("t0", rid)])["t0"]
        assert again == response
        assert hub.idempotent_replays == 1

    def test_plain_string_rounds_still_work(self, hub):
        hub.provision(_provision_request())
        response = hub.serve_round(["t0"])["t0"]
        assert response["status"] == "ok"
        # Unkeyed accesses are never recorded for replay.
        assert not hub._responses

    def test_response_retention_is_fifo_bounded(self, tmp_path):
        hub = WearHub(WearLedger(str(tmp_path)), response_retention=2)
        hub.ledger.open_for_append()
        try:
            hub.provision(_provision_request())
            for index in range(3):
                hub.serve_round([("t0", f"rid-{index}")])
            assert hub.recorded_response("t0", "rid-0") is None
            assert hub.recorded_response("t0", "rid-2") is not None
        finally:
            hub.ledger.close()


class TestSelfContainedSnapshot:
    FAULTS = {"misfire_rate": 0.1, "stuck_closed_probability": 0.5,
              "timeout_rate": 0.05}

    def _drive(self, hub, rounds, tag):
        responses = []
        for index in range(rounds):
            responses.append(hub.serve_round(
                [("t0", f"{tag}-{index}")])["t0"])
        return responses

    def test_snapshot_meta_is_format_2(self, hub):
        hub.provision(_provision_request())
        hub.serve_round(["t0"])
        hub.write_snapshot()
        from repro.sim.checkpoint import load_checkpoint
        payload = load_checkpoint(hub.ledger.snapshot_path)
        assert payload["meta"]["format"] == 2
        assert payload["results"][0]["params"]["n"] == N

    def test_fault_tenant_recovers_from_snapshot_alone(self, tmp_path):
        # Drive a faulted tenant, snapshot, rotate the pre-snapshot
        # records away so recovery CANNOT re-execute them, then keep
        # driving.  Recovery must restore from the snapshot and replay
        # only the tail - landing on the same state and regenerating
        # the same keyed responses the live hub produced.
        hub = WearHub(WearLedger(str(tmp_path)))
        hub.ledger.open_for_append()
        hub.provision(_provision_request(faults=self.FAULTS))
        self._drive(hub, 5, "pre")
        hub.write_snapshot()
        hub.ledger.rotate_segment()
        continued = self._drive(hub, 8, "post")
        hub.ledger.close()

        recovered = WearHub(WearLedger(str(tmp_path)))
        recovered.recover()
        tenant, mirror = hub.tenants["t0"], recovered.tenants["t0"]
        assert mirror.attempts == tenant.attempts
        assert mirror.served == tenant.served
        import numpy as np
        for field in ("used", "lifetime", "bank_accesses", "bank_dead",
                      "current", "total_accesses"):
            assert np.array_equal(
                getattr(tenant.pool.state, field)[tenant.row],
                getattr(mirror.pool.state, field)[mirror.row]), field
        # Stepped replay of the post-rotation tail regenerated every
        # keyed response byte for byte.
        for index, response in enumerate(continued):
            assert recovered.recorded_response(
                "t0", f"post-{index}") == response
        recovered.ledger.close()

    def test_keyed_responses_survive_the_snapshot(self, tmp_path):
        hub = WearHub(WearLedger(str(tmp_path)))
        hub.ledger.open_for_append()
        hub.provision(_provision_request())
        original = hub.serve_round([("t0", "rid-keep")])["t0"]
        hub.write_snapshot()
        hub.ledger.rotate_segment()
        hub.ledger.close()
        recovered = WearHub(WearLedger(str(tmp_path)))
        recovered.recover()
        recovered.ledger.open_for_append()
        assert recovered.serve_round([("t0", "rid-keep")])["t0"] == original
        assert recovered.idempotent_replays == 1
        recovered.ledger.close()
