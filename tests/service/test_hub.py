"""Tests for the multi-tenant wear hub (provisioning, rounds, recovery)."""

import pytest

from repro.connection.architecture import LimitedUseConnection
from repro.core.degradation import PAPER_CRITERIA, DesignPoint
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError, DeviceWornOutError
from repro.service.hub import WearHub
from repro.service.ledger import WearLedger
from repro.sim.rng import make_rng

ALPHA, BETA, N, K, COPIES, SEED = 9.0, 6.0, 6, 2, 3, 42
SECRET = bytes(range(16))


def _provision_request(name="t0", *, seed=SEED, faults=None, **overrides):
    request = {"op": "provision", "tenant": name, "alpha": ALPHA,
               "beta": BETA, "n": N, "k": K, "copies": COPIES,
               "seed": seed, "secret": SECRET.hex(), "faults": faults}
    request.update(overrides)
    return request


@pytest.fixture
def hub(tmp_path):
    hub = WearHub(WearLedger(str(tmp_path)))
    hub.ledger.open_for_append()
    yield hub
    hub.ledger.close()


class TestProvision:
    def test_provision_reports_capacity(self, hub):
        response = hub.provision(_provision_request())
        assert response["status"] == "ok"
        assert response["capacity"] > 0
        assert response["copies"] == COPIES

    def test_duplicate_name_denied(self, hub):
        hub.provision(_provision_request())
        assert hub.provision(_provision_request())["status"] == "exists"

    def test_invalid_parameters_denied(self, hub):
        for bad in (_provision_request(k=0),
                    _provision_request(secret="not hex"),
                    _provision_request(secret=""),
                    _provision_request(faults={"unknown_field": 1}),
                    {"op": "provision", "tenant": "t"}):
            assert hub.provision(bad)["status"] == "bad-request"

    def test_same_shape_tenants_share_a_pool(self, hub):
        hub.provision(_provision_request("a", seed=1))
        hub.provision(_provision_request("b", seed=2))
        hub.provision(_provision_request("c", seed=3, n=4, k=2))
        assert len(hub.pools) == 2
        assert hub.tenants["a"].pool is hub.tenants["b"].pool
        assert hub.tenants["a"].row != hub.tenants["b"].row


class TestServeRound:
    def test_unknown_tenant_denied(self, hub):
        responses = hub.serve_round(["ghost"])
        assert responses["ghost"]["status"] == "unknown-tenant"

    def test_duplicate_tenant_in_round_rejected(self, hub):
        hub.provision(_provision_request())
        with pytest.raises(ConfigurationError):
            hub.serve_round(["t0", "t0"])

    def test_round_serves_each_tenant_its_own_secret(self, hub):
        hub.provision(_provision_request("a", seed=1))
        hub.provision(_provision_request("b", seed=2,
                                         secret=(b"\xaa" * 16).hex()))
        responses = hub.serve_round(["a", "b"])
        assert responses["a"]["status"] == "ok"
        assert responses["a"]["secret"] == SECRET.hex()
        assert responses["b"]["secret"] == (b"\xaa" * 16).hex()

    def test_exhaustion_is_an_explicit_denial(self, hub):
        hub.provision(_provision_request())
        last = None
        for _ in range(10_000):
            response = hub.serve_round(["t0"])["t0"]
            if response["status"] != "ok":
                last = response
                break
        assert last is not None, "tenant never exhausted"
        assert last["status"] == "exhausted"
        assert last["served"] > 0
        assert hub.tenants["t0"].exhausted
        # Post-exhaustion accesses are denied without touching the WAL.
        before = hub.ledger.next_seq
        assert hub.serve_round(["t0"])["t0"]["status"] == "exhausted"
        assert hub.ledger.next_seq == before

    def test_accesses_are_logged_before_execution(self, hub):
        hub.provision(_provision_request())
        hub.serve_round(["t0"])
        assert hub.ledger.next_seq == 2  # provision + access


class TestStatus:
    def test_single_tenant_status(self, hub):
        hub.provision(_provision_request())
        hub.serve_round(["t0"])
        status = hub.status("t0")
        assert status["status"] == "ok"
        assert status["attempts"] == 1
        assert status["served"] == 1
        assert status["wear_cycles"] > 0
        assert status["remaining"] > 0

    def test_all_tenants_status(self, hub):
        hub.provision(_provision_request("a", seed=1))
        hub.provision(_provision_request("b", seed=2))
        status = hub.status()
        assert set(status["tenants"]) == {"a", "b"}
        assert hub.status("ghost")["status"] == "unknown-tenant"

    def test_fault_tenant_reports_injections(self, hub):
        hub.provision(_provision_request(faults={"misfire_rate": 0.2}))
        for _ in range(20):
            hub.serve_round(["t0"])
        status = hub.status("t0")
        assert "injections" in status


class TestConnectionEquivalence:
    """A hub tenant must be the *same device* as a standalone connection.

    Same seed, same architecture: the service's pooled, vectorized
    tenant must serve byte-identical secrets for exactly as many
    accesses as a sequentially-driven
    :class:`~repro.connection.architecture.LimitedUseConnection`.
    """

    def test_secret_sequence_and_bound_match(self, hub):
        hub.provision(_provision_request())
        design = DesignPoint(
            device=WeibullDistribution(alpha=ALPHA, beta=BETA),
            n=N, k=K, t=1, copies=COPIES, access_bound=1,
            criteria=PAPER_CRITERIA)
        connection = LimitedUseConnection(design, SECRET, make_rng(SEED))

        served = 0
        while True:
            response = hub.serve_round(["t0"])["t0"]
            if response["status"] != "ok":
                break
            assert bytes.fromhex(response["secret"]) == connection.read_key()
            assert response["copy"] == connection.current_copy
            served += 1
        assert served > 0
        with pytest.raises(DeviceWornOutError):
            connection.read_key()
        assert connection.is_exhausted
