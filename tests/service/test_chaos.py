"""The chaos harness itself: scenarios run green and reject bad input.

Each scenario spawns a real two-shard fleet, injects its fault
(SIGKILL, torn WAL tail, crash-then-retry) and checks the wear
invariants - so one green scenario here is an end-to-end proof of the
failover story.  The full four-scenario sweep runs in CI's chaos-smoke
leg and via ``repro chaos``; the suite here keeps to the two scenarios
that exercise distinct code paths (supervised restart vs power cut)
to bound test time.
"""

import pytest

from repro.errors import ConfigurationError
from repro.service.chaos import SCENARIOS, run_chaos, run_scenario

pytestmark = pytest.mark.slow


class TestScenarios:
    def test_kill_mid_batch_holds_invariants(self, tmp_path):
        report = run_scenario("kill-mid-batch", str(tmp_path),
                              shards=2, tenants=6, requests=32, seed=11)
        assert report["scenario"] == "kill-mid-batch"
        assert sum(report["loadgen"]["outcomes"].values()) == 32
        assert sum(report["restarts"]) >= 1
        assert set(report["shards"]) == {"0", "1"}
        for shard in report["shards"].values():
            assert shard["records"] > 0

    def test_retry_race_replays_not_recharges(self, tmp_path):
        report = run_scenario("retry-race", str(tmp_path),
                              shards=2, tenants=6, requests=24, seed=11)
        assert report["responses"] == 24
        # Every shard restarted exactly once (the scripted crash).
        assert report["restarts"] == [1, 1]

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown chaos"):
            run_scenario("split-brain", str(tmp_path))

    def test_invalid_shape_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_scenario("kill-mid-batch", str(tmp_path), requests=0)

    def test_scenario_registry_is_pinned(self):
        assert sorted(SCENARIOS) == ["kill-mid-batch", "restart-storm",
                                     "retry-race", "torn-tail"]


class TestRunChaos:
    def test_suite_aggregates_reports(self, tmp_path):
        report = run_chaos(["torn-tail"], str(tmp_path),
                           shards=2, tenants=6, requests=24, seed=11)
        assert report["passed"]
        assert not report["violations"]
        assert [s["scenario"] for s in report["scenarios"]] == ["torn-tail"]
