"""Tests for the limited-use authorization service (``repro.service``).

- ``test_protocol`` - frame encoding, torn/oversized frame handling;
- ``test_ledger`` - WAL append/replay, torn-tail truncation, sequence
  validation, snapshot round-trips;
- ``test_hub`` - provisioning, round serving, and byte-identity of a
  hub tenant's secret sequence with a standalone
  :class:`~repro.connection.architecture.LimitedUseConnection`;
- ``test_server`` - the asyncio front end over real loopback sockets:
  backpressure, rate limiting, graceful drain, ready files.

The cross-cutting differential guarantees (batched vs sequential,
SIGKILL crash recovery) live in ``tests/differential``.
"""
