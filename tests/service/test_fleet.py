"""Fleet routing: tenant hashing, the fleet map, and retry discipline.

These are the fast, in-process halves of the fleet layer.  The
subprocess halves - supervision, failover, chaos - live in
``tests/service/test_supervisor.py`` and ``tests/service/test_chaos.py``.
"""

import asyncio
import json
import random
import socket

import pytest

from repro.errors import ConfigurationError
from repro.service.client import RetryPolicy
from repro.service.fleet import (
    FLEET_MAP_NAME,
    FleetClient,
    read_fleet_map,
    shard_index,
    write_fleet_map,
)


class TestShardIndex:
    def test_placement_is_pinned(self):
        # The placement function IS the protocol: any change strands
        # every existing tenant's wear history on the wrong shard.
        assert shard_index("tenant-000", 2) == 1
        assert shard_index("tenant-001", 2) == 1
        assert shard_index("tenant-003", 2) == 1
        assert shard_index("tenant-003", 3) == 0
        assert shard_index("tenant-000", 3) == 1

    def test_stable_across_calls(self):
        for shards in (1, 2, 5, 16):
            for index in range(32):
                tenant = f"tenant-{index:03d}"
                assert (shard_index(tenant, shards)
                        == shard_index(tenant, shards))
                assert 0 <= shard_index(tenant, shards) < shards

    def test_single_shard_owns_everything(self):
        assert shard_index("anything", 1) == 0

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_index("t", 0)

    def test_spreads_tenants(self):
        owners = {shard_index(f"tenant-{i:03d}", 4) for i in range(64)}
        assert owners == {0, 1, 2, 3}


class TestFleetMap:
    def _entries(self, tmp_path, count=2):
        return [{"index": index,
                 "ledger_dir": str(tmp_path / f"shard-{index}" / "ledger"),
                 "ready_file": str(tmp_path / f"shard-{index}" / "ready")}
                for index in range(count)]

    def test_round_trips(self, tmp_path):
        path = str(tmp_path / FLEET_MAP_NAME)
        entries = self._entries(tmp_path)
        write_fleet_map(path, entries)
        assert read_fleet_map(path) == entries

    def test_read_orders_by_index(self, tmp_path):
        path = str(tmp_path / FLEET_MAP_NAME)
        entries = self._entries(tmp_path, 3)
        write_fleet_map(path, list(reversed(entries)))
        assert [s["index"] for s in read_fleet_map(path)] == [0, 1, 2]

    def test_non_contiguous_indices_rejected(self, tmp_path):
        path = str(tmp_path / FLEET_MAP_NAME)
        write_fleet_map(path, [{"index": 0}, {"index": 2}])
        with pytest.raises(ConfigurationError):
            read_fleet_map(path)

    def test_empty_map_rejected(self, tmp_path):
        path = str(tmp_path / FLEET_MAP_NAME)
        write_fleet_map(path, [])
        with pytest.raises(ConfigurationError):
            read_fleet_map(path)

    def test_missing_map_times_out(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_fleet_map(str(tmp_path / "never.json"), timeout_s=0.1)

    def test_write_is_atomic(self, tmp_path):
        # tmp + rename: no partially-written map is ever observable,
        # and no tmp litter survives the write.
        path = str(tmp_path / FLEET_MAP_NAME)
        write_fleet_map(path, self._entries(tmp_path))
        write_fleet_map(path, self._entries(tmp_path, 3))
        assert len(read_fleet_map(path)) == 3
        leftovers = [name for name in tmp_path.iterdir()
                     if ".tmp." in name.name]
        assert not leftovers


class TestRetryPolicy:
    def test_delays_are_capped_and_jittered(self):
        policy = RetryPolicy(retries=8, base_s=0.01, cap_s=0.05)
        rng = random.Random(3)
        for attempt in range(10):
            delay = policy.delay_s(attempt, rng)
            assert 0.0 <= delay <= 0.05
        # Early attempts stay under the uncapped exponential ceiling.
        assert policy.delay_s(0, rng) <= 0.01
        assert policy.delay_s(1, rng) <= 0.02

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=0.5, cap_s=0.1)

    def test_zero_retries_is_a_valid_budget(self):
        assert RetryPolicy(retries=0).retries == 0


class TestFleetClientUnavailable:
    def _dead_fleet(self, tmp_path):
        """A one-shard map whose ready file names a port nobody owns."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        ready = tmp_path / "ready.json"
        ready.write_text(json.dumps({"host": "127.0.0.1",
                                     "port": dead_port}))
        path = str(tmp_path / FLEET_MAP_NAME)
        write_fleet_map(path, [{"index": 0,
                                "ledger_dir": str(tmp_path / "ledger"),
                                "ready_file": str(ready)}])
        return path

    def test_budget_exhaustion_is_a_structured_denial(self, tmp_path):
        path = self._dead_fleet(tmp_path)
        client = FleetClient(
            path, retry=RetryPolicy(retries=2, base_s=0.001, cap_s=0.002))

        async def scenario():
            try:
                return await client.access("tenant-000", rid="r-0")
            finally:
                await client.close()

        response = asyncio.run(scenario())
        assert response["status"] == "unavailable"
        assert response["shard"] == 0
        # Every failed attempt dropped the connection and re-read the
        # ready file - the failover path, exercised to exhaustion.
        assert client.reconnects == 3

    def test_provision_requires_a_tenant(self, tmp_path):
        client = FleetClient(self._dead_fleet(tmp_path))
        with pytest.raises(ConfigurationError):
            asyncio.run(client.provision(alpha=9.0))
