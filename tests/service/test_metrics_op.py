"""The ``metrics`` protocol op: shard snapshot + per-tenant wear gauges.

The acceptance bar for the telemetry plane is *exactness*: the gauges a
shard reports must equal the engine's own touched-state queries (not a
shadow accounting), and the latency histograms must only exist when the
recorder was actually on.
"""

import asyncio

import pytest

from repro.obs.recorder import OBS
from repro.service.client import (
    ServiceClient,
    latency_split_from_metrics,
    tenant_population,
)
from repro.service.server import ServiceConfig, WearService

pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True)
def clean_obs():
    OBS.reset()
    yield
    OBS.reset()


def _config(tmp_path, **overrides) -> ServiceConfig:
    settings = {"ledger_dir": str(tmp_path / "ledger"),
                "window_s": 0.001}
    settings.update(overrides)
    return ServiceConfig(**settings)


async def _with_service(config, scenario):
    service = WearService(config)
    host, port = await service.start()
    try:
        return await scenario(host, port, service)
    finally:
        await service.shutdown()


def _drive(tmp_path, *, enabled, tenants=2, requests=10):
    """Provision, access, fetch metrics; returns (response, service)."""
    if enabled:
        OBS.configure(enabled=True)

    async def scenario(host, port, service):
        client = await ServiceClient(host, port).connect()
        for payload in tenant_population(tenants, seed=7):
            assert (await client.provision(**payload))["status"] == "ok"
        for index in range(requests):
            response = await client.access(
                f"tenant-{index % tenants:03d}",
                rid=f"m-{index}", trace=f"tr-m-{index}")
            assert response["status"] in ("ok", "exhausted")
        metrics = await client.metrics()
        await client.close()
        return metrics, service

    return asyncio.run(_with_service(_config(tmp_path), scenario))


class TestShardSection:
    def test_shard_identity_and_health(self, tmp_path):
        response, service = _drive(tmp_path, enabled=False)
        assert response["status"] == "ok"
        assert response["kind"] == "shard-metrics"
        shard = response["shard"]
        assert shard["pid"] > 0
        assert shard["peak_rss_bytes"] > 4 * 2**20
        assert shard["uptime_s"] > 0
        assert shard["draining"] is False
        assert shard["obs_enabled"] is False
        assert response["service"]["requests"] > 0
        assert response["service"]["rounds"] > 0


class TestWearGauges:
    def test_gauges_match_engine_queries_exactly(self, tmp_path):
        response, service = _drive(tmp_path, enabled=False)
        gauges = response["tenants"]
        assert set(gauges) == {"tenant-000", "tenant-001"}
        for name, reported in gauges.items():
            tenant = service.hub.tenants[name]
            state, row = tenant.pool.state, tenant.row
            assert reported["remaining_capacity"] \
                == int(state.remaining_capacity()[row])
            assert reported["remaining_bank_budgets"] \
                == [int(b) for b in state.remaining_bank_budgets()[row]]
            assert reported["wear_cycles"] == int(state.used[row].sum())
            total = int(state.switch_budgets()[row].sum())
            assert reported["lifetime_used_fraction"] \
                == pytest.approx(reported["wear_cycles"] / total)
            assert reported["attempts"] == tenant.attempts
            assert reported["served"] == tenant.served
            assert reported["exhausted"] == tenant.exhausted
            assert reported["current_copy"] == int(state.current[row])
            assert reported["dead_banks"] \
                == int(state.bank_dead[row].sum())

    def test_gauges_track_wear_to_exhaustion(self, tmp_path):
        response, service = _drive(tmp_path, enabled=False,
                                   tenants=1, requests=200)
        gauge = response["tenants"]["tenant-000"]
        assert gauge["exhausted"] is True
        assert gauge["remaining_capacity"] == 0
        assert gauge["lifetime_used_fraction"] == pytest.approx(1.0, abs=0.35)


class TestRegistrySection:
    def test_disabled_recorder_reports_none(self, tmp_path):
        response, _ = _drive(tmp_path, enabled=False)
        assert response["metrics"] is None
        assert latency_split_from_metrics(response) is None

    def test_enabled_recorder_reports_stage_histograms(self, tmp_path):
        response, _ = _drive(tmp_path, enabled=True)
        assert response["shard"]["obs_enabled"] is True
        snapshot = response["metrics"]
        assert snapshot["kind"] == "metrics-snapshot"
        histograms = snapshot["histograms"]
        for name in ("svc.request_latency_s", "svc.queue_wait_s",
                     "svc.kernel_s", "svc.wal_append_s",
                     "svc.round_latency_s"):
            assert histograms[name]["count"] > 0, name
        split = latency_split_from_metrics(response)
        assert set(split) == {"queue_wait", "kernel", "wal_append",
                              "round"}
        for stage in split.values():
            assert stage["count"] > 0
            assert stage["p50"] is not None

    def test_split_degrades_on_denials(self):
        assert latency_split_from_metrics(None) is None
        assert latency_split_from_metrics({"status": "busy"}) is None
