"""Tests for the length-prefixed JSON frame protocol."""

import asyncio
import json
import struct

import pytest

from repro.errors import ConfigurationError
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_payload,
    denied,
    encode_frame,
    ok,
    read_frame,
)


def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestFraming:
    def test_roundtrip(self):
        payload = {"op": "access", "tenant": "t", "n": 3}
        frame = encode_frame(payload)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == payload

    def test_equal_dicts_encode_to_equal_bytes(self):
        a = encode_frame({"b": 1, "a": [2, 3]})
        b = encode_frame({"a": [2, 3], "b": 1})
        assert a == b

    def test_oversized_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_frame({"blob": "x" * MAX_FRAME_BYTES})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            decode_payload(json.dumps([1, 2]).encode())

    def test_read_frame_roundtrip(self):
        async def scenario():
            reader = _reader_with(encode_frame({"op": "status"}))
            assert await read_frame(reader) == {"op": "status"}
            assert await read_frame(reader) is None  # clean EOF

        asyncio.run(scenario())

    def test_read_frame_rejects_torn_length_word(self):
        async def scenario():
            with pytest.raises(ConfigurationError):
                await read_frame(_reader_with(b"\x00\x00"))

        asyncio.run(scenario())

    def test_read_frame_rejects_torn_body(self):
        async def scenario():
            frame = encode_frame({"op": "status"})
            with pytest.raises(ConfigurationError):
                await read_frame(_reader_with(frame[:-2]))

        asyncio.run(scenario())

    def test_read_frame_rejects_hostile_length(self):
        async def scenario():
            header = struct.pack(">I", MAX_FRAME_BYTES + 1)
            with pytest.raises(ConfigurationError):
                await read_frame(_reader_with(header))

        asyncio.run(scenario())


class TestResponseHelpers:
    def test_ok_carries_status_and_fields(self):
        assert ok(tenant="t") == {"status": "ok", "tenant": "t"}

    def test_denied_carries_code_message_and_fields(self):
        response = denied("busy", "try later", tenant="t")
        assert response == {"status": "busy", "message": "try later",
                            "tenant": "t"}
