"""Tests for the durable wear ledger (WAL + snapshots)."""

import json
import os

import pytest

from repro.errors import ConfigurationError, LedgerCorruptionError
from repro.service.ledger import WearLedger


def _wal_bytes(ledger: WearLedger) -> bytes:
    with open(ledger.wal_path, "rb") as handle:
        return handle.read()


class TestAppend:
    def test_batch_assigns_consecutive_seqs(self, tmp_path):
        ledger = WearLedger(str(tmp_path))
        assert ledger.append({"op": "provision", "tenant": "a"}) == 0
        assert ledger.append_batch(
            [{"op": "access", "tenant": "a"},
             {"op": "access", "tenant": "b"}]) == [1, 2]
        assert ledger.next_seq == 3
        ledger.close()

    def test_records_are_one_json_object_per_line(self, tmp_path):
        ledger = WearLedger(str(tmp_path))
        ledger.append_batch([{"op": "access", "tenant": "a"},
                             {"op": "access", "tenant": "b"}])
        ledger.close()
        lines = _wal_bytes(ledger).decode().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1]

    def test_replay_refuses_an_open_ledger(self, tmp_path):
        ledger = WearLedger(str(tmp_path))
        ledger.open_for_append()
        with pytest.raises(ConfigurationError):
            ledger.replay()
        ledger.close()


class TestSingleWriter:
    def test_second_live_instance_is_refused(self, tmp_path):
        first = WearLedger(str(tmp_path))
        first.open_for_append()
        second = WearLedger(str(tmp_path))
        with pytest.raises(ConfigurationError):
            second.open_for_append()
        with pytest.raises(ConfigurationError):
            second.replay()
        first.close()

    def test_lock_is_released_on_close(self, tmp_path):
        first = WearLedger(str(tmp_path))
        first.append({"op": "provision", "tenant": "a"})
        first.close()
        second = WearLedger(str(tmp_path))
        _, records = second.replay()
        assert len(records) == 1
        second.open_for_append()
        second.close()

    def test_replay_then_append_holds_one_lock(self, tmp_path):
        ledger = WearLedger(str(tmp_path))
        ledger.replay()
        ledger.open_for_append()
        ledger.append({"op": "provision", "tenant": "a"})
        ledger.close()


class TestReplay:
    def test_roundtrip(self, tmp_path):
        ledger = WearLedger(str(tmp_path))
        ledger.append({"op": "provision", "tenant": "a"})
        ledger.append({"op": "access", "tenant": "a"})
        ledger.close()

        fresh = WearLedger(str(tmp_path))
        snapshot, records = fresh.replay()
        assert snapshot is None
        assert [r["op"] for r in records] == ["provision", "access"]
        assert fresh.next_seq == 2

    def test_empty_directory_replays_empty(self, tmp_path):
        snapshot, records = WearLedger(str(tmp_path)).replay()
        assert snapshot is None
        assert records == []

    def test_non_contiguous_seq_is_corruption(self, tmp_path):
        ledger = WearLedger(str(tmp_path))
        with open(ledger.wal_path, "w") as handle:
            handle.write('{"op":"access","seq":0,"tenant":"a"}\n')
            handle.write('{"op":"access","seq":2,"tenant":"a"}\n')
        with pytest.raises(LedgerCorruptionError):
            ledger.replay()

    def test_missing_op_is_corruption(self, tmp_path):
        ledger = WearLedger(str(tmp_path))
        with open(ledger.wal_path, "w") as handle:
            handle.write('{"seq":0,"tenant":"a"}\n')
        with pytest.raises(LedgerCorruptionError):
            ledger.replay()


class TestTornTail:
    def _seed_wal(self, tmp_path) -> WearLedger:
        ledger = WearLedger(str(tmp_path))
        ledger.append_batch([{"op": "access", "tenant": "a"},
                             {"op": "access", "tenant": "b"}])
        ledger.close()
        return ledger

    def test_unterminated_final_line_is_truncated(self, tmp_path):
        ledger = self._seed_wal(tmp_path)
        good = _wal_bytes(ledger)
        with open(ledger.wal_path, "ab") as handle:
            handle.write(b'{"op":"access","seq":2,"ten')
        fresh = WearLedger(str(tmp_path))
        _, records = fresh.replay()
        assert [r["seq"] for r in records] == [0, 1]
        assert _wal_bytes(fresh) == good
        assert fresh.next_seq == 2

    def test_unparseable_final_complete_line_is_truncated(self, tmp_path):
        ledger = self._seed_wal(tmp_path)
        good = _wal_bytes(ledger)
        with open(ledger.wal_path, "ab") as handle:
            handle.write(b'{"op":"access","broken\n')
        fresh = WearLedger(str(tmp_path))
        _, records = fresh.replay()
        assert [r["seq"] for r in records] == [0, 1]
        assert _wal_bytes(fresh) == good

    def test_append_resumes_after_truncation(self, tmp_path):
        ledger = self._seed_wal(tmp_path)
        with open(ledger.wal_path, "ab") as handle:
            handle.write(b"torn")
        fresh = WearLedger(str(tmp_path))
        fresh.replay()
        assert fresh.append({"op": "access", "tenant": "c"}) == 2
        fresh.close()
        lines = _wal_bytes(fresh).decode().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1, 2]

    def test_mid_file_damage_is_not_absorbed(self, tmp_path):
        ledger = self._seed_wal(tmp_path)
        raw = _wal_bytes(ledger).splitlines(keepends=True)
        with open(ledger.wal_path, "wb") as handle:
            handle.write(b"garbage not json\n")
            handle.writelines(raw)
        with pytest.raises(LedgerCorruptionError):
            WearLedger(str(tmp_path)).replay()


class TestSnapshots:
    def test_snapshot_roundtrip(self, tmp_path):
        ledger = WearLedger(str(tmp_path))
        ledger.append({"op": "provision", "tenant": "a"})
        ledger.write_snapshot(0, [{"tenant": "a", "served": 0}])
        ledger.close()
        snapshot, records = WearLedger(str(tmp_path)).replay()
        assert snapshot["meta"]["last_seq"] == 0
        assert snapshot["results"] == [{"tenant": "a", "served": 0}]
        assert len(records) == 1

    def test_snapshot_ahead_of_wal_is_corruption(self, tmp_path):
        ledger = WearLedger(str(tmp_path))
        ledger.append({"op": "provision", "tenant": "a"})
        ledger.write_snapshot(5, [])
        ledger.close()
        with pytest.raises(LedgerCorruptionError):
            WearLedger(str(tmp_path)).replay()

    def test_foreign_checkpoint_kind_rejected(self, tmp_path):
        from repro.sim.checkpoint import save_checkpoint

        ledger = WearLedger(str(tmp_path))
        save_checkpoint(ledger.snapshot_path,
                        meta={"kind": "campaign", "last_seq": 0},
                        results=[])
        with pytest.raises(LedgerCorruptionError):
            ledger.replay()

    def test_corruption_error_carries_context(self, tmp_path):
        ledger = WearLedger(str(tmp_path))
        with open(ledger.wal_path, "w") as handle:
            handle.write('{"op":"access","seq":7,"tenant":"a"}\n')
        with pytest.raises(LedgerCorruptionError) as excinfo:
            ledger.replay()
        assert excinfo.value.path == ledger.wal_path
        assert os.path.exists(ledger.wal_path)


class TestSegmentRotation:
    def _seed(self, tmp_path, records=4):
        ledger = WearLedger(str(tmp_path))
        ledger.open_for_append()
        ledger.append_batch([{"op": "access", "tenant": "a"}
                             for _ in range(records)])
        return ledger

    def test_rotation_seals_the_wal_and_replay_resumes(self, tmp_path):
        ledger = self._seed(tmp_path)
        ledger.write_snapshot(3, [{"tenant": "a"}], format=2)
        segment = ledger.rotate_segment()
        assert segment is not None
        assert os.path.basename(segment) == "segment-00000000-00000003.jsonl"
        assert _wal_bytes(ledger) == b""
        assert ledger.active_base == 4
        ledger.append({"op": "access", "tenant": "a"})
        ledger.close()
        reopened = WearLedger(str(tmp_path))
        snapshot, records = reopened.replay()
        assert snapshot["meta"]["last_seq"] == 3
        assert [r["seq"] for r in records] == [4]
        assert reopened.next_seq == 5
        archived = reopened.archived_records()
        assert [r["seq"] for r in archived] == [0, 1, 2, 3]

    def test_empty_active_segment_is_a_noop(self, tmp_path):
        ledger = self._seed(tmp_path)
        ledger.write_snapshot(3, [], format=2)
        assert ledger.rotate_segment() is not None
        assert ledger.rotate_segment() is None
        ledger.close()

    def test_rotation_requires_a_covering_snapshot(self, tmp_path):
        ledger = self._seed(tmp_path)
        ledger.write_snapshot(2, [], format=2)  # one record short
        with pytest.raises(ConfigurationError):
            ledger.rotate_segment()
        ledger.close()

    def test_rotation_refuses_format_1_snapshots(self, tmp_path):
        ledger = self._seed(tmp_path)
        ledger.write_snapshot(3, [])  # format 1: not self-contained
        with pytest.raises(ConfigurationError):
            ledger.rotate_segment()
        ledger.close()

    def test_rotation_requires_an_open_wal(self, tmp_path):
        ledger = self._seed(tmp_path)
        ledger.write_snapshot(3, [], format=2)
        ledger.close()
        with pytest.raises(ConfigurationError):
            ledger.rotate_segment()

    def test_repeated_rotations_chain_contiguously(self, tmp_path):
        ledger = self._seed(tmp_path, records=2)
        ledger.write_snapshot(1, [], format=2)
        first = ledger.rotate_segment()
        ledger.append_batch([{"op": "access", "tenant": "a"}] * 3)
        ledger.write_snapshot(4, [], format=2)
        second = ledger.rotate_segment()
        ledger.close()
        assert os.path.basename(first) == "segment-00000000-00000001.jsonl"
        assert os.path.basename(second) == "segment-00000002-00000004.jsonl"
        reopened = WearLedger(str(tmp_path))
        snapshot, records = reopened.replay()
        assert records == []
        assert reopened.next_seq == 5
        assert [r["seq"] for r in reopened.archived_records()] \
            == [0, 1, 2, 3, 4]

    def test_archive_gap_is_corruption(self, tmp_path):
        ledger = self._seed(tmp_path, records=2)
        ledger.write_snapshot(1, [], format=2)
        first = ledger.rotate_segment()
        ledger.append_batch([{"op": "access", "tenant": "a"}] * 2)
        ledger.write_snapshot(3, [], format=2)
        ledger.rotate_segment()
        ledger.close()
        os.unlink(first)
        with pytest.raises(LedgerCorruptionError):
            WearLedger(str(tmp_path)).replay()

    def test_torn_active_tail_after_rotation_is_truncated(self, tmp_path):
        ledger = self._seed(tmp_path, records=2)
        ledger.write_snapshot(1, [], format=2)
        ledger.rotate_segment()
        ledger.append({"op": "access", "tenant": "a"})
        ledger.close()
        with open(ledger.wal_path, "ab") as handle:
            handle.write(b'{"op":"access","seq":3,"ten')
        reopened = WearLedger(str(tmp_path))
        _, records = reopened.replay()
        assert [r["seq"] for r in records] == [2]
        assert reopened.next_seq == 3

    def test_missing_active_wal_is_only_legal_at_the_boundary(self,
                                                              tmp_path):
        # Crash window: rotation renamed the WAL away but the fresh one
        # was never created.  Legal iff the snapshot covers the archive.
        ledger = self._seed(tmp_path, records=2)
        ledger.write_snapshot(1, [], format=2)
        ledger.rotate_segment()
        ledger.close()
        os.unlink(ledger.wal_path)
        reopened = WearLedger(str(tmp_path))
        snapshot, records = reopened.replay()
        assert records == []
        assert reopened.next_seq == 2

    def test_missing_active_wal_past_the_boundary_is_corruption(
            self, tmp_path):
        ledger = self._seed(tmp_path, records=2)
        ledger.write_snapshot(1, [], format=2)
        ledger.rotate_segment()
        ledger.append({"op": "access", "tenant": "a"})
        # A later snapshot covers seq 2, which lives only in the active
        # WAL; losing that WAL is then a detectable gap (unlike the
        # rotation crash window, where the archive ends exactly at the
        # snapshot boundary).
        ledger.write_snapshot(2, [], format=2)
        ledger.close()
        os.unlink(ledger.wal_path)
        with pytest.raises(LedgerCorruptionError):
            WearLedger(str(tmp_path)).replay()

    def test_archive_without_snapshot_is_corruption(self, tmp_path):
        ledger = self._seed(tmp_path, records=2)
        ledger.write_snapshot(1, [], format=2)
        ledger.rotate_segment()
        ledger.close()
        os.unlink(ledger.snapshot_path)
        with pytest.raises(LedgerCorruptionError):
            WearLedger(str(tmp_path)).replay()
