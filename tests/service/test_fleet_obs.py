"""Live-fleet telemetry: poll real shards, merge, render, survive kills.

Real subprocess shards under a :class:`FleetSupervisor` (marked slow).
Pins the end-to-end half of what ``tests/obs/test_aggregate.py`` pins
synthetically: shards spawned with ``--obs-metrics`` answer the
``metrics`` op with registries that merge into fleet totals, per-tenant
wear gauges are live engine values, and a SIGKILL'd shard shows up as a
restart in the next snapshot.
"""

import asyncio

import pytest

from repro.obs.aggregate import collect_fleet_metrics, render_fleet_top
from repro.obs.export import render_prometheus
from repro.obs.recorder import OBS
from repro.service.client import RetryPolicy
from repro.service.fleet import run_fleet_loadgen
from repro.service.supervisor import FleetSupervisor

pytestmark = pytest.mark.slow

TENANTS = 6
REQUESTS = 48


@pytest.fixture(autouse=True)
def clean_obs():
    OBS.reset()
    yield
    OBS.reset()


@pytest.fixture(scope="class")
def fleet(tmp_path_factory):
    """One 2-shard fleet, loaded once, shared across a test class."""
    root = str(tmp_path_factory.mktemp("fleet-obs"))
    with FleetSupervisor(root, 2, window_s=0.001, snapshot_every=8,
                         max_restarts=5,
                         restart_backoff_s=0.02) as supervisor:
        stats = asyncio.run(run_fleet_loadgen(
            supervisor.map_path, tenants=TENANTS, requests=REQUESTS,
            concurrency=4, seed=3,
            retry=RetryPolicy(retries=6, base_s=0.02, cap_s=0.3)))
        assert stats["served"] > 0
        yield supervisor, stats


class TestFleetSnapshot:
    def test_snapshot_merges_every_live_shard(self, fleet):
        supervisor, stats = fleet
        snapshot = supervisor.fleet_snapshot()
        totals = snapshot["totals"]
        assert totals["shards"] == 2
        assert totals["alive"] == 2
        # Every request the loadgen fired is in some shard's counters,
        # and the merged registry saw each exactly once.
        assert totals["requests"] >= REQUESTS
        assert snapshot["merged"]["counters"]["svc.requests"] \
            == sum((shard.get("metrics") or {}).get(
                       "counters", {}).get("svc.requests", 0)
                   for shard in snapshot["shards"])
        merged_latency = snapshot["merged"]["histograms"][
            "svc.request_latency_s"]
        assert merged_latency["count"] >= REQUESTS
        assert merged_latency["p50"] is not None

    def test_tenant_wear_gauges_are_live_and_nonzero(self, fleet):
        supervisor, _ = fleet
        snapshot = supervisor.fleet_snapshot()
        tenants = snapshot["tenants"]
        assert len(tenants) == TENANTS
        assert {gauges["shard"] for gauges in tenants.values()} \
            == {0, 1}
        for name, gauges in tenants.items():
            assert gauges["wear_cycles"] > 0, name
            assert gauges["served"] > 0, name
            assert 0.0 < gauges["lifetime_used_fraction"] <= 1.0

    def test_shard_health_fields_present(self, fleet):
        supervisor, _ = fleet
        snapshot = supervisor.fleet_snapshot()
        for shard in snapshot["shards"]:
            assert shard["pid"] > 0
            assert shard["peak_rss_bytes"] > 4 * 2**20
            assert shard["uptime_s"] > 0
            assert shard["obs_enabled"] is True

    def test_supervisor_gauges_recorded_when_obs_on(self, fleet):
        supervisor, _ = fleet
        OBS.configure(enabled=True)
        supervisor.fleet_snapshot()
        registry = OBS.metrics
        assert registry.counters["fleet.snapshots"] == 1
        assert registry.gauges["fleet.shard0.up"] == 1.0
        assert registry.gauges["fleet.shard0.peak_rss_bytes"] > 0

    def test_renders_compose_from_live_snapshot(self, fleet):
        supervisor, _ = fleet
        snapshot = supervisor.fleet_snapshot()
        top = render_fleet_top(snapshot)
        assert "fleet: 2/2 shards up" in top
        assert "tenant-000" in top
        prom = render_prometheus(snapshot)
        assert 'repro_shard_up{shard="0"} 1' in prom
        assert 'repro_shard_up{shard="1"} 1' in prom
        assert "repro_svc_requests_total" in prom


class TestRestartVisibility:
    def test_kill_then_poll_shows_in_snapshot_and_map(self, tmp_path):
        with FleetSupervisor(str(tmp_path / "fleet"), 2,
                             window_s=0.001, snapshot_every=8,
                             max_restarts=5,
                             restart_backoff_s=0.02) as supervisor:
            supervisor.kill_shard(1)
            assert supervisor.poll() == [1]
            snapshot = supervisor.fleet_snapshot()
            assert snapshot["totals"]["restarts"] == 1
            assert snapshot["shards"][1]["restarts"] == 1
            assert snapshot["shards"][1]["alive"] is True

            # The external-observer path reads restarts from the
            # republished map, no supervisor handle needed.
            external = collect_fleet_metrics(supervisor.map_path)
            assert external["shards"][1]["restarts"] == 1

    def test_dead_shard_degrades_to_down_row(self, tmp_path):
        with FleetSupervisor(str(tmp_path / "fleet"), 2,
                             window_s=0.001, snapshot_every=8,
                             max_restarts=5) as supervisor:
            supervisor.kill_shard(0)
            snapshot = supervisor.fleet_snapshot()
            assert snapshot["totals"]["alive"] == 1
            assert snapshot["shards"][0]["alive"] is False
            assert snapshot["shards"][0]["error"]
            assert "DOWN" in render_fleet_top(snapshot)
