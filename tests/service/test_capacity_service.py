"""Predictive admission control at the service boundary.

The load-bearing pin lives here: enabling the capacity advisor -
advisory warnings or hard refusals - must change neither the wear
arrays nor the WAL bytes of an identical workload, because the advisor
runs entirely outside the batcher/hub commit path.
"""

import asyncio

import pytest

from repro.service.client import ServiceClient, tenant_population
from repro.service.server import ServiceConfig, WearService

pytestmark = pytest.mark.slow

TENANTS = 3


def _config(tmp_path, tag, **overrides) -> ServiceConfig:
    settings = {"ledger_dir": str(tmp_path / f"ledger-{tag}"),
                "window_s": 0.001}
    settings.update(overrides)
    return ServiceConfig(**settings)


def _drive(config, *, accesses=30, seed=17, alpha=4.0, beta=5.0,
           capacity_params=None) -> dict:
    """Provision a population, run a fixed round-robin access schedule.

    Returns the per-request responses, the closing wear observations,
    and the raw WAL bytes, so callers can compare two runs bit for bit.
    """
    async def scenario() -> dict:
        service = WearService(config)
        host, port = await service.start()
        try:
            client = await ServiceClient(host, port).connect()
            for index, payload in enumerate(
                    tenant_population(TENANTS, seed=seed,
                                      alpha=alpha, beta=beta)):
                if capacity_params and index in capacity_params:
                    payload = dict(payload,
                                   capacity=capacity_params[index])
                provisioned = await client.provision(**payload)
                assert provisioned["status"] == "ok"
            responses = []
            for index in range(accesses):
                responses.append(
                    await client.access(f"tenant-{index % TENANTS:03d}"))
            observations = service.hub.wear_observations()
            await client.close()
            return {"responses": responses, "observations": observations}
        finally:
            await service.shutdown()

    result = asyncio.run(scenario())
    with open(f"{config.ledger_dir}/wal.jsonl", "rb") as handle:
        result["wal"] = handle.read()
    return result


class TestAdvisoryMode:
    def test_wal_and_wear_bit_identical_to_disabled_run(self, tmp_path):
        baseline = _drive(_config(tmp_path, "off"))
        advised = _drive(_config(
            tmp_path, "on", capacity_horizon=10_000, capacity_warn=0.5,
            capacity_refuse=0.0, capacity_refresh=4))

        # The advisor actually ran: at least one granted access carried
        # a renewal warning (and the baseline, of course, carried none).
        warnings = [r["renewal_warning"] for r in advised["responses"]
                    if "renewal_warning" in r]
        assert warnings, "advisor never warned; the comparison is vacuous"
        assert all("renewal_warning" not in r
                   for r in baseline["responses"])
        for warning in warnings:
            assert 0.0 < warning["p_exhaust"] <= 1.0
            assert warning["horizon"] == 10_000

        # The pin: identical wear arrays, identical WAL bytes.
        assert advised["observations"] == baseline["observations"]
        assert advised["wal"] == baseline["wal"]

        # And apart from the annotation, the grants themselves agree.
        for ours, theirs in zip(advised["responses"],
                                baseline["responses"]):
            ours = {k: v for k, v in ours.items()
                    if k != "renewal_warning"}
            assert ours == theirs


class TestRefusals:
    def _refusing_config(self, tmp_path):
        return _config(tmp_path, "refuse", capacity_horizon=10_000,
                       capacity_warn=0.9, capacity_refuse=0.5,
                       capacity_refresh=2)

    def test_refusal_is_typed_and_spends_no_wear(self, tmp_path):
        async def scenario() -> None:
            service = WearService(self._refusing_config(tmp_path))
            host, port = await service.start()
            try:
                client = await ServiceClient(host, port).connect()
                for payload in tenant_population(TENANTS, seed=17,
                                                 alpha=4.0, beta=5.0):
                    await client.provision(**payload)
                refusal = None
                for index in range(60):
                    response = await client.access(
                        f"tenant-{index % TENANTS:03d}")
                    if response["status"] == "capacity":
                        refusal = response
                        break
                assert refusal is not None, "refusal bar never crossed"
                assert refusal["p_exhaust"] >= 0.5
                assert refusal["horizon"] == 10_000
                assert "renew" in refusal["message"]

                # Refused accesses are free: no WAL record, no wear.
                before_obs = service.hub.wear_observations()
                before_seq = service.ledger.next_seq
                for _ in range(3):
                    repeat = await client.access(refusal["tenant"])
                    assert repeat["status"] == "capacity"
                assert service.hub.wear_observations() == before_obs
                assert service.ledger.next_seq == before_seq
                await client.close()
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_tenant_can_opt_out_via_provision_params(self, tmp_path):
        config = _config(tmp_path, "optout", capacity_horizon=10_000,
                         capacity_warn=0.9, capacity_refuse=0.5,
                         capacity_refresh=2)
        opted_out = {0: {"refuse_probability": 0.0}}
        result = _drive(config, accesses=60, capacity_params=opted_out)
        by_tenant: dict[str, set] = {}
        for index, response in enumerate(result["responses"]):
            name = f"tenant-{index % TENANTS:03d}"
            by_tenant.setdefault(name, set()).add(response["status"])
        assert "capacity" not in by_tenant["tenant-000"]
        others = by_tenant["tenant-001"] | by_tenant["tenant-002"]
        assert "capacity" in others, "default policy never refused"


class TestProvisionValidation:
    def test_malformed_capacity_params_are_bad_requests(self, tmp_path):
        async def scenario() -> None:
            service = WearService(_config(tmp_path, "validate"))
            host, port = await service.start()
            try:
                client = await ServiceClient(host, port).connect()
                payload = tenant_population(1, seed=3)[0]
                for bad in ({"horizon": -1}, {"warn_probability": 2.0},
                            {"huh": 1}, "not a dict"):
                    response = await client.provision(
                        **dict(payload, capacity=bad))
                    assert response["status"] == "bad-request"
                # The tenant never entered the hub, so a well-formed
                # retry under the same name still succeeds.
                good = await client.provision(
                    **dict(payload, capacity={"horizon": 5}))
                assert good["status"] == "ok"
                await client.close()
            finally:
                await service.shutdown()

        asyncio.run(scenario())


class TestMetricsOp:
    def test_capacity_section_present_when_enabled(self, tmp_path):
        async def scenario() -> dict:
            service = WearService(_config(
                tmp_path, "metrics", capacity_horizon=10_000,
                capacity_warn=0.5, capacity_refresh=2))
            host, port = await service.start()
            try:
                client = await ServiceClient(host, port).connect()
                for payload in tenant_population(TENANTS, seed=17,
                                                 alpha=4.0, beta=5.0):
                    await client.provision(**payload)
                for index in range(18):
                    await client.access(f"tenant-{index % TENANTS:03d}")
                snapshot = await client.metrics()
                await client.close()
                return snapshot
            finally:
                await service.shutdown()

        snapshot = asyncio.run(scenario())
        capacity = snapshot["capacity"]
        assert capacity["refreshes"] >= 1
        assert capacity["estimate"] is not None
        assert capacity["estimate"]["alpha"] > 0
        assert set(capacity["forecasts"]) == {
            f"tenant-{i:03d}" for i in range(TENANTS)}

    def test_capacity_section_null_when_disabled(self, tmp_path):
        async def scenario() -> dict:
            service = WearService(_config(tmp_path, "plain"))
            host, port = await service.start()
            try:
                client = await ServiceClient(host, port).connect()
                snapshot = await client.metrics()
                await client.close()
                return snapshot
            finally:
                await service.shutdown()

        assert asyncio.run(scenario())["capacity"] is None
