"""Tests for sizing-uncertainty propagation."""

import numpy as np
import pytest

from repro.core.degradation import DegradationCriteria, PAPER_CRITERIA
from repro.core.uncertainty import design_size_uncertainty
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError

TRUE = WeibullDistribution(alpha=14.0, beta=8.0)
STRICT = DegradationCriteria(r_min=0.999, p_fail=0.002)


class TestDesignSizeUncertainty:
    def test_percentiles_ordered_and_feasible(self, rng):
        data = TRUE.sample(size=5_000, rng=rng)
        result = design_size_uncertainty(data, 2_000, 0.10, rng,
                                         criteria=PAPER_CRITERIA,
                                         n_boot=30)
        assert result.devices_p05 <= result.devices_p50 \
            <= result.devices_p95
        assert result.cost_uncertainty_ratio < 1.5
        assert result.infeasible_fraction == 0.0

    def test_small_sample_widens_cost_band(self):
        rng = np.random.default_rng(5)
        small = TRUE.sample(size=60, rng=rng)
        large = TRUE.sample(size=5_000, rng=rng)
        r_small = design_size_uncertainty(small, 2_000, 0.10,
                                          np.random.default_rng(6),
                                          criteria=PAPER_CRITERIA,
                                          n_boot=30)
        r_large = design_size_uncertainty(large, 2_000, 0.10,
                                          np.random.default_rng(6),
                                          criteria=PAPER_CRITERIA,
                                          n_boot=30)
        assert (r_small.cost_uncertainty_ratio
                > r_large.cost_uncertainty_ratio)

    def test_minimal_design_risky_derated_design_safe(self):
        """The derating story in one assertion pair: sized-at-the-edge
        designs carry real violation risk under sampling noise; sizing
        strict and certifying loose removes it."""
        rng = np.random.default_rng(7)
        data = TRUE.sample(size=5_000, rng=rng)
        minimal = design_size_uncertainty(
            data, 2_000, 0.10, np.random.default_rng(8),
            criteria=PAPER_CRITERIA, n_boot=40)
        derated = design_size_uncertainty(
            data, 2_000, 0.10, np.random.default_rng(8),
            criteria=STRICT, certify_criteria=PAPER_CRITERIA, n_boot=40)
        assert minimal.criteria_violation_risk > 0.1
        assert derated.criteria_violation_risk < 0.05

    def test_point_devices_reported(self, rng):
        data = TRUE.sample(size=1_000, rng=rng)
        result = design_size_uncertainty(data, 2_000, 0.10, rng,
                                         criteria=PAPER_CRITERIA,
                                         n_boot=20)
        assert result.point_devices > 0

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            design_size_uncertainty([1.0] * 10, 1_000, 0.10, rng)
        data = TRUE.sample(size=100, rng=rng)
        with pytest.raises(ConfigurationError):
            design_size_uncertainty(data, 1_000, 0.10, rng, n_boot=5)
