"""Tests for alternative lifetime models and model selection."""

import numpy as np
import pytest

from repro.core.models import (
    GammaLifetime,
    LognormalLifetime,
    fit_lifetime_model,
    select_lifetime_model,
)
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError


class TestLognormal:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LognormalLifetime(mu=0.0, sigma=0.0)

    def test_reliability_complements_cdf(self):
        model = LognormalLifetime(mu=2.0, sigma=0.5)
        x = np.linspace(0.5, 30, 20)
        np.testing.assert_allclose(model.reliability(x),
                                   1 - model._dist.cdf(x))

    def test_quantile_inverts(self):
        model = LognormalLifetime(mu=2.0, sigma=0.5)
        assert model.reliability(model.quantile(0.3)) == pytest.approx(0.7)

    def test_sampling_matches_moments(self, rng):
        model = LognormalLifetime(mu=2.0, sigma=0.3)
        samples = model.sample(size=100_000, rng=rng)
        assert samples.mean() == pytest.approx(model.mean, rel=0.02)

    def test_weibull_equivalent_matches_quantiles(self):
        model = LognormalLifetime(mu=2.0, sigma=0.4)
        weib = model.weibull_equivalent()
        for q in (0.1, 0.9):
            assert weib.quantile(q) == pytest.approx(model.quantile(q),
                                                     rel=1e-6)


class TestGamma:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GammaLifetime(k=0.0, theta=1.0)

    def test_mean(self):
        assert GammaLifetime(k=3.0, theta=2.0).mean == pytest.approx(6.0)

    def test_sampling(self, rng):
        model = GammaLifetime(k=5.0, theta=2.0)
        samples = model.sample(size=50_000, rng=rng)
        assert samples.mean() == pytest.approx(10.0, rel=0.03)

    def test_weibull_equivalent(self):
        model = GammaLifetime(k=8.0, theta=1.5)
        weib = model.weibull_equivalent()
        assert weib.quantile(0.1) == pytest.approx(model.quantile(0.1),
                                                   rel=1e-6)


class TestFitting:
    def test_fit_each_family(self, rng):
        data = WeibullDistribution(10.0, 4.0).sample(size=3000, rng=rng)
        assert fit_lifetime_model(data, "weibull").alpha == pytest.approx(
            10.0, rel=0.05)
        lognorm = fit_lifetime_model(data, "lognormal")
        assert lognorm.mean == pytest.approx(data.mean(), rel=0.05)
        gamma = fit_lifetime_model(data, "gamma")
        assert gamma.mean == pytest.approx(data.mean(), rel=0.05)

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            fit_lifetime_model([1, 2, 3], "cauchy")

    def test_data_validation(self):
        with pytest.raises(ConfigurationError):
            fit_lifetime_model([1.0, -1.0, 2.0], "weibull")
        with pytest.raises(ConfigurationError):
            fit_lifetime_model([1.0], "gamma")


class TestSelection:
    def test_weibull_data_selects_weibull(self, rng):
        data = WeibullDistribution(10.0, 8.0).sample(size=6000, rng=rng)
        fits = select_lifetime_model(data)
        assert fits[0].family == "weibull"

    def test_lognormal_data_selects_lognormal(self, rng):
        data = LognormalLifetime(mu=2.0, sigma=0.9).sample(size=6000,
                                                           rng=rng)
        fits = select_lifetime_model(data)
        assert fits[0].family == "lognormal"

    def test_fits_sorted_by_aic(self, rng):
        data = WeibullDistribution(10.0, 4.0).sample(size=500, rng=rng)
        fits = select_lifetime_model(data)
        aics = [f.aic for f in fits]
        assert aics == sorted(aics)
        assert {f.family for f in fits} == {"weibull", "lognormal", "gamma"}

    def test_bic_penalizes_like_aic_for_equal_params(self, rng):
        data = WeibullDistribution(10.0, 4.0).sample(size=500, rng=rng)
        fits = select_lifetime_model(data)
        # All families have 2 parameters: AIC and BIC orderings agree.
        by_aic = [f.family for f in fits]
        by_bic = [f.family for f in sorted(fits, key=lambda f: f.bic)]
        assert by_aic == by_bic
