"""Tests for the operating-environment (temperature) model."""

import numpy as np
import pytest

from repro.core.environment import (
    ROOM_TEMPERATURE_C,
    SiCTemperatureModel,
    apply_environment,
    environmental_attack_gain,
)
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError

DEVICE = WeibullDistribution(alpha=20.0, beta=8.0)


class TestLifetimeFactor:
    def test_room_temperature_is_unity(self):
        assert SiCTemperatureModel().lifetime_factor(25.0) == 1.0

    def test_hot_calibration_point(self):
        model = SiCTemperatureModel()
        assert model.lifetime_factor(500.0) == pytest.approx(2.0 / 21.0)

    def test_monotone_decreasing_above_room(self):
        model = SiCTemperatureModel()
        temps = np.linspace(25, 700, 30)
        factors = [model.lifetime_factor(t) for t in temps]
        assert all(a >= b for a, b in zip(factors, factors[1:]))

    def test_cold_never_extends(self):
        model = SiCTemperatureModel()
        for t in (-200, -40, 0, 24):
            assert model.lifetime_factor(t) <= 1.0

    def test_factor_never_exceeds_one(self):
        model = SiCTemperatureModel()
        for t in np.linspace(-250, 1000, 50):
            assert model.lifetime_factor(float(t)) <= 1.0

    def test_implausible_temperature_rejected(self):
        with pytest.raises(ConfigurationError):
            SiCTemperatureModel().lifetime_factor(-300.0)

    @pytest.mark.parametrize("kwargs", [
        {"hot_temperature_c": 20.0},
        {"hot_factor": 0.0},
        {"hot_factor": 1.5},
        {"cold_factor": 1.2},
    ])
    def test_invalid_calibration(self, kwargs):
        with pytest.raises(ConfigurationError):
            SiCTemperatureModel(**kwargs)


class TestApplyEnvironment:
    def test_room_temperature_identity(self):
        scaled = apply_environment(DEVICE, ROOM_TEMPERATURE_C)
        assert scaled.alpha == DEVICE.alpha

    def test_heat_shrinks_alpha_keeps_beta(self):
        scaled = apply_environment(DEVICE, 400.0)
        assert scaled.alpha < DEVICE.alpha
        assert scaled.beta == DEVICE.beta

    def test_security_invariant_heat_only_hurts_attacker(self):
        """Baking the chip can only destroy it faster - the secret's
        confidentiality bound cannot be extended."""
        hot = apply_environment(DEVICE, 500.0)
        assert hot.mean < DEVICE.mean


class TestAttackGain:
    def test_no_temperature_gains_budget(self):
        result = environmental_attack_gain(DEVICE)
        assert result["max_factor"] <= 1.0
        assert result["best_attacker_mean"] <= result[
            "room_temperature_mean"]

    def test_best_strategy_is_room_temperature(self):
        result = environmental_attack_gain(DEVICE)
        assert result["best_temperature_c"] <= ROOM_TEMPERATURE_C + 15
