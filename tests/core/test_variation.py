"""Tests for process-variation models."""

import numpy as np
import pytest

from repro.core.fitting import fit_mle
from repro.core.variation import (
    LognormalVariation,
    NoVariation,
    SLACK_ELASTICITY,
    SLACK_GEOMETRIC,
    SLACK_RESISTANCE,
    effective_population_beta,
)
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError

NOMINAL = WeibullDistribution(alpha=10.0, beta=8.0)


class TestNoVariation:
    def test_perturb_returns_nominal(self, rng):
        models = NoVariation().perturb(NOMINAL, 5, rng)
        assert all(m == NOMINAL for m in models)

    def test_sample_lifetimes_matches_distribution(self, rng):
        lifetimes = NoVariation().sample_lifetimes(NOMINAL, 50_000, rng)
        fitted = fit_mle(lifetimes)
        assert fitted.alpha == pytest.approx(10.0, rel=0.03)
        assert fitted.beta == pytest.approx(8.0, rel=0.08)

    def test_sample_lifetimes_shape(self, rng):
        assert NoVariation().sample_lifetimes(NOMINAL, 7, rng).shape == (7,)


class TestLognormalVariation:
    def test_rejects_negative_sigmas(self):
        with pytest.raises(ConfigurationError):
            LognormalVariation(sigma_alpha=-0.1)
        with pytest.raises(ConfigurationError):
            LognormalVariation(sigma_beta=-0.1)

    def test_zero_sigma_is_no_variation(self, rng):
        models = LognormalVariation(0.0, 0.0).perturb(NOMINAL, 4, rng)
        assert all(m.alpha == NOMINAL.alpha and m.beta == NOMINAL.beta
                   for m in models)

    def test_jitter_preserves_median_parameters(self, rng):
        variation = LognormalVariation(sigma_alpha=0.2, sigma_beta=0.1)
        models = variation.perturb(NOMINAL, 20_000, rng)
        alphas = np.array([m.alpha for m in models])
        betas = np.array([m.beta for m in models])
        assert np.median(alphas) == pytest.approx(10.0, rel=0.02)
        assert np.median(betas) == pytest.approx(8.0, rel=0.02)

    def test_variation_widens_lifetime_spread(self, rng):
        plain = NoVariation().sample_lifetimes(NOMINAL, 30_000, rng)
        varied = LognormalVariation(sigma_alpha=0.3).sample_lifetimes(
            NOMINAL, 30_000, rng)
        assert varied.std() > plain.std() * 1.3

    def test_variation_lowers_population_beta(self):
        """The paper's claim: process variation shows up as lower beta."""
        eff = effective_population_beta(
            NOMINAL, LognormalVariation(sigma_alpha=0.15), n_devices=8_000)
        assert eff < 8.0 * 0.8

    def test_no_variation_keeps_population_beta(self):
        eff = effective_population_beta(NOMINAL, NoVariation(),
                                        n_devices=8_000)
        assert eff == pytest.approx(8.0, rel=0.1)


class TestSlackReferencePoints:
    def test_values_from_paper(self):
        assert SLACK_GEOMETRIC.alpha == pytest.approx(2.6e6)
        assert SLACK_GEOMETRIC.beta == pytest.approx(12.94)
        assert SLACK_ELASTICITY.beta == pytest.approx(7.2)
        assert SLACK_RESISTANCE.beta == pytest.approx(8.58)

    def test_geometric_variation_is_tightest(self):
        # More variation sources -> lower beta -> wider relative window.
        rel = [m.degradation_window() / m.alpha
               for m in (SLACK_GEOMETRIC, SLACK_ELASTICITY)]
        assert rel[0] < rel[1]
