"""Tests for lot acceptance testing.

Acceptance needs an *engineered margin*: the design is sized against
stricter criteria than it is certified against (a cost-minimal design
has zero slack against its own criteria by construction).
"""

import pytest

from repro.core.acceptance import bootstrap_weibull_fit, evaluate_lot
from repro.core.degradation import (
    DegradationCriteria,
    PAPER_CRITERIA,
    solve_encoded_fractional,
)
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError

DEVICE = WeibullDistribution(alpha=14.0, beta=8.0)
SIZING_CRITERIA = DegradationCriteria(r_min=0.999, p_fail=0.002)


@pytest.fixture(scope="module")
def design():
    return solve_encoded_fractional(DEVICE, 1_000, 0.10, SIZING_CRITERIA)


def decide(data, design, rng, n_boot=60):
    return evaluate_lot(data, design, rng, n_boot=n_boot,
                        certify_criteria=PAPER_CRITERIA)


class TestBootstrap:
    def test_intervals_cover_truth(self, rng):
        data = DEVICE.sample(size=2_000, rng=rng)
        alpha_ci, beta_ci = bootstrap_weibull_fit(data, 100, rng)
        assert alpha_ci[0] < 14.0 < alpha_ci[1]
        assert beta_ci[0] < 8.0 < beta_ci[1]

    def test_intervals_shrink_with_sample_size(self, rng):
        small = DEVICE.sample(size=100, rng=rng)
        large = DEVICE.sample(size=5_000, rng=rng)
        a_small, _ = bootstrap_weibull_fit(small, 80, rng)
        a_large, _ = bootstrap_weibull_fit(large, 80, rng)
        assert (a_large[1] - a_large[0]) < (a_small[1] - a_small[0])

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            bootstrap_weibull_fit([1.0] * 5, 100, rng)
        data = DEVICE.sample(size=50, rng=rng)
        with pytest.raises(ConfigurationError):
            bootstrap_weibull_fit(data, 5, rng)
        with pytest.raises(ConfigurationError):
            bootstrap_weibull_fit(data, 100, rng, confidence=0.4)


class TestEvaluateLot:
    def test_on_spec_lot_accepted(self, design, rng):
        data = DEVICE.sample(size=5_000, rng=rng)
        decision = decide(data, design, rng)
        assert decision.accepted
        assert decision.reasons == ()
        assert decision.fitted_alpha == pytest.approx(14.0, rel=0.05)

    def test_short_lived_lot_rejected(self, design, rng):
        bad = WeibullDistribution(alpha=9.0, beta=8.0)  # 35% short
        data = bad.sample(size=3_000, rng=rng)
        decision = decide(data, design, rng)
        assert not decision.accepted
        assert any("owner lockout" in r for r in decision.reasons)

    def test_long_lived_lot_rejected_for_security(self, design, rng):
        """Over-built devices are a SECURITY defect here: they outlive
        the ceiling and hand the attacker extra accesses."""
        bad = WeibullDistribution(alpha=20.0, beta=8.0)
        data = bad.sample(size=3_000, rng=rng)
        decision = decide(data, design, rng)
        assert not decision.accepted
        assert any("attack ceiling" in r for r in decision.reasons)

    def test_sloppy_lot_rejected_on_beta(self, design, rng):
        bad = WeibullDistribution(alpha=14.0, beta=3.0)
        data = bad.sample(size=3_000, rng=rng)
        decision = decide(data, design, rng)
        assert not decision.accepted
        assert any("beta" in r for r in decision.reasons)

    def test_cost_minimal_design_has_no_margin(self, rng):
        """Against its own criteria the margin collapses - the library
        surfaces this instead of silently accepting risky lots."""
        minimal = solve_encoded_fractional(DEVICE, 1_000, 0.10,
                                           PAPER_CRITERIA)
        data = DEVICE.sample(size=3_000, rng=rng)
        decision = evaluate_lot(data, minimal, rng, n_boot=60)
        # With zero engineered slack, even an on-spec lot's sampling
        # uncertainty pokes outside the margins.
        assert not decision.accepted
