"""Tests for the degradation-window solver - the paper's core machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degradation import (
    DEFAULT_CRITERIA,
    DegradationCriteria,
    PAPER_CRITERIA,
    max_reliable_accesses,
    solve_encoded,
    solve_encoded_fractional,
    solve_structure,
    solve_unencoded,
    solve_unencoded_fractional,
    solve_with_upper_bound,
)
from repro.core.structures import k_of_n_reliability
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError, InfeasibleDesignError

DEVICE = WeibullDistribution(alpha=14.0, beta=8.0)
LAB = 91_250


class TestCriteria:
    def test_defaults_match_paper_text(self):
        assert DEFAULT_CRITERIA.r_min == 0.99
        assert DEFAULT_CRITERIA.p_fail == 0.01

    def test_paper_criteria_match_fig3b_working_point(self):
        assert PAPER_CRITERIA.r_min == 0.98
        assert PAPER_CRITERIA.p_fail == 0.022

    @pytest.mark.parametrize("r_min,p_fail", [
        (0.5, 0.6), (1.0, 0.01), (0.99, 0.0), (0.99, 0.99),
    ])
    def test_invalid_criteria_rejected(self, r_min, p_fail):
        with pytest.raises(ConfigurationError):
            DegradationCriteria(r_min=r_min, p_fail=p_fail)


class TestMaxReliableAccesses:
    def test_fig3b_reference_bank(self):
        """The paper's n=40 bank at alpha=9.3, beta=12 serves 10 accesses:
        its quoted working point is 97.9% at the 10th access and 2.2% at
        the 11th, so criteria at those exact levels accept it."""
        device = WeibullDistribution(alpha=9.3, beta=12.0)
        criteria = DegradationCriteria(r_min=0.978, p_fail=0.022)
        assert max_reliable_accesses(device, 40, 1, criteria) == 10

    def test_none_when_never_reliable(self):
        device = WeibullDistribution(alpha=0.5, beta=8.0)
        assert max_reliable_accesses(device, 1, 1) is None

    def test_none_when_window_too_wide(self):
        # beta = 1 single device: reliability decays far too gradually.
        device = WeibullDistribution(alpha=100.0, beta=1.0)
        assert max_reliable_accesses(device, 1, 1) is None


class TestSolveUnencoded:
    def test_satisfies_its_own_criteria(self):
        point = solve_unencoded(DEVICE, LAB, PAPER_CRITERIA)
        r_t = point.structure_reliability(point.t)
        r_next = point.structure_reliability(point.t + 1)
        assert r_t >= PAPER_CRITERIA.r_min
        assert r_next <= PAPER_CRITERIA.p_fail

    def test_covers_the_access_bound(self):
        point = solve_unencoded(DEVICE, LAB, PAPER_CRITERIA)
        assert point.guaranteed_accesses >= LAB
        assert point.k == 1

    def test_paper_scale_anchor(self):
        """alpha=14, beta=8 without encoding needs billions of switches
        (paper quotes ~4e9; exact joint constraints give the same order)."""
        point = solve_unencoded(DEVICE, LAB, PAPER_CRITERIA)
        assert point.total_devices > 1e8

    def test_rejects_bad_bound(self):
        with pytest.raises(ConfigurationError):
            solve_unencoded(DEVICE, 0)

    def test_infeasible_raises(self):
        # Huge variation (beta tiny): no 1-of-n bank has a 1-access window.
        device = WeibullDistribution(alpha=10.0, beta=0.5)
        with pytest.raises(InfeasibleDesignError):
            solve_unencoded(device, 100)


class TestSolveEncoded:
    def test_satisfies_its_own_criteria(self):
        point = solve_encoded(DEVICE, LAB, 0.10, PAPER_CRITERIA)
        assert point.structure_reliability(point.t) >= PAPER_CRITERIA.r_min
        assert (point.structure_reliability(point.t + 1)
                <= PAPER_CRITERIA.p_fail)

    def test_paper_fig4b_anchor(self):
        """beta=8, k=10%: the paper quotes 675,250 switches; the exact
        integer-window solver lands within 1%."""
        point = solve_encoded(DEVICE, LAB, 0.10, PAPER_CRITERIA)
        assert point.total_devices == pytest.approx(675_250, rel=0.01)

    def test_expected_upper_bound_near_paper(self):
        """Paper: empirical upper bound 91,326 at p=1%-ish criteria."""
        point = solve_encoded(DEVICE, LAB, 0.10, PAPER_CRITERIA)
        assert point.expected_access_bound() == pytest.approx(91_326,
                                                              rel=0.005)

    def test_k_matches_fraction(self):
        point = solve_encoded(DEVICE, LAB, 0.10, PAPER_CRITERIA)
        assert point.k == -(-point.n // 10)  # ceil(0.1 n)

    def test_orders_of_magnitude_below_unencoded(self):
        plain = solve_unencoded(DEVICE, LAB, PAPER_CRITERIA)
        encoded = solve_encoded(DEVICE, LAB, 0.10, PAPER_CRITERIA)
        assert plain.total_devices / encoded.total_devices > 1e3

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            solve_encoded(DEVICE, LAB, 0.0)
        with pytest.raises(ConfigurationError):
            solve_encoded(DEVICE, LAB, 1.5)


class TestFractionalSolvers:
    def test_feasible_at_resonant_alpha(self):
        """alpha=18, beta=8, k=10% resonates under the integer window
        (hundreds of millions of devices); the fractional window fixes it."""
        device = WeibullDistribution(alpha=18.0, beta=8.0)
        strict = solve_encoded(device, LAB, 0.10, PAPER_CRITERIA)
        relaxed = solve_encoded_fractional(device, LAB, 0.10, PAPER_CRITERIA)
        assert relaxed.total_devices < strict.total_devices / 50

    def test_window_semantics(self):
        point = solve_encoded_fractional(DEVICE, LAB, 0.10, PAPER_CRITERIA)
        s = point.window_start
        assert s is not None
        assert point.t == int(s)
        assert point.structure_reliability(s) >= PAPER_CRITERIA.r_min - 1e-6
        assert (point.structure_reliability(s + 1.0)
                <= PAPER_CRITERIA.p_fail + 1e-6)

    def test_linear_scaling_in_alpha(self):
        """The headline claim: encoding turns exponential scaling into
        roughly linear scaling with the wearout bound."""
        totals = []
        for alpha in (10, 14, 20):
            device = WeibullDistribution(alpha=alpha, beta=8.0)
            totals.append(solve_encoded_fractional(
                device, LAB, 0.10, PAPER_CRITERIA).total_devices)
        # Doubling alpha should cost ~2x devices (allow slack), never 10x.
        assert totals[2] / totals[0] < 4.0
        assert totals[0] < totals[1] < totals[2]

    def test_exponential_scaling_without_encoding(self):
        totals = []
        for alpha in (10, 14, 18):
            device = WeibullDistribution(alpha=alpha, beta=8.0)
            totals.append(solve_unencoded_fractional(
                device, LAB, PAPER_CRITERIA).total_devices)
        assert totals[2] / totals[0] > 50.0

    def test_unencoded_fractional_covers_bound(self):
        point = solve_unencoded_fractional(DEVICE, LAB, PAPER_CRITERIA)
        assert point.guaranteed_accesses >= LAB

    @given(alpha=st.floats(8.0, 25.0), beta=st.sampled_from([4, 8, 12, 16]),
           k_fraction=st.sampled_from([0.1, 0.2, 0.3]))
    @settings(max_examples=25, deadline=None)
    def test_fractional_always_feasible_and_valid(self, alpha, beta,
                                                  k_fraction):
        """Feasibility across the whole explored space, with the returned
        design actually meeting its constraints."""
        device = WeibullDistribution(alpha=alpha, beta=beta)
        point = solve_encoded_fractional(device, 5_000, k_fraction,
                                         PAPER_CRITERIA)
        assert point.guaranteed_accesses >= 5_000
        rel = k_of_n_reliability(
            device.reliability(point.window_start), point.n, point.k)
        assert rel >= PAPER_CRITERIA.r_min - 1e-6


class TestSolveWithUpperBound:
    def test_wider_ceiling_is_cheaper(self):
        tight = solve_encoded_fractional(DEVICE, LAB, 0.10, PAPER_CRITERIA)
        loose = solve_with_upper_bound(DEVICE, LAB, 200_000, 0.10,
                                       PAPER_CRITERIA)
        assert loose.total_devices < tight.total_devices / 2

    def test_monotone_in_upper_bound(self):
        t100 = solve_with_upper_bound(DEVICE, LAB, 100_000, 0.10,
                                      PAPER_CRITERIA)
        t200 = solve_with_upper_bound(DEVICE, LAB, 200_000, 0.10,
                                      PAPER_CRITERIA)
        assert t200.total_devices <= t100.total_devices

    def test_system_ceiling_respected(self):
        point = solve_with_upper_bound(DEVICE, LAB, 100_000, 0.10,
                                       PAPER_CRITERIA)
        # Per copy: almost surely dead by t * UB / LAB accesses.
        ceiling = point.t * 100_000 / LAB
        assert (point.structure_reliability(ceiling)
                <= PAPER_CRITERIA.p_fail + 1e-6)
        assert point.copies * ceiling <= 100_000 * 1.02

    def test_rejects_non_relaxing_bound(self):
        with pytest.raises(ConfigurationError):
            solve_with_upper_bound(DEVICE, LAB, LAB, 0.10)


class TestSolveStructureDispatch:
    def test_dispatches_unencoded(self):
        point = solve_structure(DEVICE, 1000, criteria=PAPER_CRITERIA)
        assert point.k == 1

    def test_dispatches_encoded(self):
        point = solve_structure(DEVICE, 1000, k_fraction=0.2,
                                criteria=PAPER_CRITERIA)
        assert point.k > 1

    def test_dispatches_fractional(self):
        point = solve_structure(DEVICE, 1000, k_fraction=0.2,
                                criteria=PAPER_CRITERIA, window="fractional")
        assert point.window_start is not None

    def test_rejects_unknown_window(self):
        with pytest.raises(ConfigurationError):
            solve_structure(DEVICE, 1000, window="bogus")


class TestDesignPoint:
    def test_total_devices(self):
        point = solve_encoded_fractional(DEVICE, 1000, 0.10, PAPER_CRITERIA)
        assert point.total_devices == point.n * point.copies

    def test_copies_cover_bound(self):
        point = solve_encoded_fractional(DEVICE, 1000, 0.10, PAPER_CRITERIA)
        assert point.copies == -(-1000 // point.t)

    def test_expected_bound_at_least_guaranteed(self):
        point = solve_encoded_fractional(DEVICE, 1000, 0.10, PAPER_CRITERIA)
        assert point.expected_access_bound() >= point.guaranteed_accesses

    def test_coverage_probability_matches_simulation(self, rng):
        from repro.sim.montecarlo import simulate_access_bounds

        point = solve_encoded_fractional(DEVICE, 1000, 0.10, PAPER_CRITERIA)
        predicted = point.coverage_probability()
        bounds = simulate_access_bounds(point, 1500, rng)
        empirical = float((bounds >= point.access_bound).mean())
        assert empirical == pytest.approx(predicted, abs=0.05)

    def test_coverage_monotone_in_target(self):
        point = solve_encoded_fractional(DEVICE, 1000, 0.10, PAPER_CRITERIA)
        low = point.coverage_probability(target=point.access_bound - 50)
        high = point.coverage_probability(target=point.access_bound + 50)
        assert low >= point.coverage_probability() >= high
        assert point.coverage_probability(target=1) == pytest.approx(1.0)
