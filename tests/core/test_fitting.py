"""Tests for Weibull parameter estimation."""

import numpy as np
import pytest

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.fitting import (
    fit_bootstrap,
    fit_censored_mle,
    fit_median_rank,
    fit_mle,
)
from repro.core.weibull import WeibullDistribution
from repro.errors import AllCensoredError, ConfigurationError
from repro.sim.rng import make_rng


@pytest.mark.parametrize("fit", [fit_mle, fit_median_rank])
class TestRecovery:
    @pytest.mark.parametrize("alpha,beta", [
        (10.0, 8.0), (2.6e6, 12.94), (100.0, 1.0), (20.0, 4.0),
    ])
    def test_recovers_true_parameters(self, fit, alpha, beta, rng):
        true = WeibullDistribution(alpha=alpha, beta=beta)
        data = true.sample(size=20_000, rng=rng)
        fitted = fit(data)
        assert fitted.alpha == pytest.approx(alpha, rel=0.05)
        assert fitted.beta == pytest.approx(beta, rel=0.08)

    def test_rejects_tiny_samples(self, fit):
        with pytest.raises(ConfigurationError):
            fit([1.0])

    def test_rejects_nonpositive_lifetimes(self, fit):
        with pytest.raises(ConfigurationError):
            fit([1.0, -2.0, 3.0])
        with pytest.raises(ConfigurationError):
            fit([1.0, 0.0])

    def test_rejects_nonfinite(self, fit):
        with pytest.raises(ConfigurationError):
            fit([1.0, float("nan")])

    def test_degenerate_sample_yields_sharp_fit(self, fit):
        fitted = fit([5.0] * 10)
        assert fitted.alpha == pytest.approx(5.0)
        assert fitted.beta >= 100


class TestEstimatorQuality:
    def test_mle_beats_rank_regression_on_small_samples(self, rng):
        """MLE should be at least comparable in shape accuracy."""
        true = WeibullDistribution(alpha=10.0, beta=8.0)
        errors_mle, errors_rank = [], []
        for _ in range(30):
            data = true.sample(size=100, rng=rng)
            errors_mle.append(abs(fit_mle(data).beta - 8.0))
            errors_rank.append(abs(fit_median_rank(data).beta - 8.0))
        assert np.median(errors_mle) <= np.median(errors_rank) * 1.5

    def test_fit_accepts_arrays_and_lists(self, rng):
        true = WeibullDistribution(alpha=10.0, beta=3.0)
        data = true.sample(size=500, rng=rng)
        assert fit_mle(list(data)).alpha == pytest.approx(
            fit_mle(data).alpha)

    def test_fit_is_scale_equivariant(self, rng):
        data = WeibullDistribution(7.0, 5.0).sample(size=5000, rng=rng)
        base = fit_mle(data)
        scaled = fit_mle(data * 100.0)
        assert scaled.alpha == pytest.approx(base.alpha * 100.0, rel=1e-6)
        assert scaled.beta == pytest.approx(base.beta, rel=1e-6)


class TestBootstrap:
    def test_intervals_cover_truth(self, rng):
        true = WeibullDistribution(alpha=10.0, beta=8.0)
        data = true.sample(size=2000, rng=rng)
        boot = fit_bootstrap(data, resamples=100, rng=rng)
        assert boot.alpha_ci[0] < 10.0 < boot.alpha_ci[1]
        assert boot.beta_ci[0] < 8.0 < boot.beta_ci[1]
        assert boot.point.alpha == pytest.approx(10.0, rel=0.05)
        assert boot.alpha_ci[0] < boot.point.alpha < boot.alpha_ci[1]

    def test_deterministic_given_rng(self, rng):
        data = WeibullDistribution(10.0, 8.0).sample(size=300, rng=rng)
        first = fit_bootstrap(data, resamples=50, rng=make_rng(7))
        second = fit_bootstrap(data, resamples=50, rng=make_rng(7))
        assert first.alpha_ci == second.alpha_ci
        assert first.beta_ci == second.beta_ci

    def test_works_with_rank_estimator(self, rng):
        data = WeibullDistribution(10.0, 8.0).sample(size=500, rng=rng)
        boot = fit_bootstrap(data, resamples=40,
                             estimator=fit_median_rank, rng=rng)
        assert boot.alpha_ci[0] < boot.alpha_ci[1]
        assert boot.resamples == 40

    def test_validation(self, rng):
        data = WeibullDistribution(10.0, 8.0).sample(size=50, rng=rng)
        with pytest.raises(ConfigurationError):
            fit_bootstrap(data, resamples=1, rng=rng)
        with pytest.raises(ConfigurationError):
            fit_bootstrap(data, confidence=1.0, rng=rng)


class TestCensoredMLE:
    def _censor(self, data, cutoff):
        """Type-I censoring at ``cutoff``: survivors are still alive."""
        return np.minimum(data, cutoff), data <= cutoff

    def test_recovers_truth_under_heavy_censoring(self, rng):
        true = WeibullDistribution(alpha=10.0, beta=8.0)
        data = true.sample(size=5000, rng=rng)
        values, events = self._censor(data, np.quantile(data, 0.4))
        fitted = fit_censored_mle(values, events)
        assert fitted.alpha == pytest.approx(10.0, rel=0.05)
        assert fitted.beta == pytest.approx(8.0, rel=0.15)

    def test_reduces_to_fit_mle_when_all_observed(self, rng):
        data = WeibullDistribution(9.0, 5.0).sample(size=400, rng=rng)
        censored = fit_censored_mle(data, np.ones(data.size, dtype=bool))
        plain = fit_mle(data)
        assert censored.alpha == pytest.approx(plain.alpha, rel=1e-6)
        assert censored.beta == pytest.approx(plain.beta, rel=1e-6)

    def test_ignoring_censoring_biases_low(self, rng):
        # The reason the estimator exists: treating survivors as deaths
        # drags the scale down; the censored fit does not.
        true = WeibullDistribution(alpha=10.0, beta=8.0)
        data = true.sample(size=5000, rng=rng)
        values, events = self._censor(data, np.quantile(data, 0.5))
        naive = fit_mle(values)
        honest = fit_censored_mle(values, events)
        assert naive.alpha < honest.alpha
        assert abs(honest.alpha - 10.0) < abs(naive.alpha - 10.0)

    def test_all_censored_raises_typed_error(self):
        with pytest.raises(AllCensoredError):
            fit_censored_mle([3.0, 4.0, 5.0], [False, False, False])
        assert issubclass(AllCensoredError, ConfigurationError)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_censored_mle([1.0, 2.0], [True])


class TestCensoredBootstrap:
    def test_small_sample_intervals_are_sane(self, rng):
        # n < 10 with censoring present: exactly the regime a young
        # fleet hands the capacity estimator.
        true = WeibullDistribution(alpha=9.0, beta=5.0)
        data = true.sample(size=8, rng=rng)
        values = np.minimum(data, 9.0)
        events = data <= 9.0
        if not events.any():  # pragma: no cover - seeded rng avoids this
            events[np.argmin(values)] = True
        boot = fit_bootstrap(values, resamples=80, events=events,
                             rng=make_rng(6))
        assert boot.alpha_ci[0] < boot.alpha_ci[1]
        assert boot.alpha_ci[0] > 0
        assert len(boot.alpha_samples) == 80
        assert len(boot.beta_samples) == 80
        assert np.isfinite(boot.alpha_samples).all()

    def test_all_censored_raises_up_front(self):
        with pytest.raises(AllCensoredError):
            fit_bootstrap([2.0, 3.0, 4.0], resamples=20,
                          events=[False, False, False], rng=make_rng(0))

    def test_paired_resampling_is_deterministic(self, rng):
        data = WeibullDistribution(10.0, 6.0).sample(size=40, rng=rng)
        events = data <= np.quantile(data, 0.7)
        values = np.minimum(data, np.quantile(data, 0.7))
        first = fit_bootstrap(values, resamples=50, events=events,
                              rng=make_rng(9))
        second = fit_bootstrap(values, resamples=50, events=events,
                               rng=make_rng(9))
        assert first.alpha_ci == second.alpha_ci
        assert first.alpha_samples == second.alpha_samples


class TestCensoredProperties:
    @given(seed=st.integers(0, 2**31 - 1),
           alpha=st.floats(2.0, 50.0),
           beta=st.floats(1.0, 8.0),
           quantile=st.floats(0.3, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_fit_is_finite_positive_for_any_censoring(self, seed, alpha,
                                                      beta, quantile):
        data = WeibullDistribution(alpha, beta).sample(
            size=150, rng=make_rng(seed))
        cutoff = float(np.quantile(data, quantile))
        values = np.minimum(data, cutoff)
        events = data <= cutoff
        assume(events.any())
        fitted = fit_censored_mle(values, events)
        assert np.isfinite(fitted.alpha) and fitted.alpha > 0
        assert np.isfinite(fitted.beta) and fitted.beta > 0

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_all_observed_reduction_holds_everywhere(self, seed):
        data = WeibullDistribution(9.0, 5.0).sample(
            size=120, rng=make_rng(seed))
        censored = fit_censored_mle(data, np.ones(data.size, dtype=bool))
        plain = fit_mle(data)
        assert censored.alpha == pytest.approx(plain.alpha, rel=1e-6)
        assert censored.beta == pytest.approx(plain.beta, rel=1e-6)
