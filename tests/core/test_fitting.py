"""Tests for Weibull parameter estimation."""

import numpy as np
import pytest

from repro.core.fitting import (
    fit_bootstrap,
    fit_median_rank,
    fit_mle,
)
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.sim.rng import make_rng


@pytest.mark.parametrize("fit", [fit_mle, fit_median_rank])
class TestRecovery:
    @pytest.mark.parametrize("alpha,beta", [
        (10.0, 8.0), (2.6e6, 12.94), (100.0, 1.0), (20.0, 4.0),
    ])
    def test_recovers_true_parameters(self, fit, alpha, beta, rng):
        true = WeibullDistribution(alpha=alpha, beta=beta)
        data = true.sample(size=20_000, rng=rng)
        fitted = fit(data)
        assert fitted.alpha == pytest.approx(alpha, rel=0.05)
        assert fitted.beta == pytest.approx(beta, rel=0.08)

    def test_rejects_tiny_samples(self, fit):
        with pytest.raises(ConfigurationError):
            fit([1.0])

    def test_rejects_nonpositive_lifetimes(self, fit):
        with pytest.raises(ConfigurationError):
            fit([1.0, -2.0, 3.0])
        with pytest.raises(ConfigurationError):
            fit([1.0, 0.0])

    def test_rejects_nonfinite(self, fit):
        with pytest.raises(ConfigurationError):
            fit([1.0, float("nan")])

    def test_degenerate_sample_yields_sharp_fit(self, fit):
        fitted = fit([5.0] * 10)
        assert fitted.alpha == pytest.approx(5.0)
        assert fitted.beta >= 100


class TestEstimatorQuality:
    def test_mle_beats_rank_regression_on_small_samples(self, rng):
        """MLE should be at least comparable in shape accuracy."""
        true = WeibullDistribution(alpha=10.0, beta=8.0)
        errors_mle, errors_rank = [], []
        for _ in range(30):
            data = true.sample(size=100, rng=rng)
            errors_mle.append(abs(fit_mle(data).beta - 8.0))
            errors_rank.append(abs(fit_median_rank(data).beta - 8.0))
        assert np.median(errors_mle) <= np.median(errors_rank) * 1.5

    def test_fit_accepts_arrays_and_lists(self, rng):
        true = WeibullDistribution(alpha=10.0, beta=3.0)
        data = true.sample(size=500, rng=rng)
        assert fit_mle(list(data)).alpha == pytest.approx(
            fit_mle(data).alpha)

    def test_fit_is_scale_equivariant(self, rng):
        data = WeibullDistribution(7.0, 5.0).sample(size=5000, rng=rng)
        base = fit_mle(data)
        scaled = fit_mle(data * 100.0)
        assert scaled.alpha == pytest.approx(base.alpha * 100.0, rel=1e-6)
        assert scaled.beta == pytest.approx(base.beta, rel=1e-6)


class TestBootstrap:
    def test_intervals_cover_truth(self, rng):
        true = WeibullDistribution(alpha=10.0, beta=8.0)
        data = true.sample(size=2000, rng=rng)
        boot = fit_bootstrap(data, resamples=100, rng=rng)
        assert boot.alpha_ci[0] < 10.0 < boot.alpha_ci[1]
        assert boot.beta_ci[0] < 8.0 < boot.beta_ci[1]
        assert boot.point.alpha == pytest.approx(10.0, rel=0.05)
        assert boot.alpha_ci[0] < boot.point.alpha < boot.alpha_ci[1]

    def test_deterministic_given_rng(self, rng):
        data = WeibullDistribution(10.0, 8.0).sample(size=300, rng=rng)
        first = fit_bootstrap(data, resamples=50, rng=make_rng(7))
        second = fit_bootstrap(data, resamples=50, rng=make_rng(7))
        assert first.alpha_ci == second.alpha_ci
        assert first.beta_ci == second.beta_ci

    def test_works_with_rank_estimator(self, rng):
        data = WeibullDistribution(10.0, 8.0).sample(size=500, rng=rng)
        boot = fit_bootstrap(data, resamples=40,
                             estimator=fit_median_rank, rng=rng)
        assert boot.alpha_ci[0] < boot.alpha_ci[1]
        assert boot.resamples == 40

    def test_validation(self, rng):
        data = WeibullDistribution(10.0, 8.0).sample(size=50, rng=rng)
        with pytest.raises(ConfigurationError):
            fit_bootstrap(data, resamples=1, rng=rng)
        with pytest.raises(ConfigurationError):
            fit_bootstrap(data, confidence=1.0, rng=rng)
