"""Tests for the constrained design advisor."""

import pytest

from repro.core.advisor import (
    AdvisorConstraints,
    advise,
    pareto_frontier,
)
from repro.core.degradation import PAPER_CRITERIA
from repro.errors import ConfigurationError

BOUND = 5_000


class TestAdvise:
    def test_candidates_sorted_by_devices(self):
        candidates = advise(14, 8, BOUND, criteria=PAPER_CRITERIA)
        totals = [c.design.total_devices for c in candidates]
        assert totals == sorted(totals)
        assert len(candidates) >= 3

    def test_encoded_beats_unencoded(self):
        candidates = advise(14, 8, BOUND, criteria=PAPER_CRITERIA)
        best = candidates[0]
        assert best.k_fraction is not None
        unencoded = [c for c in candidates if c.k_fraction is None]
        if unencoded:  # unencoded may be feasible but never cheapest
            assert (unencoded[0].design.total_devices
                    > best.design.total_devices)

    def test_area_constraint_filters(self):
        unconstrained = advise(14, 8, BOUND, criteria=PAPER_CRITERIA)
        tight = AdvisorConstraints(
            max_area_mm2=unconstrained[0].area_mm2 * 1.01)
        constrained = advise(14, 8, BOUND, constraints=tight,
                             criteria=PAPER_CRITERIA)
        assert constrained
        assert all(c.area_mm2 <= tight.max_area_mm2 for c in constrained)
        assert len(constrained) < len(unconstrained)

    def test_energy_constraint_filters(self):
        unconstrained = advise(14, 8, BOUND, criteria=PAPER_CRITERIA)
        lowest_energy = min(c.energy_j for c in unconstrained)
        constrained = advise(
            14, 8, BOUND,
            constraints=AdvisorConstraints(
                max_energy_j_per_access=lowest_energy * 1.01),
            criteria=PAPER_CRITERIA)
        assert constrained
        assert all(c.energy_j <= lowest_energy * 1.01 for c in constrained)

    def test_impossible_constraints_empty(self):
        impossible = AdvisorConstraints(max_devices=1)
        assert advise(14, 8, BOUND, constraints=impossible,
                      criteria=PAPER_CRITERIA) == []

    def test_labels(self):
        candidates = advise(14, 8, BOUND, criteria=PAPER_CRITERIA)
        labels = {c.label for c in candidates}
        assert any(label.startswith("k=") for label in labels)

    def test_bound_validated(self):
        with pytest.raises(ConfigurationError):
            advise(14, 8, 0)


class TestPareto:
    def test_frontier_subset_and_nondominated(self):
        candidates = advise(14, 8, BOUND, criteria=PAPER_CRITERIA)
        frontier = pareto_frontier(candidates)
        assert frontier
        assert set(id(c) for c in frontier) <= set(id(c)
                                                   for c in candidates)
        for a in frontier:
            for b in candidates:
                strictly_better = (
                    b.design.total_devices <= a.design.total_devices
                    and b.energy_j <= a.energy_j
                    and (b.design.total_devices < a.design.total_devices
                         or b.energy_j < a.energy_j))
                assert not strictly_better

    def test_single_candidate_is_its_own_frontier(self):
        candidates = advise(14, 8, BOUND, criteria=PAPER_CRITERIA)[:1]
        assert pareto_frontier(candidates) == candidates
