"""Tests for stateful hardware simulation (banks and serial copies)."""

import numpy as np
import pytest

from repro.core.device import NEMSSwitch
from repro.core.hardware import SerialCopies, SimulatedBank, build_serial_copies
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError, DeviceWornOutError


def bank_with_lifetimes(lifetimes, k=1):
    return SimulatedBank([NEMSSwitch(v) for v in lifetimes], k)


class TestSimulatedBank:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SimulatedBank([], 1)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            bank_with_lifetimes([1, 2], k=3)
        with pytest.raises(ConfigurationError):
            bank_with_lifetimes([1, 2], k=0)

    def test_access_returns_closed_indices(self):
        bank = bank_with_lifetimes([2, 0, 5])
        assert bank.access() == [0, 2]

    def test_all_switches_wear_on_each_access(self):
        bank = bank_with_lifetimes([3, 3, 3])
        bank.access()
        assert all(s.cycles_used == 1 for s in bank.switches)

    def test_bank_serves_kth_largest_lifetime(self):
        # k = 2 of lifetimes [1, 3, 5]: dies when fewer than 2 alive,
        # i.e. after access 3 (the 2nd-largest integer budget).
        bank = bank_with_lifetimes([1, 3, 5], k=2)
        served = 0
        while bank.access_succeeds():
            served += 1
        assert served == 3

    def test_dead_bank_stays_dead_and_stops_wearing(self):
        bank = bank_with_lifetimes([1, 1], k=2)
        assert bank.access_succeeds()
        assert not bank.access_succeeds()
        cycles = [s.cycles_used for s in bank.switches]
        bank.access()
        assert bank.is_dead
        assert [s.cycles_used for s in bank.switches] == cycles

    def test_alive_count(self):
        bank = bank_with_lifetimes([1, 2, 3])
        assert bank.alive_count == 3
        bank.access()
        assert bank.alive_count == 2


class TestSerialCopies:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SerialCopies([])

    def test_total_accesses_is_sum_of_bank_lifetimes(self):
        banks = [bank_with_lifetimes([2, 4], k=1),
                 bank_with_lifetimes([3, 1], k=1)]
        copies = SerialCopies(banks)
        assert copies.count_successful_accesses() == 4 + 3

    def test_fall_over_to_next_bank(self):
        copies = SerialCopies([bank_with_lifetimes([1]),
                               bank_with_lifetimes([5])])
        copies.access()
        assert copies.current_index == 0
        bank_index, _ = copies.access()  # first bank dies, second serves
        assert bank_index == 1

    def test_raises_when_exhausted(self):
        copies = SerialCopies([bank_with_lifetimes([1])])
        copies.access()
        with pytest.raises(DeviceWornOutError):
            copies.access()
        assert copies.is_exhausted

    def test_max_accesses_cap(self):
        copies = SerialCopies([bank_with_lifetimes([100])])
        assert copies.count_successful_accesses(max_accesses=7) == 7

    def test_device_count(self):
        copies = SerialCopies([bank_with_lifetimes([1, 2]),
                               bank_with_lifetimes([3])])
        assert copies.device_count == 3


class TestBuildSerialCopies:
    def test_build_shape(self, rng):
        model = WeibullDistribution(alpha=10.0, beta=8.0)
        hardware = build_serial_copies(model, n_copies=4, n_per_bank=6,
                                       k=2, rng=rng)
        assert len(hardware.banks) == 4
        assert all(b.n == 6 and b.k == 2 for b in hardware.banks)

    def test_build_rejects_zero_copies(self, rng):
        model = WeibullDistribution(alpha=10.0, beta=8.0)
        with pytest.raises(ConfigurationError):
            build_serial_copies(model, 0, 5, 1, rng)

    def test_empirical_bound_near_design_target(self, rng):
        """A solver-style design should serve ~copies * t accesses."""
        model = WeibullDistribution(alpha=10.0, beta=12.0)
        # 40-wide 1-of-n banks serve ~10 accesses each (Fig. 3b).
        hardware = build_serial_copies(model, n_copies=10, n_per_bank=40,
                                       k=1, rng=rng)
        served = hardware.count_successful_accesses()
        assert 90 <= served <= 125

    def test_reproducibility(self):
        model = WeibullDistribution(alpha=10.0, beta=8.0)
        a = build_serial_copies(model, 3, 5, 1, np.random.default_rng(9))
        b = build_serial_copies(model, 3, 5, 1, np.random.default_rng(9))
        assert (a.count_successful_accesses()
                == b.count_successful_accesses())
