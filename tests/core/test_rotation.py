"""Tests for rotating-subset banks and the all-parallel justification."""

import math

import pytest

from repro.core.device import NEMSSwitch
from repro.core.rotation import (
    RotatingBank,
    rotating_effective_device,
    rotation_window_analysis,
)
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError

DEVICE = WeibullDistribution(alpha=20.0, beta=12.0)


def switches(lifetimes):
    return [NEMSSwitch(v) for v in lifetimes]


class TestRotatingBank:
    def test_full_subset_matches_parallel_semantics(self):
        bank = RotatingBank(switches([3, 3, 3]), k=1, subset_size=3)
        served = bank.count_successful_accesses(max_accesses=100)
        assert served == 3

    def test_rotation_extends_bank_life(self):
        # 4 switches of 2 cycles each, k=1, subset 1: each access wears
        # one switch -> 8 total successful accesses instead of 2.
        bank = RotatingBank(switches([2, 2, 2, 2]), k=1, subset_size=1)
        assert bank.count_successful_accesses(max_accesses=100) == 8

    def test_subset_cursor_rotates(self):
        bank = RotatingBank(switches([10] * 4), k=1, subset_size=2)
        bank.access()
        worn = [s.cycles_used for s in bank.switches]
        assert worn == [1, 1, 0, 0]
        bank.access()
        worn = [s.cycles_used for s in bank.switches]
        assert worn == [1, 1, 1, 1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RotatingBank([], k=1)
        with pytest.raises(ConfigurationError):
            RotatingBank(switches([1, 2]), k=2, subset_size=1)
        with pytest.raises(ConfigurationError):
            RotatingBank(switches([1, 2]), k=1, subset_size=3)


class TestEffectiveDevice:
    def test_full_subset_is_identity(self):
        assert rotating_effective_device(DEVICE, 10, 10).alpha == \
            DEVICE.alpha

    def test_scale_stretches_by_n_over_s(self):
        effective = rotating_effective_device(DEVICE, 10, 2)
        assert effective.alpha == pytest.approx(DEVICE.alpha * 5)
        assert effective.beta == DEVICE.beta

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rotating_effective_device(DEVICE, 10, 0)


class TestWindowAnalysis:
    def test_window_scales_with_lifetime_factor(self):
        rows = rotation_window_analysis(DEVICE, n=60, k=6,
                                        subset_sizes=(6, 30, 60))
        by_s = {row["subset_size"]: row for row in rows}
        # The security window widens by exactly n/s.
        ratio = (by_s[6]["window_accesses"]
                 / by_s[60]["window_accesses"])
        assert ratio == pytest.approx(60 / 6, rel=0.02)

    def test_energy_and_lifetime_factors(self):
        rows = rotation_window_analysis(DEVICE, n=60, k=6,
                                        subset_sizes=(6, 60))
        by_s = {row["subset_size"]: row for row in rows}
        assert by_s[6]["energy_per_access_factor"] == pytest.approx(0.1)
        assert by_s[6]["lifetime_factor"] == pytest.approx(10.0)
        assert by_s[60]["lifetime_factor"] == 1.0

    def test_default_subsets_include_extremes(self):
        rows = rotation_window_analysis(DEVICE, n=60, k=6)
        sizes = [row["subset_size"] for row in rows]
        assert 6 in sizes and 60 in sizes

    def test_subset_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            rotation_window_analysis(DEVICE, n=60, k=6, subset_sizes=(3,))

    def test_losing_trade_conclusion(self):
        """The paper's implicit choice: all-parallel has the tightest
        window; every rotation setting is strictly worse for security."""
        rows = rotation_window_analysis(DEVICE, n=60, k=6,
                                        subset_sizes=(6, 15, 30, 60))
        windows = [row["window_accesses"] for row in rows]
        assert all(not math.isnan(w) for w in windows)
        assert windows == sorted(windows, reverse=True)
