"""Tests for analytic structure reliability (series / parallel / k-of-n)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.core.structures import (
    KOutOfNStructure,
    ParallelStructure,
    SeriesStructure,
    k_of_n_reliability,
    parallel_reliability,
    series_reliability,
)
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError

DEVICE = WeibullDistribution(alpha=9.3, beta=12.0)


class TestSeries:
    def test_one_device_is_identity(self):
        assert series_reliability(0.7, 1) == pytest.approx(0.7)

    def test_matches_power(self):
        assert series_reliability(0.9, 5) == pytest.approx(0.9 ** 5)

    def test_weakens_with_length(self):
        rels = [series_reliability(0.9, n) for n in (1, 2, 10, 100)]
        assert all(a > b for a, b in zip(rels, rels[1:]))

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            series_reliability(0.9, 0)

    def test_equivalent_device(self):
        structure = SeriesStructure(DEVICE, 7)
        xs = np.linspace(0.5, 15, 10)
        np.testing.assert_allclose(
            structure.equivalent_device().reliability(xs),
            structure.reliability(xs), rtol=1e-10)

    def test_scale_reduction_is_exponential_in_beta(self):
        # The paper's point: halving the scale needs 2**beta devices.
        assert SeriesStructure.devices_for_scale_reduction(2, 12) == 4096
        assert SeriesStructure.devices_for_scale_reduction(2, 8) == 256

    def test_device_count(self):
        assert SeriesStructure(DEVICE, 7).device_count == 7


class TestParallel:
    def test_one_device_is_identity(self):
        assert parallel_reliability(0.3, 1) == pytest.approx(0.3)

    def test_matches_complement_power(self):
        assert parallel_reliability(0.3, 4) == pytest.approx(
            1 - 0.7 ** 4)

    def test_strengthens_with_width(self):
        rels = [parallel_reliability(0.3, n) for n in (1, 2, 10, 100)]
        assert all(a < b for a, b in zip(rels, rels[1:]))

    def test_handles_astronomical_n(self):
        # 4 billion devices with tiny per-device reliability: the
        # no-encoding regime of Fig. 4a must not underflow.
        r = parallel_reliability(1e-9, 4_000_000_000)
        assert r == pytest.approx(1 - np.exp(-4.0), rel=1e-6)

    def test_paper_fig3b_anchor(self):
        """n = 40, alpha = 9.3, beta = 12: ~98% at the 10th access,
        ~2.2% at the 11th (quoted in Section 4.1.3)."""
        structure = ParallelStructure(DEVICE, 40)
        assert float(structure.reliability(10.0)) == pytest.approx(
            0.98, abs=0.005)
        assert float(structure.reliability(11.0)) == pytest.approx(
            0.022, abs=0.003)

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            parallel_reliability(0.5, 0)


class TestKOutOfN:
    def test_k1_equals_parallel(self):
        for r in (0.1, 0.5, 0.9):
            assert k_of_n_reliability(r, 10, 1) == pytest.approx(
                parallel_reliability(r, 10))

    def test_kn_equals_series(self):
        for r in (0.1, 0.5, 0.9):
            assert k_of_n_reliability(r, 10, 10) == pytest.approx(
                series_reliability(r, 10))

    def test_matches_binomial_tail(self):
        assert k_of_n_reliability(0.6, 20, 7) == pytest.approx(
            stats.binom.sf(6, 20, 0.6))

    def test_monotone_decreasing_in_k(self):
        rels = [k_of_n_reliability(0.5, 30, k) for k in range(1, 31)]
        assert all(a >= b for a, b in zip(rels, rels[1:]))

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            k_of_n_reliability(0.5, 10, 0)
        with pytest.raises(ConfigurationError):
            k_of_n_reliability(0.5, 10, 11)

    def test_structure_object(self):
        structure = KOutOfNStructure(DEVICE, 60, 30)
        assert structure.device_count == 60
        assert structure.redundancy_fraction == pytest.approx(0.5)
        x = 9.0
        assert float(structure.reliability(x)) == pytest.approx(
            float(k_of_n_reliability(DEVICE.reliability(x), 60, 30)))

    def test_paper_fig3c_window_tightens_then_stretches(self):
        """k-of-60 at alpha=20 beta=12: the 99%->1% window shrinks from
        k=1 to mid-range k, then stretches as k -> n (Fig. 3c)."""
        device = WeibullDistribution(alpha=20.0, beta=12.0)
        xs = np.linspace(0.1, 40.0, 4000)

        def window(k: int) -> float:
            rel = k_of_n_reliability(device.reliability(xs), 60, k)
            above = xs[rel >= 0.99]
            below = xs[rel <= 0.01]
            return float(below.min() - above.max())

        w1, w20, w60 = window(1), window(20), window(60)
        assert w20 < w1
        assert w60 > w20

    @given(r=st.floats(0.01, 0.99), n=st.integers(1, 60),
           data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_bounded_and_monotone_property(self, r, n, data):
        k = data.draw(st.integers(1, n))
        rel = k_of_n_reliability(r, n, k)
        assert 0.0 <= rel <= 1.0
        if k > 1:
            assert rel <= k_of_n_reliability(r, n, k - 1) + 1e-12


class TestStructureOrdering:
    @given(r=st.floats(0.05, 0.95), n=st.integers(2, 40))
    @settings(max_examples=60, deadline=None)
    def test_series_below_single_below_parallel(self, r, n):
        assert (series_reliability(r, n) <= r + 1e-12
                <= parallel_reliability(r, n) + 1e-12)
