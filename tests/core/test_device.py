"""Tests for simulated NEMS switches and read-destructive registers."""

import pytest

from repro.core.device import (
    NEMS_CHARACTERISTICS,
    NEMSSwitch,
    ReadDestructiveRegister,
)
from repro.core.variation import LognormalVariation
from repro.core.weibull import WeibullDistribution
from repro.errors import (
    ConfigurationError,
    DeviceWornOutError,
    RegisterDestroyedError,
)


class TestNEMSSwitch:
    def test_serves_exactly_floor_lifetime_actuations(self):
        switch = NEMSSwitch(lifetime_cycles=3.7)
        assert [switch.actuate() for _ in range(5)] == [
            True, True, True, False, False]

    def test_zero_lifetime_never_closes(self):
        switch = NEMSSwitch(lifetime_cycles=0.0)
        assert switch.is_failed
        assert not switch.actuate()

    def test_negative_lifetime_rejected(self):
        with pytest.raises(ConfigurationError):
            NEMSSwitch(lifetime_cycles=-1.0)

    def test_remaining_cycles(self):
        switch = NEMSSwitch(lifetime_cycles=5.0)
        assert switch.remaining_cycles == 5
        switch.actuate()
        assert switch.remaining_cycles == 4

    def test_failed_switch_stays_failed(self):
        switch = NEMSSwitch(lifetime_cycles=1.0)
        assert switch.actuate()
        assert not switch.actuate()
        assert not switch.actuate()
        assert switch.is_failed

    def test_actuate_or_raise(self):
        switch = NEMSSwitch(lifetime_cycles=1.0)
        switch.actuate_or_raise()
        with pytest.raises(DeviceWornOutError):
            switch.actuate_or_raise()

    def test_from_model_samples_lifetime(self, rng):
        model = WeibullDistribution(alpha=10.0, beta=8.0)
        switch = NEMSSwitch.from_model(model, rng)
        assert 0 <= switch.lifetime_cycles < 100

    def test_from_model_with_variation(self, rng):
        model = WeibullDistribution(alpha=10.0, beta=8.0)
        switch = NEMSSwitch.from_model(
            model, rng, LognormalVariation(sigma_alpha=0.2))
        assert switch.lifetime_cycles > 0

    def test_fabricate_batch_statistics(self, rng):
        model = WeibullDistribution(alpha=10.0, beta=8.0)
        batch = NEMSSwitch.fabricate_batch(model, 5_000, rng)
        assert len(batch) == 5_000
        mean = sum(s.lifetime_cycles for s in batch) / len(batch)
        assert mean == pytest.approx(model.mean, rel=0.05)

    def test_fabricate_batch_rejects_negative_count(self, rng):
        model = WeibullDistribution(alpha=10.0, beta=8.0)
        with pytest.raises(ConfigurationError):
            NEMSSwitch.fabricate_batch(model, -1, rng)

    def test_switch_ids_unique(self):
        a, b = NEMSSwitch(1.0), NEMSSwitch(1.0)
        assert a.switch_id != b.switch_id


class TestReadDestructiveRegister:
    def test_single_read_returns_contents(self):
        reg = ReadDestructiveRegister(b"secret")
        assert reg.read() == b"secret"
        assert reg.destroyed

    def test_second_read_raises(self):
        reg = ReadDestructiveRegister(b"secret")
        reg.read()
        with pytest.raises(RegisterDestroyedError):
            reg.read()

    def test_contents_zeroized_after_read(self):
        reg = ReadDestructiveRegister(b"secret")
        reg.read()
        assert reg.contents == b"\x00" * 6

    def test_tamper_read_bypasses_destruction(self):
        """The low-voltage attack the paper warns about: read-destruction
        alone is not a security boundary."""
        reg = ReadDestructiveRegister(b"secret")
        assert reg.tamper_read() == b"secret"
        assert reg.tamper_read() == b"secret"
        assert not reg.destroyed
        assert reg.tampered
        assert reg.read() == b"secret"  # legitimate read still works once

    def test_tamper_read_after_destruction_fails(self):
        reg = ReadDestructiveRegister(b"secret")
        reg.read()
        with pytest.raises(RegisterDestroyedError):
            reg.tamper_read()

    def test_size_bits(self):
        assert ReadDestructiveRegister(b"abcd").size_bits == 32


class TestCharacteristics:
    def test_paper_constants(self):
        assert NEMS_CHARACTERISTICS.contact_area_nm2 == 100.0
        assert NEMS_CHARACTERISTICS.switching_delay_s == pytest.approx(10e-9)
        assert NEMS_CHARACTERISTICS.switching_energy_j == pytest.approx(1e-20)
        assert NEMS_CHARACTERISTICS.register_cell_area_nm2 == 50.0
