"""Tests for stuck-open vs stuck-closed failure-mode analysis."""

import numpy as np
import pytest

from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.failure_modes import (
    FailureMode,
    MixedModeSwitch,
    ceiling_violation_probability,
    effective_reliability,
    max_tolerable_stuck_closed,
    simulate_stuck_closed_inflation,
)
from repro.core.hardware import SimulatedBank
from repro.core.structures import k_of_n_reliability
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError

DEVICE = WeibullDistribution(alpha=10.0, beta=8.0)


@pytest.fixture(scope="module")
def design():
    return solve_encoded_fractional(DEVICE, 200, 0.10, PAPER_CRITERIA)


class TestMixedModeSwitch:
    def test_stuck_open_behaves_like_base(self):
        switch = MixedModeSwitch(2.0, FailureMode.STUCK_OPEN)
        assert [switch.actuate() for _ in range(4)] == [True, True, False,
                                                        False]

    def test_stuck_closed_conducts_forever(self):
        switch = MixedModeSwitch(2.0, FailureMode.STUCK_CLOSED)
        assert all(switch.actuate() for _ in range(20))
        assert switch.is_failed  # worn out, yet still conducting

    def test_mixed_batch_fractions(self, rng):
        batch = MixedModeSwitch.fabricate_mixed_batch(DEVICE, 5000, 0.2,
                                                      rng)
        stuck = sum(s.failure_mode is FailureMode.STUCK_CLOSED
                    for s in batch)
        assert stuck / 5000 == pytest.approx(0.2, abs=0.02)

    def test_batch_validates_fraction(self, rng):
        with pytest.raises(ConfigurationError):
            MixedModeSwitch.fabricate_mixed_batch(DEVICE, 10, 1.5, rng)

    def test_stuck_closed_bank_never_dies(self):
        switches = [MixedModeSwitch(1.0, FailureMode.STUCK_CLOSED)
                    for _ in range(4)]
        bank = SimulatedBank(switches, k=2)
        assert all(bank.access_succeeds() for _ in range(50))


class TestEffectiveReliability:
    def test_zero_stiction_matches_clean_model(self):
        x = 12.0
        clean = k_of_n_reliability(DEVICE.reliability(x), 50, 5)
        assert effective_reliability(DEVICE, x, 50, 5, 0.0) == \
            pytest.approx(float(clean))

    def test_stiction_raises_late_reliability(self):
        x = 20.0  # well past wearout
        clean = effective_reliability(DEVICE, x, 50, 5, 0.0)
        dirty = effective_reliability(DEVICE, x, 50, 5, 0.2)
        assert dirty > clean

    def test_full_stiction_is_immortal(self):
        assert effective_reliability(DEVICE, 1e6, 50, 5, 1.0) == \
            pytest.approx(1.0)

    def test_validates_fraction(self):
        with pytest.raises(ConfigurationError):
            effective_reliability(DEVICE, 1.0, 10, 2, -0.1)


class TestCeilingViolation:
    def test_clean_design_keeps_ceiling(self, design):
        assert ceiling_violation_probability(design, 0.0) < 1e-9

    def test_stiction_breaks_ceiling(self, design):
        q_fatal = design.k / design.n * 1.5
        violation = ceiling_violation_probability(design, min(q_fatal, 0.9))
        assert violation > 0.5

    def test_monotone_in_stiction(self, design):
        probs = [ceiling_violation_probability(design, q)
                 for q in (0.0, 0.05, 0.1, 0.2)]
        assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:]))


class TestTolerableStiction:
    def test_threshold_below_k_over_n(self, design):
        q_max = max_tolerable_stuck_closed(design)
        assert 0.0 < q_max < design.k / design.n

    def test_threshold_is_tight(self, design):
        q_max = max_tolerable_stuck_closed(design)
        ok = float(k_of_n_reliability(q_max, design.n, design.k))
        bad = float(k_of_n_reliability(q_max * 1.3, design.n, design.k))
        assert ok <= design.criteria.p_fail + 1e-9
        assert bad > ok

    def test_custom_tolerance(self, design):
        strict = max_tolerable_stuck_closed(design, tolerance=1e-6)
        loose = max_tolerable_stuck_closed(design, tolerance=0.1)
        assert strict < loose

    def test_tolerance_validated(self, design):
        with pytest.raises(ConfigurationError):
            max_tolerable_stuck_closed(design, tolerance=0.0)


class TestSimulatedInflation:
    def test_clean_matches_baseline(self, design, rng):
        from repro.sim.montecarlo import simulate_access_bounds

        dirty = simulate_stuck_closed_inflation(design, 0.0, 200, rng)
        clean = simulate_access_bounds(design, 200,
                                       np.random.default_rng(0))
        assert dirty.mean() == pytest.approx(clean.mean(), rel=0.01)

    def test_stiction_inflates_bounds(self, design, rng):
        clean = simulate_stuck_closed_inflation(design, 0.0, 100, rng)
        dirty = simulate_stuck_closed_inflation(design, 0.08, 100, rng,
                                                max_accesses=10_000)
        assert dirty.mean() > clean.mean() * 1.2

    def test_immortal_requires_cap(self, design, rng):
        with pytest.raises(ConfigurationError):
            simulate_stuck_closed_inflation(design, 0.5, 20, rng)

    def test_validation(self, design, rng):
        with pytest.raises(ConfigurationError):
            simulate_stuck_closed_inflation(design, 0.1, 0, rng)
        with pytest.raises(ConfigurationError):
            simulate_stuck_closed_inflation(design, 2.0, 10, rng)
