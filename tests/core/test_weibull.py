"""Tests for the two-parameter Weibull wearout model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError

ALPHAS = st.floats(min_value=0.01, max_value=1e7, allow_nan=False)
BETAS = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)


class TestConstruction:
    def test_valid_parameters(self):
        w = WeibullDistribution(alpha=10.0, beta=2.0)
        assert w.alpha == 10.0
        assert w.beta == 2.0

    @pytest.mark.parametrize("alpha,beta", [
        (0.0, 1.0), (-1.0, 1.0), (1.0, 0.0), (1.0, -2.0),
        (math.inf, 1.0), (1.0, math.nan),
    ])
    def test_invalid_parameters_rejected(self, alpha, beta):
        with pytest.raises(ConfigurationError):
            WeibullDistribution(alpha=alpha, beta=beta)

    def test_frozen(self):
        w = WeibullDistribution(alpha=1.0, beta=1.0)
        with pytest.raises(AttributeError):
            w.alpha = 2.0


class TestDistributionFunctions:
    def test_reliability_at_zero_is_one(self):
        w = WeibullDistribution(alpha=10.0, beta=12.0)
        assert w.reliability(0.0) == 1.0

    def test_reliability_at_alpha_is_inverse_e(self):
        # R(alpha) = 1/e for every shape: the defining scale property.
        for beta in (0.5, 1.0, 6.0, 12.0):
            w = WeibullDistribution(alpha=123.0, beta=beta)
            assert w.reliability(123.0) == pytest.approx(math.exp(-1))

    def test_cdf_reliability_complementary(self):
        w = WeibullDistribution(alpha=5.0, beta=3.0)
        xs = np.linspace(0, 20, 50)
        np.testing.assert_allclose(w.cdf(xs) + w.reliability(xs), 1.0,
                                   atol=1e-12)

    def test_beta_one_is_exponential(self):
        w = WeibullDistribution(alpha=10.0, beta=1.0)
        xs = np.linspace(0.1, 40, 25)
        np.testing.assert_allclose(w.reliability(xs), np.exp(-xs / 10.0))

    def test_pdf_integrates_to_one(self):
        w = WeibullDistribution(alpha=7.0, beta=4.0)
        xs = np.linspace(0, 30, 30_001)
        integral = np.trapezoid(w.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_pdf_matches_cdf_derivative(self):
        w = WeibullDistribution(alpha=7.0, beta=4.0)
        x, h = 6.0, 1e-6
        numeric = (w.cdf(x + h) - w.cdf(x - h)) / (2 * h)
        assert w.pdf(x) == pytest.approx(numeric, rel=1e-5)

    def test_pdf_at_zero_by_shape(self):
        assert WeibullDistribution(1.0, 2.0).pdf(0.0) == 0.0
        assert WeibullDistribution(4.0, 1.0).pdf(0.0) == pytest.approx(0.25)

    def test_log_reliability_exact_under_underflow(self):
        w = WeibullDistribution(alpha=1.0, beta=8.0)
        # R(100) underflows to 0 but its log is exactly -(100**8).
        assert w.reliability(100.0) == 0.0
        assert w.log_reliability(100.0) == -(100.0 ** 8)

    def test_hazard_monotonicity_by_shape(self):
        xs = np.linspace(0.5, 20, 40)
        increasing = WeibullDistribution(10.0, 3.0).hazard(xs)
        assert np.all(np.diff(increasing) > 0)
        constant = WeibullDistribution(10.0, 1.0).hazard(xs)
        np.testing.assert_allclose(constant, 0.1)

    def test_quantile_inverts_cdf(self):
        w = WeibullDistribution(alpha=9.3, beta=12.0)
        for q in (0.001, 0.25, 0.5, 0.9, 0.999):
            assert w.cdf(w.quantile(q)) == pytest.approx(q, rel=1e-9)

    def test_quantile_rejects_out_of_range(self):
        w = WeibullDistribution(alpha=1.0, beta=1.0)
        with pytest.raises(ConfigurationError):
            w.quantile(1.5)
        with pytest.raises(ConfigurationError):
            w.quantile(-0.1)

    @given(alpha=ALPHAS, beta=BETAS)
    @settings(max_examples=60, deadline=None)
    def test_reliability_decreasing_property(self, alpha, beta):
        w = WeibullDistribution(alpha=alpha, beta=beta)
        xs = np.linspace(0, 4 * alpha, 64)
        rel = w.reliability(xs)
        assert np.all(np.diff(rel) <= 1e-12)
        assert np.all((rel >= 0) & (rel <= 1))

    @given(alpha=ALPHAS, beta=BETAS, q=st.floats(0.001, 0.999))
    @settings(max_examples=60, deadline=None)
    def test_quantile_roundtrip_property(self, alpha, beta, q):
        w = WeibullDistribution(alpha=alpha, beta=beta)
        assert w.cdf(w.quantile(q)) == pytest.approx(q, rel=1e-6)


class TestMoments:
    def test_mean_beta_one(self):
        assert WeibullDistribution(10.0, 1.0).mean == pytest.approx(10.0)

    def test_mean_approaches_alpha_for_large_beta(self):
        assert WeibullDistribution(10.0, 50.0).mean == pytest.approx(
            10.0, rel=0.02)

    def test_median_below_mean_for_small_beta(self):
        w = WeibullDistribution(10.0, 1.0)
        assert w.median < w.mean

    def test_mode_zero_for_beta_le_one(self):
        assert WeibullDistribution(10.0, 1.0).mode == 0.0
        assert WeibullDistribution(10.0, 0.5).mode == 0.0

    def test_mode_positive_for_beta_above_one(self):
        w = WeibullDistribution(10.0, 12.0)
        assert 0 < w.mode < w.alpha

    def test_variance_against_sampling(self, rng):
        w = WeibullDistribution(alpha=10.0, beta=3.0)
        samples = w.sample(size=200_000, rng=rng)
        assert samples.var() == pytest.approx(w.variance, rel=0.05)
        assert samples.mean() == pytest.approx(w.mean, rel=0.02)
        assert w.std == pytest.approx(math.sqrt(w.variance))


class TestSampling:
    def test_scalar_sample(self, rng):
        value = WeibullDistribution(10.0, 2.0).sample(rng=rng)
        assert isinstance(value, float)
        assert value > 0

    def test_shaped_sample(self, rng):
        out = WeibullDistribution(10.0, 2.0).sample(size=(3, 4), rng=rng)
        assert out.shape == (3, 4)

    def test_sample_distribution_matches_cdf(self, rng):
        w = WeibullDistribution(alpha=9.3, beta=12.0)
        samples = w.sample(size=100_000, rng=rng)
        for x in (7.0, 9.0, 10.0, 11.0):
            assert (samples <= x).mean() == pytest.approx(w.cdf(x),
                                                          abs=0.01)

    def test_reproducible_with_seed(self):
        w = WeibullDistribution(5.0, 2.0)
        a = w.sample(size=10, rng=np.random.default_rng(1))
        b = w.sample(size=10, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestConditionalReliability:
    def test_age_zero_is_unconditional(self):
        w = WeibullDistribution(10.0, 8.0)
        xs = np.linspace(0, 15, 10)
        np.testing.assert_allclose(w.conditional_reliability(xs, 0.0),
                                   w.reliability(xs))

    def test_wearout_devices_degrade_with_age(self):
        w = WeibullDistribution(10.0, 8.0)
        fresh = w.conditional_reliability(2.0, age=0.0)
        aged = w.conditional_reliability(2.0, age=8.0)
        assert aged < fresh

    def test_exponential_is_memoryless(self):
        w = WeibullDistribution(10.0, 1.0)
        assert w.conditional_reliability(3.0, age=0.0) == pytest.approx(
            w.conditional_reliability(3.0, age=50.0))

    def test_negative_age_rejected(self):
        with pytest.raises(ConfigurationError):
            WeibullDistribution(10.0, 8.0).conditional_reliability(1.0, -1)

    def test_mean_residual_life_decreases_for_wearout(self):
        w = WeibullDistribution(10.0, 8.0)
        assert w.mean_residual_life(8.0) < w.mean_residual_life(0.0)
        assert w.mean_residual_life(0.0) == pytest.approx(w.mean, rel=0.01)

    def test_mean_residual_life_constant_for_exponential(self):
        w = WeibullDistribution(10.0, 1.0)
        assert w.mean_residual_life(20.0) == pytest.approx(
            w.mean_residual_life(0.0), rel=0.02)


class TestArchitecturalHelpers:
    def test_degradation_window_shrinks_with_beta(self):
        w1 = WeibullDistribution(1e6, 1.0)
        w12 = WeibullDistribution(1e6, 12.0)
        assert w12.degradation_window() < w1.degradation_window()

    def test_degradation_window_scales_with_alpha(self):
        w = WeibullDistribution(10.0, 8.0)
        assert w.scaled(2.0).degradation_window() == pytest.approx(
            2 * w.degradation_window())

    def test_degradation_window_validates_bounds(self):
        w = WeibullDistribution(10.0, 8.0)
        with pytest.raises(ConfigurationError):
            w.degradation_window(r_high=0.01, r_low=0.99)

    def test_series_equivalent_matches_power(self):
        w = WeibullDistribution(10.0, 8.0)
        eq = w.series_equivalent(5)
        xs = np.linspace(0.1, 15, 20)
        np.testing.assert_allclose(eq.reliability(xs),
                                   w.reliability(xs) ** 5, rtol=1e-10)

    def test_series_equivalent_needs_positive_n(self):
        with pytest.raises(ConfigurationError):
            WeibullDistribution(10.0, 8.0).series_equivalent(0)

    def test_scaled_preserves_shape(self):
        w = WeibullDistribution(10.0, 8.0).scaled(0.17)
        assert w.alpha == pytest.approx(1.7)
        assert w.beta == 8.0
