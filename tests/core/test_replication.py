"""Tests for M-way module replication scheduling."""

import pytest

from repro.core.replication import plan_replication
from repro.errors import ConfigurationError


class TestPlanReplication:
    def test_paper_example(self):
        """50 -> 500 uses/day needs M=10 and ~6-month migrations."""
        plan = plan_replication(target_daily_usage=500)
        assert plan.m == 10
        assert plan.module_duration_months == pytest.approx(6.0, rel=0.01)
        assert plan.reencryptions == 9

    def test_no_replication_needed(self):
        plan = plan_replication(target_daily_usage=50)
        assert plan.m == 1
        assert plan.reencryptions == 0

    def test_rounds_up(self):
        assert plan_replication(target_daily_usage=51).m == 2

    def test_module_access_bound(self):
        plan = plan_replication(target_daily_usage=500,
                                base_daily_usage=50, lifetime_years=5)
        assert plan.module_access_bound == 50 * 1825
        assert plan.total_access_bound == 10 * 91_250

    def test_custom_lifetime(self):
        plan = plan_replication(target_daily_usage=100,
                                base_daily_usage=50, lifetime_years=2)
        assert plan.lifetime_days == 730
        assert plan.module_duration_days == pytest.approx(365.0)

    @pytest.mark.parametrize("kwargs", [
        {"target_daily_usage": 0},
        {"target_daily_usage": 100, "base_daily_usage": 0},
        {"target_daily_usage": 100, "lifetime_years": 0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            plan_replication(**kwargs)
