"""Tests for design JSON serialization."""

import json

import pytest

from repro.core.degradation import (
    PAPER_CRITERIA,
    solve_encoded,
    solve_encoded_fractional,
)
from repro.core.serialize import (
    design_from_dict,
    design_to_dict,
    dumps_design,
    loads_design,
)
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError

DEVICE = WeibullDistribution(alpha=14.0, beta=8.0)


@pytest.fixture(scope="module")
def design():
    return solve_encoded_fractional(DEVICE, 1_000, 0.10, PAPER_CRITERIA)


class TestRoundTrip:
    def test_dict_roundtrip(self, design):
        assert design_from_dict(design_to_dict(design)) == design

    def test_json_roundtrip(self, design):
        assert loads_design(dumps_design(design)) == design

    def test_integer_window_roundtrip(self):
        design = solve_encoded(DEVICE, 500, 0.10, PAPER_CRITERIA)
        restored = loads_design(dumps_design(design))
        assert restored == design
        assert restored.window_start is None

    def test_json_is_plain_types(self, design):
        payload = json.loads(dumps_design(design))
        assert payload["n"] == design.n
        assert payload["criteria"]["r_min"] == PAPER_CRITERIA.r_min


class TestValidation:
    def test_missing_field(self, design):
        payload = design_to_dict(design)
        del payload["copies"]
        with pytest.raises(ConfigurationError):
            design_from_dict(payload)

    def test_wrong_schema_version(self, design):
        payload = design_to_dict(design)
        payload["schema_version"] = 99
        with pytest.raises(ConfigurationError):
            design_from_dict(payload)

    def test_invalid_k(self, design):
        payload = design_to_dict(design)
        payload["k"] = payload["n"] + 1
        with pytest.raises(ConfigurationError):
            design_from_dict(payload)

    def test_invalid_counts(self, design):
        payload = design_to_dict(design)
        payload["copies"] = 0
        with pytest.raises(ConfigurationError):
            design_from_dict(payload)

    def test_malformed_json(self):
        with pytest.raises(ConfigurationError):
            loads_design("{not json")
        with pytest.raises(ConfigurationError):
            loads_design("[1, 2, 3]")

    def test_invalid_device_parameters(self, design):
        payload = design_to_dict(design)
        payload["device"]["alpha"] = -1.0
        with pytest.raises(ConfigurationError):
            design_from_dict(payload)
