"""Tests for the sizing convenience layer and sweeps."""

import pytest

from repro.core.degradation import PAPER_CRITERIA
from repro.core.sizing import size_architecture, sweep_alpha
from repro.errors import ConfigurationError


class TestSizeArchitecture:
    def test_returns_solver_design(self):
        point = size_architecture(14, 8, 1000, k_fraction=0.1,
                                  criteria=PAPER_CRITERIA,
                                  window="fractional")
        assert point.guaranteed_accesses >= 1000
        assert point.device.alpha == 14

    def test_unencoded_default(self):
        point = size_architecture(14, 12, 1000, criteria=PAPER_CRITERIA,
                                  window="fractional")
        assert point.k == 1

    def test_propagates_bad_window(self):
        with pytest.raises(ConfigurationError):
            size_architecture(14, 8, 1000, window="nope")


class TestSweepAlpha:
    def test_rows_cover_all_alphas(self):
        results = sweep_alpha([10, 12, 14], beta=8, access_bound=1000,
                              k_fraction=0.1, criteria=PAPER_CRITERIA)
        assert [r.alpha for r in results] == [10, 12, 14]
        assert all(r.beta == 8 for r in results)

    def test_infeasible_points_are_gaps_not_errors(self):
        # beta = 0.5 without encoding is infeasible everywhere.
        results = sweep_alpha([10.0], beta=0.5, access_bound=1000,
                              k_fraction=None, criteria=PAPER_CRITERIA)
        assert results[0].point is None
        assert results[0].total_devices is None

    def test_totals_accessible(self):
        results = sweep_alpha([10, 20], beta=8, access_bound=1000,
                              k_fraction=0.1, criteria=PAPER_CRITERIA)
        totals = [r.total_devices for r in results]
        assert all(t is not None and t > 0 for t in totals)
        assert totals[0] < totals[1]  # linear growth with alpha
