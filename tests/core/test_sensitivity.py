"""Tests for design-margin sensitivity analysis."""

import pytest

from repro.core.degradation import (
    PAPER_CRITERIA,
    solve_encoded_fractional,
    solve_unencoded_fractional,
)
from repro.core.sensitivity import (
    alpha_margin,
    beta_margin,
    scaling_elasticity,
)
from repro.core.weibull import WeibullDistribution

DEVICE = WeibullDistribution(alpha=14.0, beta=8.0)


@pytest.fixture(scope="module")
def encoded_design():
    return solve_encoded_fractional(DEVICE, 2_000, 0.10, PAPER_CRITERIA)


class TestAlphaMargin:
    def test_contains_nominal(self, encoded_design):
        margin = alpha_margin(encoded_design)
        assert margin.contains(14.0)
        assert margin.low < 14.0 < margin.high

    def test_margin_edges_actually_fail(self, encoded_design):
        from repro.core.sensitivity import _design_meets_criteria

        margin = alpha_margin(encoded_design)
        too_low = WeibullDistribution(margin.low * 0.9, 8.0)
        too_high = WeibullDistribution(margin.high * 1.1, 8.0)
        assert not _design_meets_criteria(encoded_design, too_low)
        assert not _design_meets_criteria(encoded_design, too_high)

    def test_relative_width_is_tight(self, encoded_design):
        """The paper's point: use targets demand a specific parameter
        range - the tolerance is a few percent, not a factor."""
        margin = alpha_margin(encoded_design)
        assert margin.relative_width < 0.5


class TestBetaMargin:
    def test_contains_nominal(self, encoded_design):
        margin = beta_margin(encoded_design)
        assert margin.contains(8.0)

    def test_beta_sensitivity_not_reduced_by_encoding(self):
        """Section 7: encoding reduces alpha sensitivity, not beta
        sensitivity - the relative beta margin stays narrow for both
        architectures."""
        encoded = solve_encoded_fractional(DEVICE, 2_000, 0.10,
                                           PAPER_CRITERIA)
        plain = solve_unencoded_fractional(DEVICE, 2_000, PAPER_CRITERIA)
        m_encoded = beta_margin(encoded)
        m_plain = beta_margin(plain)
        assert m_encoded.relative_width < 2.0
        assert m_plain.relative_width < 2.0


class TestElasticity:
    def test_encoded_is_roughly_linear(self):
        e = scaling_elasticity(beta=8.0, access_bound=20_000,
                               k_fraction=0.10, criteria=PAPER_CRITERIA)
        assert 0.3 < e < 3.0

    def test_unencoded_is_strongly_superlinear(self):
        e = scaling_elasticity(beta=8.0, access_bound=20_000,
                               k_fraction=None, criteria=PAPER_CRITERIA)
        assert e > 5.0

    def test_encoding_reduces_elasticity(self):
        e_plain = scaling_elasticity(beta=8.0, access_bound=20_000,
                                     k_fraction=None,
                                     criteria=PAPER_CRITERIA)
        e_enc = scaling_elasticity(beta=8.0, access_bound=20_000,
                                   k_fraction=0.10,
                                   criteria=PAPER_CRITERIA)
        assert e_enc < e_plain / 3
