"""Tests for area / energy / latency cost models."""

import pytest

from repro.core.costs import (
    NM2_PER_MM2,
    access_energy_j,
    access_latency_s,
    connection_area_mm2,
    switch_array_area_nm2,
)
from repro.core.degradation import (
    PAPER_CRITERIA,
    solve_encoded,
)
from repro.core.device import NEMSCharacteristics
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def paper_design():
    """The paper's reference encoded design (alpha=14, beta=8, k=10%)."""
    return solve_encoded(WeibullDistribution(14.0, 8.0), 91_250, 0.10,
                         PAPER_CRITERIA)


class TestSwitchArrayArea:
    def test_scales_linearly(self):
        assert switch_array_area_nm2(200) == 2 * switch_array_area_nm2(100)

    def test_footprint_is_contact_plus_pitch(self):
        assert switch_array_area_nm2(1) == pytest.approx(101.0)

    def test_custom_characteristics(self):
        chars = NEMSCharacteristics(contact_area_nm2=400.0, pitch_nm=2.0)
        assert switch_array_area_nm2(10, chars) == pytest.approx(4040.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            switch_array_area_nm2(-1)


class TestConnectionArea:
    def test_reference_design_area_order(self, paper_design):
        """Paper Table 1 puts encoded designs at ~1e-4 mm^2; ours lands in
        the same decade."""
        area = connection_area_mm2(paper_design)
        assert 1e-5 < area < 1e-3

    def test_area_dominated_by_switches(self, paper_design):
        area_nm2 = connection_area_mm2(paper_design) * NM2_PER_MM2
        switches_nm2 = switch_array_area_nm2(paper_design.total_devices)
        assert switches_nm2 / area_nm2 > 0.9

    def test_share_storage_contributes(self, paper_design):
        small = connection_area_mm2(paper_design, secret_bits=128)
        large = connection_area_mm2(paper_design, secret_bits=4096)
        assert large > small

    def test_rejects_bad_secret_bits(self, paper_design):
        with pytest.raises(ConfigurationError):
            connection_area_mm2(paper_design, secret_bits=0)


class TestEnergyAndLatency:
    def test_paper_energy_anchor(self, paper_design):
        """Paper Section 4.3.2: a ~141-switch bank costs ~1.41e-18 J per
        access; energy must equal n * 1e-20 J exactly."""
        assert access_energy_j(paper_design) == pytest.approx(
            paper_design.n * 1e-20)
        assert 5e-19 < access_energy_j(paper_design) < 5e-18

    def test_latency_is_single_switch_delay(self, paper_design):
        assert access_latency_s(paper_design) == pytest.approx(10e-9)
