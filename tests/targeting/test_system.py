"""Tests for the limited-use targeting system."""

import numpy as np
import pytest

from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    DeviceWornOutError,
)
from repro.targeting.design_space import (
    fig5a_unencoded_sweep,
    fig5b_encoded_sweep,
)
from repro.targeting.system import (
    Command,
    CommandCenter,
    LaunchStation,
    design_targeting_system,
)


@pytest.fixture
def mission(rng):
    design = design_targeting_system(alpha=10, beta=8, mission_bound=50)
    key = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
    return CommandCenter(key), LaunchStation(design, key, rng), design


class TestDesign:
    def test_covers_mission_bound(self):
        design = design_targeting_system(alpha=10, beta=8)
        assert design.guaranteed_accesses >= 100

    def test_orders_of_magnitude_below_connection(self):
        """Fig. 5's point: a 100-use budget needs ~1000x fewer switches
        than the 91,250-use connection."""
        mission = design_targeting_system(alpha=14, beta=8)
        from repro.core.degradation import (
            PAPER_CRITERIA,
            solve_encoded_fractional,
        )
        from repro.core.weibull import WeibullDistribution
        phone = solve_encoded_fractional(
            WeibullDistribution(14.0, 8.0), 91_250, 0.10, PAPER_CRITERIA)
        assert phone.total_devices / mission.total_devices > 100


class TestCommandFlow:
    def test_issue_and_execute(self, mission):
        center, station, _ = mission
        directive = b"engage target 7"
        assert station.execute(center.issue(directive)) == directive
        assert station.executed == 1

    def test_forged_command_rejected_but_costs_access(self, mission):
        center, station, _ = mission
        before = station.connection.accesses
        with pytest.raises(AuthenticationError):
            station.execute(Command(sealed=bytes(48)))
        assert station.rejected == 1
        assert station.connection.accesses == before + 1

    def test_mission_bound_enforced(self, mission):
        center, station, design = mission
        executed = 0
        with pytest.raises(DeviceWornOutError):
            for i in range(10 ** 6):
                station.execute(center.issue(f"cmd {i}".encode()))
                executed += 1
        assert design.access_bound <= executed
        assert executed <= design.copies * (design.t + 2)
        assert station.is_decommissioned

    def test_center_requires_aes_key(self):
        with pytest.raises(ConfigurationError):
            CommandCenter(b"short")


class TestDesignSpace:
    def test_fig5a_shape(self):
        curves = fig5a_unencoded_sweep(alphas=(10, 20), betas=(8, 16))
        assert curves[16][0][1] < curves[8][0][1]  # consistency pays
        # Small bound -> small counts relative to Fig. 4a.
        assert curves[16][0][1] < 1e6

    def test_fig5b_small_designs(self):
        curves = fig5b_encoded_sweep(alphas=(10,), k_fractions=(0.10,),
                                     betas=(8,))
        total = curves[(0.10, 8)][0][1]
        assert total is not None
        assert total < 5_000  # paper's comparable point: ~810
