"""Pipeline runner tests: recording, failure, resume, interruption."""

import os
import time

import pytest

from repro.runs.pipeline import plan_pipeline, run_pipeline
from repro.runs.settings import parse_settings
from repro.runs.store import RunStore

MINI = """\
[pipeline]
name = "mini"
seed = 1

[steps.figs]
kind = "experiments"
ids = ["fig1", "fig10"]

[steps.delta]
kind = "report"
after = ["figs"]
"""


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "runs.db")


@pytest.fixture
def settings_path(tmp_path):
    path = tmp_path / "mini.toml"
    path.write_text(MINI)
    return str(path)


def seed_bench(db_path, throughputs, scale="tiny"):
    with RunStore(db_path) as store:
        run_id = store.begin_run("bench", {"scale": scale}, seed=0)
        store.finish_run(run_id, "ok", summary={
            "kind": "bench", "scale": scale, "date": "20260808",
            "workloads": {name: {"throughput_per_s": value,
                                 "unit": "trials"}
                          for name, value in throughputs.items()}})
    time.sleep(0.01)
    return run_id


class TestPlan:
    def test_plan_rows(self):
        rows = plan_pipeline(parse_settings(MINI))
        assert rows == [
            {"step": "figs", "kind": "experiments", "after": [],
             "seed": 1},
            {"step": "delta", "kind": "report", "after": ["figs"],
             "seed": 1},
        ]


class TestRunAndResume:
    def test_failure_then_resume_skips_recorded_ok_steps(
            self, db_path, settings_path, tmp_path, capsys):
        workdir = str(tmp_path / "out")
        # First run: the report step fails (no bench runs recorded yet)
        # after the experiments step succeeded.
        report = run_pipeline(settings_path, db_path=db_path,
                              workdir=workdir)
        assert report["outcome"] == "failed"
        assert "delta" in report["error"]
        actions = {row["step"]: row["action"] for row in report["steps"]}
        assert actions == {"figs": "ok", "delta": "failed"}
        with RunStore(db_path) as store:
            pipeline_row = store.get_run(report["pipeline_id"])
            assert pipeline_row["outcome"] == "failed"
            children = store.children(report["pipeline_id"])
            outcomes = {(c["params"]["step"], c["outcome"])
                        for c in children}
            assert outcomes == {("figs", "ok"), ("delta", "failed")}
            figs_run = next(c for c in children
                            if c["params"]["step"] == "figs")
            paths = [a["path"] for a in store.artifacts(figs_run["id"])]
            assert paths and paths[0].endswith("figs.txt")
            assert os.path.exists(paths[0])

        # Make the report step satisfiable, then resume: the ok step is
        # skipped (not re-run, not double-recorded), the failed one
        # re-runs, and the SAME pipeline row is finalized ok.
        seed_bench(db_path, {"mc.fast": 100.0})
        seed_bench(db_path, {"mc.fast": 150.0})
        resumed = run_pipeline(settings_path, db_path=db_path,
                               resume=True, workdir=workdir)
        assert resumed["pipeline_id"] == report["pipeline_id"]
        assert resumed["outcome"] == "ok"
        actions = {row["step"]: row["action"]
                   for row in resumed["steps"]}
        assert actions == {"figs": "skipped", "delta": "ok"}
        with RunStore(db_path) as store:
            assert store.get_run(report["pipeline_id"])["outcome"] == "ok"
            children = store.children(report["pipeline_id"])
        figs_runs = [c for c in children
                     if c["params"]["step"] == "figs"]
        assert len(figs_runs) == 1  # never re-ran
        delta_runs = [c for c in children
                      if c["params"]["step"] == "delta"]
        assert {c["outcome"] for c in delta_runs} == {"failed", "ok"}
        out = capsys.readouterr().out
        assert "skipped (recorded ok" in out
        assert "+50.0%" in out  # the report step rendered the delta

    def test_resume_without_prior_run_starts_fresh(self, db_path,
                                                   settings_path,
                                                   tmp_path):
        seed_bench(db_path, {"mc.fast": 100.0})
        seed_bench(db_path, {"mc.fast": 110.0})
        report = run_pipeline(settings_path, db_path=db_path,
                              resume=True,
                              workdir=str(tmp_path / "out"))
        assert report["outcome"] == "ok"
        assert all(row["action"] == "ok" for row in report["steps"])

    def test_changed_params_are_not_skipped(self, db_path, tmp_path):
        """Resume identity is the resolved params: editing a step's
        params (hence the settings digest) starts a new pipeline."""
        first = tmp_path / "a.toml"
        first.write_text(MINI)
        workdir = str(tmp_path / "out")
        initial = run_pipeline(str(first), db_path=db_path,
                               workdir=workdir)
        first.write_text(MINI.replace('ids = ["fig1", "fig10"]',
                                      'ids = ["fig1"]'))
        rerun = run_pipeline(str(first), db_path=db_path, resume=True,
                             workdir=workdir)
        assert rerun["pipeline_id"] != initial["pipeline_id"]
        assert {row["action"] for row in rerun["steps"]} >= {"failed"}

    def test_interrupt_finalizes_pipeline_row(self, db_path,
                                              settings_path, tmp_path,
                                              monkeypatch):
        from repro.runs import pipeline as pipeline_module

        def interrupted(step, seed, workdir, recorder, store):
            raise KeyboardInterrupt

        monkeypatch.setitem(pipeline_module._EXECUTORS, "experiments",
                            interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_pipeline(settings_path, db_path=db_path,
                         workdir=str(tmp_path / "out"))
        with RunStore(db_path) as store:
            row = store.list_runs(subcommand="pipeline")[0]
            assert row["outcome"] == "interrupted"
            (child,) = store.children(row["id"])
        assert child["outcome"] == "interrupted"


class TestThreeStepEndToEnd:
    def test_experiments_fleet_report_all_record(self, db_path,
                                                 tmp_path):
        seed_bench(db_path, {"mc.fast": 100.0})
        seed_bench(db_path, {"mc.fast": 130.0})
        settings = tmp_path / "e2e.toml"
        settings.write_text("""\
[pipeline]
name = "e2e"
seed = 5

[steps.figs]
kind = "experiments"
ids = ["fig1"]

[steps.fleet]
kind = "fleet"
after = ["figs"]
shards = 2
tenants = 4
requests = 16
concurrency = 4

[steps.delta]
kind = "report"
after = ["fleet"]
""")
        workdir = str(tmp_path / "out")
        report = run_pipeline(str(settings), db_path=db_path,
                              workdir=workdir)
        assert report["outcome"] == "ok"
        assert [row["action"] for row in report["steps"]] == \
            ["ok", "ok", "ok"]
        with RunStore(db_path) as store:
            children = store.children(report["pipeline_id"])
            assert [c["subcommand"] for c in children] == \
                ["experiments", "fleet", "report"]
            assert all(c["outcome"] == "ok" for c in children)
            assert all(c["parent_id"] == report["pipeline_id"]
                       for c in children)
            for child in children:
                assert store.artifacts(child["id"]), \
                    f"step {child['params']['step']} has no artifacts"
            fleet_summary = children[1]["summary"]
        assert fleet_summary["served"] > 0
        assert fleet_summary["shards"] == 2
