"""RunRecorder tests: outcomes, degradation, children, declared failure."""

import pytest

from repro.runs.recorder import RunRecorder
from repro.runs.store import RunStore


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "runs.db")


def only_run(db_path, subcommand=None):
    with RunStore(db_path) as store:
        rows = store.list_runs(subcommand=subcommand, limit=10)
        assert len(rows) == 1
        return rows[0]


class TestOutcomes:
    def test_clean_exit_records_ok(self, db_path, tmp_path):
        artifact = tmp_path / "out.json"
        with RunRecorder("bench", {"scale": "tiny"}, db_path=db_path,
                         seed=5) as run:
            artifact.write_text("{}\n")
            run.add_artifact(str(artifact))
            run.set_summary({"kind": "bench"})
        row = only_run(db_path)
        assert row["outcome"] == "ok"
        assert row["seed"] == 5
        assert row["summary"] == {"kind": "bench"}
        with RunStore(db_path) as store:
            paths = [a["path"] for a in store.artifacts(row["id"])]
        assert paths == [str(artifact)]

    def test_exception_records_failed_and_propagates(self, db_path):
        with pytest.raises(ValueError, match="boom"):
            with RunRecorder("faults", {}, db_path=db_path):
                raise ValueError("boom")
        row = only_run(db_path)
        assert row["outcome"] == "failed"
        assert row["error"] == "ValueError: boom"

    def test_keyboard_interrupt_records_interrupted(self, db_path):
        with pytest.raises(KeyboardInterrupt):
            with RunRecorder("serve", {}, db_path=db_path):
                raise KeyboardInterrupt
        assert only_run(db_path)["outcome"] == "interrupted"

    def test_declared_failure_on_clean_exit(self, db_path):
        with RunRecorder("faults", {}, db_path=db_path) as run:
            run.record_failure("ceiling violated")
        assert run.failure == "ceiling violated"
        row = only_run(db_path)
        assert row["outcome"] == "failed"
        assert row["error"] == "ceiling violated"


class TestDegradation:
    def test_disabled_recorder_is_inert(self, db_path, tmp_path):
        with RunRecorder("bench", {}, db_path=db_path,
                         enabled=False) as run:
            run.add_artifact(str(tmp_path / "absent.json"))
            run.set_summary({"x": 1})
        assert run.run_id is None
        with RunStore(db_path) as store:
            assert store.list_runs() == []

    def test_unopenable_db_degrades_with_warning(self, tmp_path,
                                                 capsys):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory\n")
        bad = str(blocker / "runs.db")  # parent exists as a *file*
        with RunRecorder("bench", {}, db_path=bad) as run:
            pass
        assert run.enabled is False
        assert run.run_id is None
        assert "recording disabled" in capsys.readouterr().err

    def test_bad_artifact_path_warns_but_run_survives(self, db_path,
                                                      capsys):
        with RunRecorder("bench", {}, db_path=db_path) as run:
            run.add_artifact("/no/such/artifact.json")
        assert "could not register artifact" in capsys.readouterr().err
        assert only_run(db_path)["outcome"] == "ok"


class TestChildren:
    def test_child_rows_link_to_parent(self, db_path):
        with RunRecorder("experiments", {"ids": ["fig1"]},
                         db_path=db_path) as parent:
            with parent.child("experiment", {"id": "fig1"}) as child:
                child.set_summary({"id": "fig1"})
        with RunStore(db_path) as store:
            children = store.children(parent.run_id)
        assert len(children) == 1
        assert children[0]["subcommand"] == "experiment"
        assert children[0]["parent_id"] == parent.run_id
        assert children[0]["outcome"] == "ok"

    def test_child_of_disabled_parent_is_inert(self, db_path):
        with RunRecorder("experiments", {}, db_path=db_path,
                         enabled=False) as parent:
            with parent.child("experiment", {"id": "fig1"}) as child:
                pass
        assert child.run_id is None
        with RunStore(db_path) as store:
            assert store.list_runs() == []
