"""Cross-run reporting tests: DB-only payloads and their renderings."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.runs.report import (
    bench_run_summary,
    bench_trend,
    campaigns_payload,
    compare_bench_runs,
    pipeline_payload,
    render_bench_delta,
    render_bench_trend,
    render_campaigns,
    render_pipeline,
    render_runs,
    runs_payload,
)
from repro.runs.store import RunStore


@pytest.fixture
def store(tmp_path):
    with RunStore(str(tmp_path / "runs.db")) as opened:
        yield opened


def seed_bench(store, throughputs, scale="tiny"):
    run_id = store.begin_run("bench", {"scale": scale}, seed=0)
    store.finish_run(run_id, "ok", summary={
        "kind": "bench", "scale": scale, "date": "20260808",
        "workloads": {name: {"throughput_per_s": value,
                             "unit": "trials"}
                      for name, value in throughputs.items()}})
    time.sleep(0.01)  # started_at strictly orders the runs
    return run_id


class TestBenchRunSummary:
    def test_compacts_a_full_report(self):
        report = {"scale": "tiny", "date": "20260808",
                  "workloads": [
                      {"name": "mc.fast", "throughput_per_s": 100.0,
                       "unit": "trials", "wall_s": 1.0},
                  ]}
        summary = bench_run_summary(report)
        assert summary == {
            "kind": "bench", "scale": "tiny", "date": "20260808",
            "workloads": {"mc.fast": {"throughput_per_s": 100.0,
                                      "unit": "trials"}}}


class TestCompareBenchRuns:
    def test_defaults_pick_latest_pair_same_scale(self, store):
        base = seed_bench(store, {"mc.fast": 100.0})
        seed_bench(store, {"mc.fast": 400.0}, scale="smoke")
        cand = seed_bench(store, {"mc.fast": 150.0})
        comparison = compare_bench_runs(store)
        assert comparison["candidate"]["id"] == cand
        assert comparison["baseline"]["id"] == base  # smoke run skipped
        (row,) = comparison["rows"]
        assert row["delta_pct"] == pytest.approx(50.0)

    def test_explicit_prefixes(self, store):
        base = seed_bench(store, {"mc.fast": 100.0})
        cand = seed_bench(store, {"mc.fast": 90.0})
        comparison = compare_bench_runs(store, baseline=base[:10],
                                        candidate=cand[:10])
        assert comparison["rows"][0]["delta_pct"] == pytest.approx(-10.0)

    def test_workload_set_changes_reported(self, store):
        seed_bench(store, {"mc.fast": 100.0, "old.only": 5.0})
        seed_bench(store, {"mc.fast": 100.0, "new.only": 7.0})
        comparison = compare_bench_runs(store)
        assert comparison["missing_in_candidate"] == ["old.only"]
        assert comparison["new_in_candidate"] == ["new.only"]
        rendered = render_bench_delta(comparison)
        assert "missing in candidate: old.only" in rendered
        assert "new in candidate: new.only" in rendered

    def test_empty_db_is_a_clear_error(self, store):
        with pytest.raises(ConfigurationError,
                           match="no recorded successful bench run"):
            compare_bench_runs(store)

    def test_single_run_is_a_clear_error(self, store):
        seed_bench(store, {"mc.fast": 100.0})
        with pytest.raises(ConfigurationError, match="no recorded"):
            compare_bench_runs(store)

    def test_non_bench_ref_rejected(self, store):
        run_id = store.begin_run("faults", {})
        store.finish_run(run_id, "ok")
        with pytest.raises(ConfigurationError, match="not a bench run"):
            compare_bench_runs(store, candidate=run_id)

    def test_render_contains_both_ids_and_delta(self, store):
        base = seed_bench(store, {"mc.fast": 100.0})
        cand = seed_bench(store, {"mc.fast": 150.0})
        rendered = render_bench_delta(compare_bench_runs(store))
        assert base[:12] in rendered and cand[:12] in rendered
        assert "+50.0%" in rendered
        assert "scale=tiny" in rendered


class TestRunsListing:
    def test_payload_includes_artifacts_and_sweeps(self, store,
                                                   tmp_path):
        run_id = store.begin_run("bench", {}, seed=1)
        artifact = tmp_path / "a.json"
        artifact.write_text("{}\n")
        store.add_artifact(run_id, str(artifact))
        store.finish_run(run_id, "ok")
        rows = runs_payload(store)
        assert rows[0]["id"] == run_id
        assert len(rows[0]["artifacts"]) == 1
        rendered = render_runs(rows)
        assert run_id[:12] in rendered
        assert "bench" in rendered

    def test_filters_apply(self, store):
        ok = store.begin_run("bench", {})
        store.finish_run(ok, "ok")
        bad = store.begin_run("faults", {})
        store.finish_run(bad, "failed", error="x")
        assert [r["id"] for r in runs_payload(store,
                                              subcommand="bench")] == [ok]
        assert [r["id"] for r in runs_payload(store,
                                              outcome="failed")] == [bad]


class TestPipelinePayload:
    def test_latest_pipeline_with_steps(self, store):
        pipeline_id = store.begin_run("pipeline", {"pipeline": "night"})
        step = store.begin_run("bench", {"step": "b1"},
                               parent_id=pipeline_id)
        store.finish_run(step, "ok")
        store.finish_run(pipeline_id, "ok")
        payload = pipeline_payload(store)
        assert payload["pipeline"]["id"] == pipeline_id
        assert [s["id"] for s in payload["steps"]] == [step]
        rendered = render_pipeline(payload)
        assert "night" in rendered and "b1" in rendered

    def test_error_rendered(self, store):
        pipeline_id = store.begin_run("pipeline", {"pipeline": "p"})
        store.finish_run(pipeline_id, "failed", error="step x failed")
        assert "error: step x failed" in \
            render_pipeline(pipeline_payload(store))

    def test_no_pipeline_is_a_clear_error(self, store):
        with pytest.raises(ConfigurationError, match="no recorded"):
            pipeline_payload(store)

    def test_non_pipeline_ref_rejected(self, store):
        run_id = store.begin_run("bench", {})
        store.finish_run(run_id, "ok")
        with pytest.raises(ConfigurationError, match="not a pipeline"):
            pipeline_payload(store, run_id)


class TestCampaigns:
    def test_faults_and_chaos_rows_merge(self, store):
        faults = store.begin_run("faults", {})
        store.finish_run(faults, "ok", summary={
            "kind": "fault-campaign", "trials": 4,
            "violation_rate": 0.25, "availability": 0.9,
            "mean_served": 50.0})
        time.sleep(0.01)
        chaos = store.begin_run("chaos", {})
        store.finish_run(chaos, "failed", summary={
            "kind": "chaos", "scenarios": ["kill-mid-batch"],
            "passed": False, "violations": 1}, error="violated")
        rows = campaigns_payload(store)
        assert [row["id"] for row in rows] == [chaos, faults]
        rendered = render_campaigns(rows)
        assert "viol 25.00%" in rendered
        assert "violations 1" in rendered


class TestBenchTrend:
    def test_oldest_first_with_missing_slots(self, store):
        seed_bench(store, {"mc.fast": 100.0})
        seed_bench(store, {"mc.fast": 120.0, "mc.slow": 10.0})
        seed_bench(store, {"mc.fast": 150.0, "mc.slow": 12.0})
        trend = bench_trend(store)
        assert trend["kind"] == "bench-trend"
        assert trend["scale"] == "tiny"
        assert len(trend["runs"]) == 3
        assert trend["workloads"]["mc.fast"]["throughput_per_s"] \
            == [100.0, 120.0, 150.0]
        # The workload that joined late reads None in its missing slot.
        assert trend["workloads"]["mc.slow"]["throughput_per_s"] \
            == [None, 10.0, 12.0]

    def test_scale_filter_and_limit(self, store):
        for value in (100.0, 110.0, 120.0):
            seed_bench(store, {"mc.fast": value})
        seed_bench(store, {"mc.fast": 900.0}, scale="smoke")
        trend = bench_trend(store, scale="tiny", limit=2)
        assert len(trend["runs"]) == 2
        assert trend["workloads"]["mc.fast"]["throughput_per_s"] \
            == [110.0, 120.0]
        smoke = bench_trend(store, scale="smoke")
        assert smoke["workloads"]["mc.fast"]["throughput_per_s"] \
            == [900.0]

    def test_default_scale_follows_latest_run(self, store):
        seed_bench(store, {"mc.fast": 100.0}, scale="tiny")
        seed_bench(store, {"mc.fast": 900.0}, scale="smoke")
        assert bench_trend(store)["scale"] == "smoke"

    def test_empty_db_is_a_clear_error(self, store):
        with pytest.raises(ConfigurationError):
            bench_trend(store)

    def test_render_shows_sparkline_and_delta(self, store):
        for value in (100.0, 130.0, 160.0):
            seed_bench(store, {"mc.fast": value})
        text = render_bench_trend(bench_trend(store))
        assert "mc.fast" in text
        assert any(ch in text for ch in "▁▂▃▄▅▆▇█")
        assert "+60.0%" in text
        assert "160" in text


class TestPipelineShardChildren:
    def _pipeline_with_fleet_step(self, store):
        pipeline_id = store.begin_run("pipeline", {"file": "c.toml"})
        step_id = store.begin_run("fleet", {"shards": 2},
                                  parent_id=pipeline_id)
        for shard, requests in enumerate((12, 8)):
            child = store.begin_run("fleet-shard", {"shard": shard},
                                    parent_id=step_id)
            store.finish_run(child, "ok", summary={
                "kind": "fleet-shard", "shard": shard,
                "requests": requests, "share": requests / 20,
                "restarts": shard})
        store.finish_run(step_id, "ok",
                         summary={"kind": "fleet", "requests": 20})
        store.finish_run(pipeline_id, "ok",
                         summary={"kind": "pipeline", "steps": 1})
        return pipeline_id

    def test_payload_carries_shard_children(self, store):
        self._pipeline_with_fleet_step(store)
        payload = pipeline_payload(store)
        step = payload["steps"][0]
        assert [c["summary"]["shard"] for c in step["children"]] == [0, 1]
        assert step["children"][0]["summary"]["requests"] == 12

    def test_render_shows_shard_breakdown(self, store):
        self._pipeline_with_fleet_step(store)
        text = render_pipeline(pipeline_payload(store))
        assert "shard 0" in text and "shard 1" in text
        assert "12 req" in text
        assert "1 restart" in text
