"""CLI integration for run recording, pipelines, and cross-run reports."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli.main import main
from repro.runs.store import RunStore, sha256_file

SRC_ROOT = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [SRC_ROOT, env.get("PYTHONPATH")]))
    return env


def seed_bench(db_path, throughputs, scale="tiny"):
    with RunStore(db_path) as store:
        run_id = store.begin_run("bench", {"scale": scale}, seed=0)
        store.finish_run(run_id, "ok", summary={
            "kind": "bench", "scale": scale, "date": "20260808",
            "workloads": {name: {"throughput_per_s": value,
                                 "unit": "trials"}
                          for name, value in throughputs.items()}})
    time.sleep(0.01)
    return run_id


class TestRecordingDefaults:
    def test_design_save_records_run_and_artifact(self, capsys,
                                                  tmp_path):
        target = tmp_path / "design.json"
        db = tmp_path / "reg.db"
        code, _, _ = run_cli(
            capsys, "design", "--alpha", "10", "--beta", "8",
            "--bound", "200", "--k-fraction", "0.1",
            "--paper-criteria", "--save", str(target),
            "--runs-db", str(db))
        assert code == 0
        with RunStore(str(db)) as store:
            (row,) = store.list_runs(subcommand="design")
            assert row["outcome"] == "ok"
            assert row["params"]["alpha"] == 10.0
            assert row["params"]["save"] == str(target)
            (artifact,) = store.artifacts(row["id"])
        assert artifact["path"] == str(target)
        assert artifact["sha256"] == sha256_file(str(target))

    def test_env_var_default_db(self, capsys, tmp_path, monkeypatch):
        db = tmp_path / "env.db"
        monkeypatch.setenv("REPRO_RUNS_DB", str(db))
        code, _, _ = run_cli(
            capsys, "design", "--alpha", "10", "--beta", "8",
            "--bound", "200", "--k-fraction", "0.1",
            "--paper-criteria", "--save", str(tmp_path / "d.json"))
        assert code == 0
        with RunStore(str(db)) as store:
            assert len(store.list_runs(subcommand="design")) == 1

    def test_no_record_opts_out(self, capsys, tmp_path):
        db = tmp_path / "reg.db"
        code, _, _ = run_cli(
            capsys, "design", "--alpha", "10", "--beta", "8",
            "--bound", "200", "--k-fraction", "0.1",
            "--paper-criteria", "--save", str(tmp_path / "d.json"),
            "--runs-db", str(db), "--no-record")
        assert code == 0
        assert not db.exists()

    def test_faults_campaign_records_summary(self, capsys, tmp_path):
        db = tmp_path / "reg.db"
        code, _, _ = run_cli(
            capsys, "faults", "--alpha", "10", "--beta", "8",
            "--bound", "200", "--k-fraction", "0.1",
            "--paper-criteria", "--trials", "2", "--seed", "0",
            "--runs-db", str(db))
        assert code == 0
        with RunStore(str(db)) as store:
            (row,) = store.list_runs(subcommand="faults")
        assert row["outcome"] == "ok"
        assert row["seed"] == 0
        assert row["summary"]["kind"] == "fault-campaign"
        assert row["summary"]["trials"] == 2

    def test_experiments_record_parent_and_children(self, capsys,
                                                    tmp_path):
        db = tmp_path / "reg.db"
        code, _, _ = run_cli(capsys, "experiments", "fig1", "fig10",
                             "--runs-db", str(db))
        assert code == 0
        with RunStore(str(db)) as store:
            (parent,) = store.list_runs(subcommand="experiments")
            children = store.children(parent["id"])
        assert parent["outcome"] == "ok"
        assert parent["summary"]["ids"] == ["fig1", "fig10"]
        assert [c["params"]["id"] for c in children] == \
            ["fig1", "fig10"]
        assert all(c["outcome"] == "ok" for c in children)


class TestConcurrentInvocations:
    def test_two_simultaneous_cli_runs_both_record(self, tmp_path):
        """Two racing CLI processes sharing one registry each get their
        own run row and artifact - nothing is lost to locking."""
        db = str(tmp_path / "shared.db")
        procs = []
        for index in range(2):
            target = tmp_path / f"design-{index}.json"
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "design",
                 "--alpha", "10", "--beta", "8", "--bound", "200",
                 "--k-fraction", "0.1", "--paper-criteria",
                 "--save", str(target), "--runs-db", db],
                env=cli_env(), stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL))
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        with RunStore(db) as store:
            rows = store.list_runs(subcommand="design")
            artifacts = [store.artifacts(row["id"]) for row in rows]
        assert len(rows) == 2
        assert len({row["id"] for row in rows}) == 2
        assert all(row["outcome"] == "ok" for row in rows)
        assert all(len(found) == 1 for found in artifacts)

    def test_sigkilled_serve_is_listed_interrupted(self, capsys,
                                                   tmp_path):
        """A SIGKILL'd CLI run is later reported ``interrupted``."""
        db = str(tmp_path / "reg.db")
        ready = tmp_path / "ready"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--ledger", str(tmp_path / "ledger"),
             "--ready-file", str(ready), "--runs-db", db],
            env=cli_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 30
            while not ready.exists():
                assert time.monotonic() < deadline, "serve never ready"
                assert proc.poll() is None, "serve died early"
                time.sleep(0.05)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        code, out, _ = run_cli(capsys, "report", "runs",
                               "--runs-db", db)
        assert code == 0
        assert "interrupted" in out
        with RunStore(db) as store:
            (row,) = store.list_runs(subcommand="serve")
        assert row["outcome"] == "interrupted"


class TestReportCommand:
    def test_bench_report_from_db_alone(self, capsys, tmp_path):
        """The cross-run bench comparison needs no artifact file."""
        db = str(tmp_path / "reg.db")
        seed_bench(db, {"mc.fast": 100.0})
        seed_bench(db, {"mc.fast": 150.0})
        code, out, _ = run_cli(capsys, "report", "bench",
                               "--runs-db", db)
        assert code == 0
        assert "+50.0%" in out
        code, out, _ = run_cli(capsys, "report", "bench", "--json",
                               "--runs-db", db)
        assert code == 0
        payload = json.loads(out)
        assert payload["kind"] == "bench-delta"
        assert payload["rows"][0]["delta_pct"] == pytest.approx(50.0)

    def test_bench_report_empty_db_errors(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "report", "bench",
                               "--runs-db", str(tmp_path / "empty.db"))
        assert code == 1
        assert "no recorded successful bench run" in err

    def test_runs_listing_and_filters(self, capsys, tmp_path):
        db = str(tmp_path / "reg.db")
        seed_bench(db, {"mc.fast": 100.0})
        code, out, _ = run_cli(capsys, "report", "runs",
                               "--runs-db", db)
        assert code == 0
        assert "recorded runs" in out
        code, out, _ = run_cli(capsys, "report", "runs",
                               "--subcommand", "faults",
                               "--runs-db", db)
        assert code == 0
        assert "most recent 0" in out

    def test_campaigns_view(self, capsys, tmp_path):
        db = str(tmp_path / "reg.db")
        with RunStore(db) as store:
            run_id = store.begin_run("faults", {})
            store.finish_run(run_id, "ok", summary={
                "kind": "fault-campaign", "trials": 2,
                "violation_rate": 0.0, "availability": 0.99,
                "mean_served": 10.0})
        code, out, _ = run_cli(capsys, "report", "campaigns",
                               "--runs-db", db)
        assert code == 0
        assert "viol 0.00%" in out


class TestPipelineCommand:
    def test_plan_then_run_then_report(self, capsys, tmp_path):
        db = str(tmp_path / "reg.db")
        seed_bench(db, {"mc.fast": 100.0})
        seed_bench(db, {"mc.fast": 120.0})
        settings = tmp_path / "p.toml"
        settings.write_text("""\
[pipeline]
name = "cli-e2e"
seed = 2
[steps.figs]
kind = "experiments"
ids = ["fig1"]
[steps.delta]
kind = "report"
after = ["figs"]
""")
        code, out, _ = run_cli(capsys, "pipeline", "plan",
                               str(settings))
        assert code == 0
        assert "figs: experiments" in out
        assert "delta: report" in out

        workdir = str(tmp_path / "out")
        code, out, _ = run_cli(capsys, "pipeline", "run",
                               str(settings), "--workdir", workdir,
                               "--runs-db", db)
        assert code == 0
        assert "pipeline 'cli-e2e' ok" in out

        code, out, _ = run_cli(capsys, "report", "pipeline",
                               "--runs-db", db)
        assert code == 0
        assert "cli-e2e" in out
        assert out.count(" ok") >= 2  # pipeline row and step rows

    def test_failed_pipeline_exits_1(self, capsys, tmp_path):
        settings = tmp_path / "p.toml"
        settings.write_text("""\
[pipeline]
name = "doomed"
[steps.delta]
kind = "report"
""")
        code, _, err = run_cli(
            capsys, "pipeline", "run", str(settings),
            "--workdir", str(tmp_path / "out"),
            "--runs-db", str(tmp_path / "reg.db"))
        assert code == 1
        assert "FAILED" in err

    def test_bad_settings_exit_1_with_message(self, capsys, tmp_path):
        settings = tmp_path / "broken.toml"
        settings.write_text("[pipeline]\nname = \"x\"\n"
                            "[steps.s]\nkind = \"bogus\"\n")
        code, _, err = run_cli(
            capsys, "pipeline", "run", str(settings),
            "--runs-db", str(tmp_path / "reg.db"))
        assert code == 1
        assert "unknown kind" in err


@pytest.mark.slow
class TestBenchCompareAuto:
    def test_auto_resolves_recorded_baseline(self, capsys, tmp_path):
        db = str(tmp_path / "reg.db")
        baseline = tmp_path / "BENCH_base.json"
        code, _, _ = run_cli(
            capsys, "bench", "--scale", "tiny", "--repeats", "1",
            "--out", str(baseline), "--runs-db", db)
        assert code == 0
        # The recorded run registered the report artifact and embedded
        # provenance in the payload itself.
        payload = json.loads(baseline.read_text())
        assert payload["provenance"]["host"]
        with RunStore(db) as store:
            (row,) = store.list_runs(subcommand="bench")
            (artifact,) = store.artifacts(row["id"])
        assert row["summary"]["workloads"]
        assert artifact["sha256"] == sha256_file(str(baseline))

        code, out, _ = run_cli(
            capsys, "bench", "--scale", "tiny", "--repeats", "1",
            "--compare", "auto", "--compare-threshold", "0.99",
            "--runs-db", db)
        assert code == 0
        assert "--compare auto: baseline is run" in out
        assert row["id"][:12] in out

    def test_auto_with_empty_db_is_a_clear_error(self, capsys,
                                                 tmp_path):
        code, _, err = run_cli(
            capsys, "bench", "--scale", "tiny", "--repeats", "1",
            "--compare", "auto",
            "--runs-db", str(tmp_path / "empty.db"))
        assert code == 2
        assert "no successful bench run" in err
        with RunStore(str(tmp_path / "empty.db")) as store:
            (row,) = store.list_runs(subcommand="bench")
        assert row["outcome"] == "failed"  # the gate failure is recorded


class TestBenchTrendCLI:
    def test_trend_table_and_json(self, capsys, tmp_path):
        db = str(tmp_path / "runs.db")
        seed_bench(db, {"mc.fast": 100.0})
        seed_bench(db, {"mc.fast": 150.0})
        code, out, _ = run_cli(capsys, "report", "bench", "--trend",
                               "--runs-db", db)
        assert code == 0
        assert "mc.fast" in out
        assert any(ch in out for ch in "▁▂▃▄▅▆▇█")
        assert "+50.0%" in out
        code, out, _ = run_cli(capsys, "report", "bench", "--trend",
                               "--json", "--runs-db", db)
        assert code == 0
        trend = json.loads(out)
        assert trend["workloads"]["mc.fast"]["throughput_per_s"] \
            == [100.0, 150.0]


class TestRunsGCCLI:
    def test_dry_run_default_then_apply(self, capsys, tmp_path):
        db = str(tmp_path / "runs.db")
        with RunStore(db) as store:
            old = store.begin_run("bench", {})
            store.finish_run(old, "ok")
            store._conn.execute(
                "UPDATE runs SET started_at=started_at-864000, "
                "finished_at=finished_at-864000 WHERE id=?", (old,))
            store._conn.commit()
            kept = store.begin_run("bench", {})
            store.finish_run(kept, "ok")
        code, out, _ = run_cli(capsys, "runs", "gc", "--keep-days", "1",
                               "--keep-last", "1", "--runs-db", db)
        assert code == 0
        assert "dry run" in out
        assert old[:12] in out
        with RunStore(db) as store:
            assert store.get_run(old)["outcome"] == "ok"
        code, out, _ = run_cli(capsys, "runs", "gc", "--keep-days", "1",
                               "--keep-last", "1", "--apply",
                               "--runs-db", db, "--json")
        assert code == 0
        report = json.loads(out)
        assert report["deleted_runs"] == [old]
        with RunStore(db) as store:
            with pytest.raises(Exception):
                store.get_run(old)
            assert store.get_run(kept)["outcome"] == "ok"


class TestCapacityCLI:
    def _seed_ledger(self, directory, accesses=10):
        from repro.service.client import tenant_population
        from repro.service.hub import WearHub
        from repro.service.ledger import WearLedger

        ledger = WearLedger(directory)
        hub = WearHub(ledger)
        hub.recover()
        population = tenant_population(3, seed=17, alpha=4.0, beta=5.0)
        for payload in population:
            assert hub.provision(payload)["status"] == "ok"
        for index in range(accesses * len(population)):
            hub.serve_round([f"tenant-{index % len(population):03d}"])
        ledger.close()
        return [payload["tenant"] for payload in population]

    def test_fit_from_ledger_records_run(self, capsys, tmp_path):
        ledger_dir = str(tmp_path / "ledger")
        tenants = self._seed_ledger(ledger_dir)
        db = str(tmp_path / "runs.db")
        code, out, _ = run_cli(capsys, "capacity", "fit",
                               "--ledger", ledger_dir, "--json",
                               "--runs-db", db)
        assert code == 0
        payload = json.loads(out)
        assert payload["estimate"]["alpha"] > 0
        assert set(payload["forecasts"]) == set(tenants)
        with RunStore(db) as store:
            row = store.latest_run(subcommand="capacity")
            assert row["outcome"] == "ok"
            assert row["summary"]["kind"] == "capacity-fit"
            assert row["summary"]["tenants"] == len(tenants)

    def test_fit_requires_exactly_one_source(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "capacity", "fit", "--no-record")
        assert code == 1
        assert "exactly one" in err
        code, _, err = run_cli(
            capsys, "capacity", "fit", "--no-record",
            "--ledger", str(tmp_path / "a"),
            "--root", str(tmp_path / "b"))
        assert code == 1

    def test_calibrate_gate_passes_at_pinned_defaults(self, capsys,
                                                      tmp_path):
        db = str(tmp_path / "runs.db")
        code, out, _ = run_cli(capsys, "capacity", "calibrate",
                               "--gate", "--runs-db", db)
        assert code == 0
        assert "calibration gate: PASS" in out
        with RunStore(db) as store:
            assert store.latest_run(
                subcommand="capacity")["outcome"] == "ok"
