"""Provenance helper tests: git facts, host facts, caching."""

import subprocess

from repro.runs.provenance import collect_provenance, git_provenance


class TestGitProvenance:
    def test_inside_a_repo(self, tmp_path):
        subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
        (tmp_path / "file.txt").write_text("hello\n")
        subprocess.run(["git", "-C", str(tmp_path), "add", "."],
                       check=True)
        subprocess.run(
            ["git", "-C", str(tmp_path), "-c", "user.email=t@t",
             "-c", "user.name=t", "commit", "-q", "-m", "seed"],
            check=True)
        clean = git_provenance(str(tmp_path), refresh=True)
        assert clean["rev"] and len(clean["rev"]) == 40
        assert clean["dirty"] is False
        (tmp_path / "file.txt").write_text("changed\n")
        assert git_provenance(str(tmp_path),
                              refresh=True)["dirty"] is True

    def test_outside_a_repo_degrades_to_none(self, tmp_path):
        facts = git_provenance(str(tmp_path), refresh=True)
        assert facts == {"rev": None, "dirty": None}

    def test_cached_between_calls(self, tmp_path):
        from repro.runs.provenance import _cached_git

        first = git_provenance(str(tmp_path), refresh=True)
        hits = _cached_git.cache_info().hits
        assert git_provenance(str(tmp_path)) == first
        assert _cached_git.cache_info().hits == hits + 1


class TestCollectProvenance:
    def test_has_host_and_toolchain_facts(self):
        import numpy

        facts = collect_provenance()
        assert facts["host"]
        assert facts["pid"]
        assert facts["numpy"] == numpy.__version__
        assert facts["python"].count(".") >= 1
        assert set(facts) >= {"git_rev", "git_dirty", "platform",
                              "machine"}
