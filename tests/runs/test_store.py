"""Run-registry store tests: schema, queries, concurrency, crash-safety."""

import json
import multiprocessing
import os
import signal
import sqlite3
import subprocess
import sys
import time

import pytest

from repro.errors import ConfigurationError
from repro.runs.store import OUTCOMES, RunStore, params_digest, sha256_file

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture
def store(tmp_path):
    with RunStore(str(tmp_path / "runs.db")) as opened:
        yield opened


class TestBasics:
    def test_begin_finish_roundtrip(self, store):
        run_id = store.begin_run("bench", {"scale": "tiny"}, seed=7)
        row = store.get_run(run_id)
        assert row["outcome"] == "running"
        assert row["params"] == {"scale": "tiny"}
        assert row["seed"] == 7
        assert row["pid"] == os.getpid()
        store.finish_run(run_id, "ok", summary={"workloads": {}})
        row = store.get_run(run_id)
        assert row["outcome"] == "ok"
        assert row["summary"] == {"workloads": {}}
        assert row["finished_at"] >= row["started_at"]

    def test_run_ids_are_distinct_tokens(self, store):
        ids = {store.begin_run("bench", {}) for _ in range(20)}
        assert len(ids) == 20
        assert all(len(run_id) == 32 for run_id in ids)

    def test_finish_refuses_running_and_unknown(self, store):
        run_id = store.begin_run("bench", {})
        with pytest.raises(ConfigurationError):
            store.finish_run(run_id, "running")
        with pytest.raises(ConfigurationError):
            store.finish_run("nope", "ok")

    def test_outcomes_constant(self):
        assert OUTCOMES == ("running", "ok", "failed", "interrupted")

    def test_artifact_digest_and_dir(self, store, tmp_path):
        run_id = store.begin_run("bench", {})
        artifact = tmp_path / "report.json"
        artifact.write_text('{"a": 1}\n')
        record = store.add_artifact(run_id, str(artifact))
        assert record["sha256"] == sha256_file(str(artifact))
        assert record["bytes"] == artifact.stat().st_size
        directory = tmp_path / "ledger"
        directory.mkdir()
        store.add_artifact(run_id, str(directory))
        kinds = {a["kind"] for a in store.artifacts(run_id)}
        assert kinds == {"file", "dir"}

    def test_missing_artifact_raises(self, store):
        run_id = store.begin_run("bench", {})
        with pytest.raises(ConfigurationError):
            store.add_artifact(run_id, "/no/such/file.json")

    def test_find_run_prefix(self, store):
        run_id = store.begin_run("bench", {})
        assert store.find_run(run_id[:8])["id"] == run_id
        with pytest.raises(ConfigurationError):
            store.find_run("zz-no-such")

    def test_latest_run_filters(self, store):
        old = store.begin_run("bench", {"scale": "tiny"})
        store.finish_run(old, "ok")
        time.sleep(0.01)
        failed = store.begin_run("bench", {"scale": "tiny"})
        store.finish_run(failed, "failed", error="boom")
        assert store.latest_run("bench")["id"] == old
        assert store.latest_run("bench", outcome=None)["id"] == failed
        assert store.latest_run("bench", exclude=old,
                                outcome="ok") is None
        assert store.latest_run(
            "bench", params_subset={"scale": "smoke"}) is None

    def test_params_digest_is_order_insensitive(self):
        assert params_digest({"a": 1, "b": 2}) == \
            params_digest({"b": 2, "a": 1})
        assert params_digest({"a": 1}) != params_digest({"a": 2})

    def test_newer_schema_refused(self, tmp_path):
        path = str(tmp_path / "runs.db")
        RunStore(path).close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE meta SET value='99' "
                         "WHERE key='schema_version'")
        conn.close()
        with pytest.raises(ConfigurationError, match="newer"):
            RunStore(path)


def _record_one(path: str, index: int) -> None:
    with RunStore(path) as store:
        run_id = store.begin_run("bench", {"writer": index}, seed=index)
        store.finish_run(run_id, "ok", summary={"writer": index})


class TestConcurrency:
    def test_simultaneous_writers_lose_no_rows(self, tmp_path):
        """Two (and more) simultaneous invocations each get their own
        row with a distinct id - the WAL + busy-timeout contract."""
        path = str(tmp_path / "runs.db")
        RunStore(path).close()
        context = multiprocessing.get_context("spawn")
        writers = 8
        procs = [context.Process(target=_record_one, args=(path, index))
                 for index in range(writers)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        with RunStore(path) as store:
            rows = store.list_runs(subcommand="bench", limit=100)
        assert len(rows) == writers
        assert len({row["id"] for row in rows}) == writers
        assert sorted(row["params"]["writer"] for row in rows) == \
            list(range(writers))
        assert all(row["outcome"] == "ok" for row in rows)


_CRASH_CHILD = """\
import sys
from repro.runs.store import RunStore
with RunStore(sys.argv[1]) as store:
    store.begin_run("faults", {"trials": 100}, seed=3)
print("STARTED", flush=True)
import time
time.sleep(60)
"""


class TestCrashSafety:
    def test_sigkilled_run_is_listed_interrupted(self, tmp_path):
        """A SIGKILL'd process can't finalize its row; the next reader
        sweeps it to ``interrupted``."""
        path = str(tmp_path / "runs.db")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.path.dirname(__file__),
                                       "..", "..", "src"),
                          env.get("PYTHONPATH")]))
        proc = subprocess.Popen(
            [sys.executable, "-c", _CRASH_CHILD, path],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            assert proc.stdout.readline().strip() == "STARTED"
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            proc.stdout.close()
            if proc.poll() is None:
                proc.kill()
        with RunStore(path) as store:
            row = store.list_runs(subcommand="faults")[0]
            assert row["outcome"] == "running"  # crash left it dangling
            assert store.resolve_interrupted() == 1
            row = store.list_runs(subcommand="faults")[0]
        assert row["outcome"] == "interrupted"
        assert "died" in row["error"]

    def test_live_running_rows_are_not_swept(self, tmp_path):
        path = str(tmp_path / "runs.db")
        with RunStore(path) as store:
            store.begin_run("bench", {})  # this process: alive
            assert store.resolve_interrupted() == 0
            assert store.list_runs()[0]["outcome"] == "running"


class TestRowContents:
    def test_provenance_columns_recorded(self, store):
        run_id = store.begin_run("bench", {}, provenance={
            "git_rev": "abc123", "git_dirty": True, "host": "h1",
            "pid": 42, "python": "3.12.0", "numpy": "2.0",
            "platform": "linux"})
        row = store.get_run(run_id)
        assert row["git_rev"] == "abc123"
        assert row["git_dirty"] is True
        assert row["host"] == "h1"
        assert row["pid"] == 42

    def test_params_json_roundtrips_nested(self, store):
        params = {"steps": ["a", "b"], "nested": {"x": 1.5},
                  "flag": True, "none": None}
        run_id = store.begin_run("pipeline", params)
        assert store.get_run(run_id)["params"] == json.loads(
            json.dumps(params))


class TestGC:
    def _finished(self, store, subcommand="bench", *, age_days=0.0,
                  parent_id=None):
        run_id = store.begin_run(subcommand, {}, parent_id=parent_id)
        store.finish_run(run_id, "ok")
        if age_days:
            shift = age_days * 86400.0
            store._conn.execute(
                "UPDATE runs SET started_at=started_at-?, "
                "finished_at=finished_at-? WHERE id=?",
                (shift, shift, run_id))
            store._conn.commit()
        return run_id

    def test_no_bounds_touches_no_runs(self, store):
        self._finished(store, age_days=400)
        report = store.gc()
        assert report["deleted_runs"] == []
        assert report["dry_run"] is True

    def test_dry_run_is_the_default_and_deletes_nothing(self, store):
        old = self._finished(store, age_days=30)
        report = store.gc(keep_days=7, keep_last=0)
        assert report["deleted_runs"] == [old]
        assert store.get_run(old)["outcome"] == "ok"

    def test_apply_deletes_runs_and_their_artifacts(self, store,
                                                    tmp_path):
        old = self._finished(store, age_days=30)
        artifact = tmp_path / "old.json"
        artifact.write_text("{}")
        store.add_artifact(old, str(artifact))
        kept = self._finished(store, age_days=1)
        report = store.gc(keep_days=7, keep_last=0, dry_run=False)
        assert report["deleted_runs"] == [old]
        assert report["deleted_artifact_rows"] == 1
        with pytest.raises(ConfigurationError):
            store.get_run(old)
        assert store.get_run(kept)["outcome"] == "ok"

    def test_keep_last_protects_newest_per_subcommand(self, store):
        bench_runs = [self._finished(store, age_days=30 - i)
                      for i in range(3)]
        fleet = self._finished(store, "fleet-run", age_days=30)
        report = store.gc(keep_days=7, keep_last=1, dry_run=False)
        # The newest bench survives its rank; the only fleet run too.
        assert set(report["deleted_runs"]) == set(bench_runs[:2])
        assert store.get_run(bench_runs[2])["outcome"] == "ok"
        assert store.get_run(fleet)["outcome"] == "ok"

    def test_running_rows_are_never_deleted(self, store):
        run_id = store.begin_run("bench", {})
        report = store.gc(keep_days=0, keep_last=0, dry_run=False)
        assert run_id not in report["deleted_runs"]
        assert store.get_run(run_id)["outcome"] == "running"

    def test_linked_trees_live_or_die_together(self, store):
        # Old parent with a *young* child: both survive.
        old_parent = self._finished(store, "fleet-run", age_days=30)
        young_child = self._finished(store, "fleet-shard",
                                     parent_id=old_parent)
        # Old parent with old children: the whole tree goes.
        dead_parent = self._finished(store, "pipeline", age_days=40)
        dead_child = self._finished(store, "step", age_days=40,
                                    parent_id=dead_parent)
        report = store.gc(keep_days=7, keep_last=0, dry_run=False)
        assert set(report["deleted_runs"]) == {dead_parent, dead_child}
        assert store.get_run(old_parent)["outcome"] == "ok"
        assert store.get_run(young_child)["outcome"] == "ok"

    def test_dead_artifact_rows_pruned_for_survivors(self, store,
                                                     tmp_path):
        run_id = self._finished(store)
        gone = tmp_path / "gone.json"
        gone.write_text("{}")
        kept = tmp_path / "kept.json"
        kept.write_text("{}")
        store.add_artifact(run_id, str(gone))
        store.add_artifact(run_id, str(kept))
        gone.unlink()
        report = store.gc()
        assert [entry["path"] for entry in report["dead_artifacts"]] \
            == [str(gone)]
        assert len(store.artifacts(run_id)) == 2  # dry run: reported only
        store.gc(dry_run=False)
        assert [row["path"] for row in store.artifacts(run_id)] \
            == [str(kept)]

    def test_validation(self, store):
        with pytest.raises(ConfigurationError):
            store.gc(keep_days=-1)
        with pytest.raises(ConfigurationError):
            store.gc(keep_last=-1)
