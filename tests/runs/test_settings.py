"""Pipeline settings tests: parsing, validation, DAG order, fallback."""

import pytest

from repro.errors import ConfigurationError
from repro.runs.settings import (
    _parse_toml_fallback,
    load_settings,
    parse_settings,
)

VALID = """\
[pipeline]
name = "nightly"
seed = 3
workdir = "night-out"

[steps.bench-a]
kind = "bench"
scale = "tiny"

[steps.campaign]
kind = "faults"
after = ["bench-a"]
trials = 2
alpha = 9.0

[steps.delta]
kind = "report"
after = ["bench-a", "campaign"]
"""


class TestParse:
    def test_valid_settings(self):
        settings = parse_settings(VALID)
        assert settings.name == "nightly"
        assert settings.seed == 3
        assert settings.workdir == "night-out"
        assert [step.name for step in settings.steps] == \
            ["bench-a", "campaign", "delta"]
        campaign = settings.steps[1]
        assert campaign.kind == "faults"
        assert campaign.after == ("bench-a",)
        assert campaign.params == {"trials": 2, "alpha": 9.0}

    def test_digest_is_text_identity(self):
        assert parse_settings(VALID).digest == \
            parse_settings(VALID).digest
        assert parse_settings(VALID).digest != \
            parse_settings(VALID + "\n# comment\n").digest

    def test_workdir_defaults_to_name(self):
        settings = parse_settings(
            '[pipeline]\nname = "p"\n[steps.s]\nkind = "bench"\n')
        assert settings.workdir == "p-out"

    def test_ordered_steps_respects_edges(self):
        text = """\
[pipeline]
name = "p"
[steps.late]
kind = "report"
after = ["early"]
[steps.early]
kind = "bench"
"""
        ordered = parse_settings(text).ordered_steps()
        assert [step.name for step in ordered] == ["early", "late"]

    @pytest.mark.parametrize("mutation, match", [
        ("", "pipeline"),                                  # no tables
        ('[pipeline]\nname = ""\n', "name"),
        ('[pipeline]\nname = "p"\n', "steps"),
        ('[pipeline]\nname = "p"\nseed = "x"\n'
         '[steps.s]\nkind = "bench"\n', "seed"),
        ('[pipeline]\nname = "p"\n[steps.s]\nkind = "nope"\n',
         "unknown kind"),
        ('[pipeline]\nname = "p"\n[steps.s]\nkind = "bench"\n'
         'after = ["ghost"]\n', "unknown steps"),
        ('[pipeline]\nname = "p"\n[steps.s]\nkind = "bench"\n'
         'after = ["s"]\n', "itself"),
    ])
    def test_invalid_settings_raise(self, mutation, match):
        with pytest.raises(ConfigurationError, match=match):
            parse_settings(mutation)

    def test_cycle_detected(self):
        text = """\
[pipeline]
name = "p"
[steps.a]
kind = "bench"
after = ["b"]
[steps.b]
kind = "report"
after = ["a"]
"""
        with pytest.raises(ConfigurationError, match="cycle"):
            parse_settings(text)

    def test_load_settings_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_settings(str(tmp_path / "absent.toml"))


class TestFallbackParser:
    """The 3.10 fallback must agree with tomllib on our subset."""

    def test_matches_tomllib_on_the_reference_file(self):
        tomllib = pytest.importorskip("tomllib")
        assert _parse_toml_fallback(VALID) == tomllib.loads(VALID)

    def test_scalars_arrays_and_comments(self):
        parsed = _parse_toml_fallback(
            'title = "a # not-comment"  # real comment\n'
            "count = 3\n"
            "rate = 0.5\n"
            "on = true\n"
            "off = false\n"
            'names = ["x", "y"]\n'
            "empty = []\n")
        assert parsed == {"title": "a # not-comment", "count": 3,
                          "rate": 0.5, "on": True, "off": False,
                          "names": ["x", "y"], "empty": []}

    def test_dotted_tables_nest(self):
        parsed = _parse_toml_fallback(
            "[steps.one]\nkind = \"bench\"\n"
            "[steps.two]\nkind = \"report\"\n")
        assert parsed == {"steps": {"one": {"kind": "bench"},
                                    "two": {"kind": "report"}}}

    def test_rejects_unsupported_constructs(self):
        with pytest.raises(ConfigurationError):
            _parse_toml_fallback("bad line without equals\n")
        with pytest.raises(ConfigurationError):
            _parse_toml_fallback("x = {inline = 1}\n")

    def test_parse_settings_via_fallback(self, monkeypatch):
        """Force the fallback path even on 3.11+."""
        import repro.runs.settings as settings_module

        monkeypatch.setattr(settings_module, "_load_toml",
                            settings_module._parse_toml_fallback)
        settings = settings_module.parse_settings(VALID)
        assert [step.name for step in settings.steps] == \
            ["bench-a", "campaign", "delta"]
