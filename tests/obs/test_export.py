"""Export formats: Prometheus exposition, timeline assembly, RSS probe."""

import json

from repro.obs.export import (
    _metric_name,
    follow_trace,
    merge_timelines,
    peak_rss_bytes,
    read_trace_events,
    read_wal_events,
    render_prometheus,
    write_timeline,
)
from repro.obs.recorder import MetricsRegistry


class TestPeakRss:
    def test_positive_and_plausible(self):
        rss = peak_rss_bytes()
        # A running CPython interpreter occupies at least a few MiB.
        assert rss > 4 * 2**20


class TestMetricNames:
    def test_sanitization(self):
        assert _metric_name("svc.queue_wait_s") == "repro_svc_queue_wait_s"
        assert _metric_name("fleet.shard0.up") == "repro_fleet_shard0_up"
        assert _metric_name("9lives") == "repro__9lives"


def _snapshot_with_samples():
    registry = MetricsRegistry()
    registry.inc("svc.requests", 5)
    registry.set_gauge("svc.depth", 2)
    for value in (0.001, 0.002, 0.004):
        registry.observe("svc.request_latency_s", value)
    return {
        "schema_version": 1,
        "kind": "fleet-snapshot",
        "wall_time": 123.0,
        "totals": {"shards": 2, "alive": 1, "requests": 5},
        "shards": [
            {"index": 0, "alive": True, "restarts": 1, "pid": 42,
             "peak_rss_bytes": 1000, "uptime_s": 2.5,
             "recovered_records": 3,
             "service": {"requests": 5, "rounds": 2, "queue_depth": 0}},
            {"index": 1, "alive": False, "restarts": 0,
             "error": "unreachable"},
        ],
        "tenants": {"tenant-000": {
            "shard": 0, "remaining_capacity": 17, "wear_cycles": 4,
            "lifetime_used_fraction": 0.25, "attempts": 5, "served": 4,
            "exhausted": False, "current_copy": 0, "dead_banks": 1,
            "remaining_bank_budgets": [6, 5, 6]}},
        "merged": registry.snapshot(),
    }


class TestRenderPrometheus:
    def test_exposition_covers_every_layer(self):
        text = render_prometheus(_snapshot_with_samples())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "repro_fleet_shards 2" in lines
        assert 'repro_shard_up{shard="0"} 1' in lines
        assert 'repro_shard_up{shard="1"} 0' in lines
        assert 'repro_shard_restarts{shard="0"} 1' in lines
        assert 'repro_shard_peak_rss_bytes{shard="0"} 1000' in lines
        assert ('repro_tenant_remaining_capacity'
                '{tenant="tenant-000",shard="0"} 17') in lines
        assert ('repro_tenant_remaining_bank_budget'
                '{tenant="tenant-000",shard="0",copy="1"} 5') in lines
        assert "repro_svc_requests_total 5" in lines
        assert "repro_svc_depth 2" in lines
        assert "repro_svc_request_latency_s_count 3" in lines
        quantiles = [line for line in lines
                     if line.startswith(
                         'repro_svc_request_latency_s{quantile=')]
        assert len(quantiles) == 3

    def test_dead_shard_and_empty_histogram_degrade(self):
        text = render_prometheus({
            "totals": {}, "shards": [], "tenants": {},
            "merged": {"counters": {}, "gauges": {},
                       "histograms": {"empty": {"count": 0}}}})
        assert "repro_empty_count 0" in text
        assert "repro_empty_sum" not in text


class TestTimelineReaders:
    def test_tolerates_torn_and_missing_files(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "a", "wall_time": 1.0}\n'
                        "not json\n"
                        '{"name": "b", "wall_time"')
        events = read_trace_events(str(path), source="s", shard=3)
        assert [event["name"] for event in events] == ["a"]
        assert events[0]["source"] == "s" and events[0]["shard"] == 3
        assert read_trace_events(str(tmp_path / "absent.jsonl")) == []

    def test_wal_events_span_archive_and_active(self, tmp_path):
        ledger = tmp_path / "ledger"
        archive = ledger / "archive"
        archive.mkdir(parents=True)
        (archive / "segment-000001.jsonl").write_text(
            json.dumps({"op": "provision", "tenant": "t", "seq": 1}) + "\n"
            + json.dumps({"op": "access", "tenant": "t", "rid": "r-1",
                          "trace": "tr-1", "seq": 2}) + "\n")
        (ledger / "wal.jsonl").write_text(
            json.dumps({"op": "access", "tenant": "t", "rid": "r-2",
                        "trace": "tr-2", "seq": 3}) + "\n"
            + '{"torn tail')
        events = read_wal_events(str(ledger), shard=1)
        assert [event["seq"] for event in events] == [1, 2, 3]
        assert all(event["kind"] == "wal" for event in events)
        assert events[1]["trace"] == "tr-1"
        assert events[2]["shard"] == 1


class TestMergeAndFollow:
    def _timeline(self):
        trace_events = [
            {"name": "client.request", "wall_time": 10.0,
             "attrs": {"trace": "tr-7", "tenant": "t"}},
            {"name": "svc.round", "wall_time": 11.0, "shard": 0,
             "attrs": {"first_seq": 5, "last_seq": 6,
                       "traces": ["tr-7"]}},
        ]
        wal_events = [
            {"kind": "wal", "seq": 5, "op": "access", "tenant": "t",
             "trace": "tr-7", "shard": 0},
            {"kind": "wal", "seq": 2, "op": "provision", "tenant": "t",
             "shard": 0},
        ]
        return merge_timelines(trace_events, wal_events)

    def test_wal_records_inherit_round_wall_time(self):
        merged = self._timeline()
        covered = next(event for event in merged
                       if event.get("seq") == 5)
        assert covered["wall_time"] == 11.0
        # Uncovered records sink to the epoch but keep seq order.
        assert merged[0]["seq"] == 2
        assert "wall_time" not in merged[0]

    def test_follow_trace_reconstructs_full_path(self):
        hops = follow_trace(self._timeline(), "tr-7")
        kinds = [hop.get("name") or hop.get("kind") for hop in hops]
        assert kinds == ["client.request", "svc.round", "wal"]
        assert follow_trace(self._timeline(), "tr-unknown") == []

    def test_write_timeline_round_trips(self, tmp_path):
        merged = self._timeline()
        out = tmp_path / "timeline.jsonl"
        count = write_timeline(merged, str(out))
        assert count == len(merged)
        lines = [json.loads(line)
                 for line in out.read_text().splitlines()]
        assert lines == merged


class TestCapacityGauges:
    def _snapshot_with_capacity(self):
        snapshot = _snapshot_with_samples()
        snapshot["capacity"] = {
            "estimate": {"alpha": 9.1, "beta": 5.2,
                         "observations": 40, "failures": 7},
            "forecasts": {"tenant-000": {
                "remaining_mean": 12.5, "remaining_median": 12.0,
                "p_exhaust": 0.75, "interval": [4.0, 21.0]}},
            "at_risk": ["tenant-000"],
            "remaining_mean_total": 12.5,
            "horizon": 10,
        }
        return snapshot

    def test_fleet_and_tenant_forecast_samples(self):
        lines = render_prometheus(
            self._snapshot_with_capacity()).splitlines()
        assert "repro_fleet_capacity_alpha 9.1" in lines
        assert "repro_fleet_capacity_failures 7" in lines
        assert "repro_fleet_capacity_at_risk 1" in lines
        assert "repro_fleet_capacity_remaining_mean_total 12.5" in lines
        assert ('repro_tenant_forecast_p_exhaust'
                '{tenant="tenant-000"} 0.75') in lines
        assert ('repro_tenant_forecast_interval_lo'
                '{tenant="tenant-000"} 4') in lines
        assert ('repro_tenant_forecast_interval_hi'
                '{tenant="tenant-000"} 21') in lines

    def test_absent_capacity_emits_no_capacity_samples(self):
        text = render_prometheus(_snapshot_with_samples())
        assert "capacity_alpha" not in text
        assert "forecast" not in text
