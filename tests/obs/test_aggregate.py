"""Fleet aggregation: exact snapshot merging and the top dashboard.

These tests drive :func:`build_fleet_snapshot` with synthetic shard
``metrics`` responses (its documented contract), so they need no
subprocesses; the live-fleet path is pinned by
``tests/service/test_fleet_obs.py``.
"""

from repro.obs.aggregate import (
    FLEET_SNAPSHOT_KIND,
    build_fleet_snapshot,
    fleet_capacity_outlook,
    render_fleet_top,
)
from repro.obs.recorder import MetricsRegistry


def _comparable(summary: dict) -> dict:
    return {key: value for key, value in summary.items()
            if key != "partials"}


def _response(index, samples, tenants, requests):
    registry = MetricsRegistry()
    registry.inc("svc.requests", requests)
    for sample in samples:
        registry.observe("svc.request_latency_s", sample)
    return {
        "status": "ok", "kind": "shard-metrics",
        "shard": {"pid": 100 + index, "peak_rss_bytes": 10_000_000,
                  "uptime_s": 5.0, "draining": False,
                  "recovered_records": 0, "obs_enabled": True},
        "service": {"requests": requests, "rounds": 2, "queue_depth": 0},
        "metrics": registry.snapshot(),
        "tenants": tenants,
    }


def _reports():
    return [
        {"index": 0, "alive": True, "restarts": 0,
         "ledger_dir": "/tmp/l0",
         "response": _response(0, [0.001, 0.004], {
             "tenant-000": {"remaining_capacity": 20, "served": 3,
                            "lifetime_used_fraction": 0.1,
                            "exhausted": False}}, 3)},
        {"index": 1, "alive": True, "restarts": 2,
         "ledger_dir": "/tmp/l1",
         "response": _response(1, [0.002, 0.008, 0.016], {
             "tenant-001": {"remaining_capacity": 5, "served": 9,
                            "lifetime_used_fraction": 0.8,
                            "exhausted": False},
             "tenant-002": {"remaining_capacity": 0, "served": 12,
                            "lifetime_used_fraction": 1.0,
                            "exhausted": True}}, 12)},
        {"index": 2, "alive": False, "restarts": 5,
         "ledger_dir": "/tmp/l2", "error": "TimeoutError: probe"},
    ]


class TestBuildFleetSnapshot:
    def test_shape_and_totals(self):
        snapshot = build_fleet_snapshot(_reports(), map_path="/tmp/f.json")
        assert snapshot["kind"] == FLEET_SNAPSHOT_KIND
        assert snapshot["map_path"] == "/tmp/f.json"
        totals = snapshot["totals"]
        assert totals["shards"] == 3
        assert totals["alive"] == 2
        assert totals["restarts"] == 7
        assert totals["tenants"] == 3
        assert totals["requests"] == 15
        assert totals["served"] == 24
        assert totals["exhausted"] == 1
        assert totals["remaining_capacity"] == 25
        dead = snapshot["shards"][2]
        assert dead["alive"] is False
        assert dead["error"] == "TimeoutError: probe"
        assert "service" not in dead

    def test_tenants_are_unioned_with_shard_attribution(self):
        snapshot = build_fleet_snapshot(_reports())
        assert snapshot["tenants"]["tenant-000"]["shard"] == 0
        assert snapshot["tenants"]["tenant-002"]["shard"] == 1

    def test_merged_percentiles_bit_identical_to_single_registry(self):
        snapshot = build_fleet_snapshot(_reports())
        reference = MetricsRegistry()
        reference.inc("svc.requests", 15)
        for sample in (0.001, 0.004, 0.002, 0.008, 0.016):
            reference.observe("svc.request_latency_s", sample)
        want = reference.snapshot()
        got = snapshot["merged"]
        assert got["counters"] == want["counters"]
        assert _comparable(got["histograms"]["svc.request_latency_s"]) \
            == _comparable(want["histograms"]["svc.request_latency_s"])


class TestRenderFleetTop:
    def test_dashboard_sections(self):
        snapshot = build_fleet_snapshot(_reports())
        text = render_fleet_top(snapshot)
        assert "fleet: 2/3 shards up" in text
        assert "DOWN" in text
        assert "request latency" in text
        # Most-worn tenant sorts first.
        assert text.index("tenant-002") < text.index("tenant-001") \
            < text.index("tenant-000")

    def test_tenant_cap_is_explicit(self):
        snapshot = build_fleet_snapshot(_reports())
        text = render_fleet_top(snapshot, max_tenants=2)
        assert "(+1 more tenants not shown)" in text

    def test_rate_line_from_previous_snapshot(self):
        previous = build_fleet_snapshot(_reports())
        previous["wall_time"] -= 2.0
        previous["totals"]["requests"] -= 10
        text = render_fleet_top(build_fleet_snapshot(_reports()),
                                previous)
        assert "req/s" in text

    def test_empty_fleet_renders(self):
        text = render_fleet_top(build_fleet_snapshot([]))
        assert text.startswith("fleet: 0/0 shards up")


class TestFleetCapacityOutlook:
    def _observations(self):
        from repro.capacity.estimator import observations_from_state
        from tests.capacity.conftest import worn_state

        state = worn_state(instances=8)
        return {f"tenant-{b:03d}": obs
                for b, obs in enumerate(observations_from_state(state))}

    def test_outlook_fits_and_forecasts_every_tenant(self):
        observations = self._observations()
        outlook = fleet_capacity_outlook(observations)
        assert outlook is not None
        assert outlook["estimate"]["alpha"] > 0
        assert set(outlook["forecasts"]) == set(observations)
        assert outlook["remaining_mean_total"] >= 0.0
        assert all(name in observations for name in outlook["at_risk"])

    def test_deterministic_given_observations(self):
        observations = self._observations()
        first = fleet_capacity_outlook(observations)
        second = fleet_capacity_outlook(observations)
        assert first == second

    def test_none_without_failure_evidence(self):
        assert fleet_capacity_outlook({}) is None
        censored = {"t": {"values": [2.0, 3.0],
                          "events": [False, False]}}
        assert fleet_capacity_outlook(censored) is None

    def test_snapshot_carries_the_outlook_and_top_renders_it(self):
        observations = self._observations()
        reports = _reports()
        reports[0]["response"]["observations"] = observations
        tenants = reports[0]["response"]["tenants"]
        for name in observations:
            tenants.setdefault(name, {"remaining_capacity": 5,
                                      "served": 1,
                                      "lifetime_used_fraction": 0.5,
                                      "exhausted": False})
        snapshot = build_fleet_snapshot(reports)
        assert snapshot["capacity"] is not None
        assert set(snapshot["observations"]) == set(observations)
        assert snapshot["observations"]["tenant-000"]["shard"] == 0
        text = render_fleet_top(snapshot)
        assert "capacity outlook: alpha=" in text
        assert "tenants at risk" in text
        assert "forecast" in text and "risk" in text
