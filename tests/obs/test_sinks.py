"""Tests for event sinks and the human-readable summary."""

import json

from repro.obs.recorder import OBS
from repro.obs.sinks import InMemorySink, JsonlSink, render_summary


class TestInMemorySink:
    def test_buffers_in_order(self):
        sink = InMemorySink()
        sink.emit({"a": 1})
        sink.emit({"b": 2})
        assert sink.events == [{"a": 1}, {"b": 2}]
        sink.close()
        assert sink.closed


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"v": 1, "kind": "event", "name": "x"})
        sink.emit({"v": 1, "kind": "span", "name": "y"})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "x"
        assert json.loads(lines[1])["kind"] == "span"
        assert sink.emitted == 2

    def test_lazy_open_never_touches_disk_without_events(self, tmp_path):
        path = tmp_path / "untouched.jsonl"
        sink = JsonlSink(str(path))
        sink.close()
        assert not path.exists()

    def test_appends_across_reopen(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for run in range(2):
            sink = JsonlSink(str(path))
            sink.emit({"run": run})
            sink.close()
        assert len(path.read_text().splitlines()) == 2


class TestRenderSummary:
    def test_sections_appear_only_when_populated(self, sink):
        OBS.metrics.inc("hits", 7)
        text = render_summary(OBS)
        assert "counters" in text
        assert "gauges" not in text
        assert "histograms" not in text
        OBS.metrics.set_gauge("level", 0.5)
        OBS.metrics.observe("lat", 0.01)
        text = render_summary(OBS)
        assert "gauges" in text
        assert "histograms" in text

    def test_span_tally_line(self, sink):
        with OBS.span("s"):
            pass
        assert "spans finished: 1" in render_summary(OBS)

    def test_empty_summary(self):
        assert render_summary(OBS) == "observability: nothing recorded"
