"""Integration: instrumented hot paths record metrics when enabled and
leave the registry untouched when disabled."""

from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.weibull import WeibullDistribution
from repro.obs.recorder import OBS
from repro.pads.decision_tree import HardwareDecisionTree
from repro.sim.montecarlo import simulate_access_bounds
from repro.sim.rng import make_rng
from repro.sim.timeline import UsageProfile
from repro.sim.traces import generate_trace, replay_trace

DEVICE = WeibullDistribution(alpha=10.0, beta=8.0)


def small_design(bound=300):
    return solve_encoded_fractional(DEVICE, bound, 0.10, PAPER_CRITERIA)


class TestMonteCarloInstrumentation:
    def test_records_trials_and_throughput(self, sink):
        simulate_access_bounds(small_design(), 25, make_rng(0))
        assert OBS.metrics.counter("mc.trials") == 25
        assert OBS.metrics.gauge("mc.trials_per_s") > 0
        assert OBS.metrics.histogram("mc.fast_batch_s").count == 1

    def test_disabled_records_nothing(self):
        assert not OBS.enabled
        simulate_access_bounds(small_design(), 25, make_rng(0))
        assert OBS.metrics.counters == {}
        assert OBS.metrics.histograms == {}

    def test_results_identical_enabled_vs_disabled(self, sink):
        enabled = simulate_access_bounds(small_design(), 10, make_rng(3))
        OBS.enabled = False
        disabled = simulate_access_bounds(small_design(), 10, make_rng(3))
        assert (enabled == disabled).all()


class TestFaultCampaignInstrumentation:
    def test_campaign_counts_trials(self, sink):
        from repro.faults.campaign import (
            FaultCampaignConfig,
            run_fault_campaign,
        )

        run_fault_campaign(small_design(), FaultCampaignConfig(),
                           trials=2, seed=0)
        assert OBS.metrics.counter("faults.trials") == 2
        assert OBS.metrics.histogram("faults.served_accesses").count == 2
        hist = OBS.metrics.histogram("faults.trial_availability")
        assert hist.count == 2


class TestReplayInstrumentation:
    def test_replay_counts_and_end_state_event(self, sink):
        rng = make_rng(0)
        trace = generate_trace(UsageProfile(mean_daily=5.0), 10, rng,
                               typo_rate=0.0)
        replay_trace([small_design(400)], ["pc"], b"d", trace, rng)
        assert OBS.metrics.counter("replay.traces") == 1
        assert OBS.metrics.counter("replay.logins") == len(trace)
        finished = [e for e in sink.events
                    if e.get("name") == "replay.finished"]
        assert len(finished) == 1
        assert finished[0]["attrs"]["end_state"] == "served-full-trace"


class TestPadsInstrumentation:
    def test_traversals_counted(self, sink):
        leaves = [bytes([i]) * 4 for i in range(8)]
        tree = HardwareDecisionTree(4, leaves, DEVICE, make_rng(0))
        tree.traverse("000")
        tree.traverse("111")
        assert OBS.metrics.counter("pads.traversals") == 2
        assert OBS.metrics.histogram("pads.traverse_s").count == 2

    def test_disabled_traverse_records_nothing(self):
        leaves = [bytes([i]) * 4 for i in range(8)]
        tree = HardwareDecisionTree(4, leaves, DEVICE, make_rng(0))
        tree.traverse("000")
        assert OBS.metrics.counters == {}


class TestResilientInstrumentation:
    def test_access_layer_counts_calls(self, sink):
        from repro.connection.resilient import ResilientAccessController

        controller = ResilientAccessController(
            small_design(), b"secret payload!!", make_rng(0))
        secret = controller.read_key()
        assert secret == b"secret payload!!"
        assert OBS.metrics.counter("resilient.calls") == 1
        assert OBS.metrics.counter("resilient.successes") == 1
