"""Tests for the metrics registry, histogram, and recorder lifecycle."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.recorder import (
    EVENT_SCHEMA_VERSION,
    Histogram,
    MetricsRegistry,
    OBS,
)
from repro.obs.tracing import NULL_SPAN


class TestHistogram:
    def test_empty(self):
        hist = Histogram()
        assert hist.count == 0
        assert math.isnan(hist.mean)
        assert hist.summary() == {"count": 0}

    def test_empty_quantile_is_none(self):
        # Merging shards that served no traffic queries empty
        # histograms; every quantile must be None, not NaN or garbage.
        hist = Histogram()
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) is None

    def test_exact_aggregates(self):
        hist = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(10.0)
        assert hist.mean == pytest.approx(2.5)
        assert hist.minimum == 1.0
        assert hist.maximum == 4.0

    def test_quantiles_within_bucket_error(self):
        hist = Histogram()
        for i in range(1, 1001):
            hist.observe(i / 1000.0)  # uniform on (0, 1]
        # Log buckets give ~26% relative width; allow a little slack.
        assert hist.quantile(0.5) == pytest.approx(0.5, rel=0.30)
        assert hist.quantile(0.95) == pytest.approx(0.95, rel=0.30)

    def test_quantile_clamped_to_observed_range(self):
        hist = Histogram()
        hist.observe(5.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 5.0

    def test_nonpositive_values_clamp_into_lowest_bucket(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(-2.5)
        assert hist.count == 2
        assert hist.minimum == -2.5

    def test_extreme_magnitudes_stay_in_range(self):
        hist = Histogram()
        hist.observe(1e-15)
        hist.observe(1e15)
        assert hist.count == 2
        assert hist.quantile(1.0) == 1e15

    def test_quantile_validation(self):
        with pytest.raises(ConfigurationError):
            Histogram().quantile(1.5)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counter("a") == 5
        assert registry.counter("missing") == 0

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1.0)
        registry.set_gauge("g", 7.5)
        assert registry.gauge("g") == 7.5
        assert registry.gauge("missing") is None

    def test_timer_records_duration(self):
        registry = MetricsRegistry()
        with registry.time("t"):
            pass
        hist = registry.histogram("t")
        assert hist.count == 1
        assert hist.minimum >= 0.0

    def test_snapshot_schema(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 3.0)
        registry.observe("h", 0.5)
        snap = registry.snapshot()
        assert snap["schema_version"] == EVENT_SCHEMA_VERSION
        assert snap["kind"] == "metrics-snapshot"
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 3.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["wall_time"] > 0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1.0)
        registry.observe("h", 1.0)
        registry.reset()
        assert registry.counters == {}
        assert registry.gauges == {}
        assert registry.histograms == {}


class TestObservability:
    def test_disabled_by_default(self):
        assert OBS.enabled is False

    def test_disabled_span_and_timer_are_shared_nulls(self):
        assert OBS.span("x") is NULL_SPAN
        assert OBS.time("x") is OBS.time("y")

    def test_event_reaches_sink(self, sink):
        OBS.event("hello", answer=42)
        assert len(sink.events) == 1
        event = sink.events[0]
        assert event["v"] == EVENT_SCHEMA_VERSION
        assert event["kind"] == "event"
        assert event["name"] == "hello"
        assert event["attrs"] == {"answer": 42}

    def test_reset_disables_and_closes_sinks(self, sink):
        assert OBS.enabled
        OBS.reset()
        assert not OBS.enabled
        assert sink.closed
        assert OBS.sinks == []

    def test_summary_mentions_recorded_metrics(self, sink):
        OBS.metrics.inc("demo.counter", 3)
        text = OBS.summary()
        assert "demo.counter" in text
        assert "3" in text

    def test_summary_when_empty(self):
        assert "nothing recorded" in OBS.summary()
