"""Tests for span tracing: nesting, events, and the null span."""

from repro.obs.recorder import EVENT_SCHEMA_VERSION, OBS
from repro.obs.tracing import NULL_SPAN, NullSpan


class TestSpans:
    def test_span_emits_event_with_duration(self, sink):
        with OBS.span("work", trials=10) as span:
            span.set_attr("extra", True)
        assert len(sink.events) == 1
        event = sink.events[0]
        assert event["v"] == EVENT_SCHEMA_VERSION
        assert event["kind"] == "span"
        assert event["name"] == "work"
        assert event["duration_s"] >= 0.0
        assert event["attrs"] == {"trials": 10, "extra": True}
        assert event["parent_id"] is None

    def test_nesting_records_parent_ids(self, sink):
        with OBS.span("outer") as outer:
            with OBS.span("inner"):
                assert OBS.tracer.current.name == "inner"
            assert OBS.tracer.current is outer
        inner_event, outer_event = sink.events
        assert inner_event["name"] == "inner"
        assert inner_event["parent_id"] == outer_event["span_id"]
        assert outer_event["parent_id"] is None
        assert OBS.tracer.current is None

    def test_span_ids_are_unique(self, sink):
        with OBS.span("a"):
            pass
        with OBS.span("b"):
            pass
        ids = [e["span_id"] for e in sink.events]
        assert len(ids) == len(set(ids))

    def test_finished_count_and_histogram(self, sink):
        for _ in range(3):
            with OBS.span("step"):
                pass
        assert OBS.tracer.finished == 3
        hist = OBS.metrics.histogram("span.step")
        assert hist.count == 3

    def test_exception_tagged_on_span(self, sink):
        try:
            with OBS.span("explodes"):
                raise ValueError("boom")
        except ValueError:
            pass
        event = sink.events[0]
        assert event["attrs"]["error"] == "ValueError"

    def test_out_of_order_exit_does_not_corrupt_stack(self, sink):
        outer = OBS.tracer.span("outer")
        inner = OBS.tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)  # wrong order on purpose
        inner.__exit__(None, None, None)
        assert OBS.tracer.current is None
        assert OBS.tracer.finished == 2


class TestNullSpan:
    def test_shared_instance_is_inert(self):
        assert isinstance(NULL_SPAN, NullSpan)
        with NULL_SPAN as span:
            span.set_attr("ignored", 1)  # must not raise or record
        assert OBS.tracer.finished == 0

    def test_disabled_obs_hands_out_null_span(self):
        assert not OBS.enabled
        assert OBS.span("anything") is NULL_SPAN
