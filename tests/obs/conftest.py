"""Fixtures for observability tests: every test gets a clean recorder."""

import pytest

from repro.obs.recorder import OBS
from repro.obs.sinks import InMemorySink


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset the process-wide recorder before and after each test.

    OBS is deliberately a module-level singleton; tests must never leak
    enabled state into each other (or into the rest of the suite).
    """
    OBS.reset()
    yield
    OBS.reset()


@pytest.fixture
def sink():
    """An in-memory sink attached to an enabled recorder."""
    memory = InMemorySink()
    OBS.configure(sinks=[memory], enabled=True)
    return memory
