"""Tests for the pinned benchmark suite and its report schema."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    MEMORY_WORKLOADS,
    SCALES,
    SCALING_WORKERS,
    compare_bench_reports,
    measure_disabled_overhead,
    measure_engine_speedup,
    measure_memory_ceilings,
    measure_parallel_scaling,
    render_bench_comparison,
    render_bench_report,
    run_bench_suite,
    validate_bench_report,
    write_bench_report,
)
from repro.obs.recorder import OBS

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def tiny_report():
    return run_bench_suite("tiny", seed=0, repeats=1)


class TestBenchSuite:
    def test_report_is_schema_valid(self, tiny_report):
        validate_bench_report(tiny_report)
        assert tiny_report["schema_version"] == BENCH_SCHEMA_VERSION
        assert tiny_report["kind"] == "bench-report"
        assert tiny_report["scale"] == "tiny"

    def test_every_workload_ran(self, tiny_report):
        names = {w["name"] for w in tiny_report["workloads"]}
        assert names == {"mc.fast", "mc.checkpointed", "mc.hardware",
                         "faults.campaign", "replay.trace",
                         "pads.traverse", "checkpoint.roundtrip",
                         "svc.loadgen", "svc.fleet",
                         "capacity.estimate"}
        for workload in tiny_report["workloads"]:
            assert workload["units"] > 0
            assert workload["wall_s"]["min"] > 0
            assert workload["throughput_per_s"] > 0

    def test_report_is_json_serializable(self, tiny_report):
        assert json.loads(json.dumps(tiny_report)) == tiny_report

    def test_write_and_render(self, tiny_report, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_bench_report(tiny_report, str(path))
        loaded = json.loads(path.read_text())
        validate_bench_report(loaded)
        text = render_bench_report(tiny_report)
        assert "mc.fast" in text
        assert "observability-disabled overhead" in text

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            run_bench_suite("galactic")

    def test_scales_share_parameter_keys(self):
        keys = {frozenset(params) for params in SCALES.values()}
        assert len(keys) == 1


class TestScalingReport:
    def test_report_has_a_config_per_worker_count(self, tiny_report):
        scaling = tiny_report["scaling"]
        assert scaling["workload"] == "mc.hardware.sharded"
        assert scaling["trials"] == SCALES["tiny"]["scaling_trials"]
        assert scaling["host_cpus"] >= 1
        assert [c["workers"] for c in scaling["configs"]] \
            == list(SCALING_WORKERS)
        for config in scaling["configs"]:
            assert config["wall_s"] > 0
            assert config["throughput_per_s"] > 0
            assert config["speedup_vs_1"] > 0
        # Speedup is normalized to the 1-worker config of the same run.
        baseline = scaling["configs"][0]
        assert baseline["speedup_vs_1"] == pytest.approx(1.0)

    def test_render_includes_scaling_table(self, tiny_report):
        text = render_bench_report(tiny_report)
        assert "parallel scaling" in text
        assert "speedup" in text

    def test_standalone_measurement_validates_trials(self):
        with pytest.raises(ConfigurationError):
            measure_parallel_scaling(0)

    def test_validator_rejects_missing_scaling_keys(self, tiny_report):
        broken = json.loads(json.dumps(tiny_report))
        del broken["scaling"]["configs"][0]["speedup_vs_1"]
        with pytest.raises(ConfigurationError):
            validate_bench_report(broken)
        broken = json.loads(json.dumps(tiny_report))
        del broken["scaling"]
        with pytest.raises(ConfigurationError):
            validate_bench_report(broken)


class TestOverheadMeasurement:
    def test_reports_paired_minima(self):
        result = measure_disabled_overhead(repeats=2, trials=20, seed=0)
        assert result["hot_path"] == "simulate_access_bounds"
        assert result["baseline_min_s"] > 0
        assert result["instrumented_disabled_min_s"] > 0
        expected = (result["instrumented_disabled_min_s"]
                    - result["baseline_min_s"]) \
            / result["baseline_min_s"] * 100.0
        assert result["overhead_pct"] == pytest.approx(expected)

    def test_restores_enabled_state(self):
        OBS.enabled = True
        try:
            measure_disabled_overhead(repeats=1, trials=10, seed=0)
            assert OBS.enabled is True
        finally:
            OBS.enabled = False

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            measure_disabled_overhead(repeats=0)


class TestValidator:
    def test_rejects_non_reports(self):
        with pytest.raises(ConfigurationError):
            validate_bench_report([])
        with pytest.raises(ConfigurationError):
            validate_bench_report({"kind": "bench-report"})

    def test_rejects_missing_workload_keys(self, tiny_report):
        broken = json.loads(json.dumps(tiny_report))
        del broken["workloads"][0]["wall_s"]["median"]
        with pytest.raises(ConfigurationError):
            validate_bench_report(broken)

    def test_rejects_missing_overhead_keys(self, tiny_report):
        broken = json.loads(json.dumps(tiny_report))
        del broken["overhead"]["overhead_pct"]
        with pytest.raises(ConfigurationError):
            validate_bench_report(broken)

    def test_accepts_schema_1_without_engine_section(self, tiny_report):
        v1 = json.loads(json.dumps(tiny_report))
        v1["schema_version"] = 1
        del v1["engine"]
        validate_bench_report(v1)

    def test_schema_2_requires_the_engine_section(self, tiny_report):
        broken = json.loads(json.dumps(tiny_report))
        del broken["engine"]
        with pytest.raises(ConfigurationError):
            validate_bench_report(broken)
        broken = json.loads(json.dumps(tiny_report))
        del broken["engine"]["speedup"]
        with pytest.raises(ConfigurationError):
            validate_bench_report(broken)


class TestEngineSection:
    def test_report_carries_the_speedup_measurement(self, tiny_report):
        engine = tiny_report["engine"]
        assert engine["workload"] == "mc.hardware"
        assert engine["trials"] == SCALES["tiny"]["engine_trials"]
        assert engine["scalar_min_s"] > 0
        assert engine["engine_min_s"] > 0
        assert engine["speedup"] > 0
        # The batched engine must replay the scalar path bit for bit.
        assert engine["bit_identical"] is True

    def test_render_includes_the_engine_line(self, tiny_report):
        text = render_bench_report(tiny_report)
        assert "engine speedup" in text
        assert "bit-identical: yes" in text

    def test_standalone_measurement_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            measure_engine_speedup(0)
        with pytest.raises(ConfigurationError):
            measure_engine_speedup(1, repeats=0)


class TestServiceSection:
    def test_report_carries_the_service_load(self, tiny_report):
        service = tiny_report["service"]
        assert service["workload"] == "svc.loadgen"
        assert service["tenants"] == SCALES["tiny"]["svc_tenants"]
        assert service["requests"] == SCALES["tiny"]["svc_requests"]
        assert service["served"] > 0
        assert service["requests_per_s"] > 0
        assert service["rounds"] > 0
        assert service["batch_size_mean"] > 0
        assert sum(service["outcomes"].values()) == service["requests"]

    def test_render_includes_the_service_line(self, tiny_report):
        text = render_bench_report(tiny_report)
        assert "service load" in text
        assert "req/s" in text


class TestFleetSection:
    def test_report_carries_the_fleet_load(self, tiny_report):
        fleet = tiny_report["fleet"]
        assert fleet["workload"] == "svc.fleet"
        assert fleet["shards"] == SCALES["tiny"]["fleet_shards"]
        assert fleet["shards"] >= 2
        assert fleet["tenants"] == SCALES["tiny"]["fleet_tenants"]
        assert fleet["requests"] == SCALES["tiny"]["fleet_requests"]
        assert fleet["served"] > 0
        assert fleet["requests_per_s"] > 0
        assert sum(fleet["outcomes"].values()) == fleet["requests"]
        assert len(fleet["per_shard_requests"]) == fleet["shards"]
        assert sum(fleet["per_shard_requests"]) == fleet["requests"]

    def test_render_includes_the_fleet_line(self, tiny_report):
        text = render_bench_report(tiny_report)
        assert "fleet load" in text
        assert "shards" in text

    def test_schema_3_accepted_without_the_fleet_section(self, tiny_report):
        v3 = json.loads(json.dumps(tiny_report))
        v3["schema_version"] = 3
        del v3["fleet"]
        validate_bench_report(v3)

    def test_schema_4_requires_the_fleet_section(self, tiny_report):
        broken = json.loads(json.dumps(tiny_report))
        del broken["fleet"]
        with pytest.raises(ConfigurationError):
            validate_bench_report(broken)
        broken = json.loads(json.dumps(tiny_report))
        del broken["fleet"]["per_shard_requests"]
        with pytest.raises(ConfigurationError):
            validate_bench_report(broken)

    def test_single_shard_fleet_rejected(self, tiny_report):
        broken = json.loads(json.dumps(tiny_report))
        broken["fleet"]["shards"] = 1
        with pytest.raises(ConfigurationError,
                           match="at least 2 shards"):
            validate_bench_report(broken)


class TestCapacitySection:
    def test_report_carries_the_pinned_sweep(self, tiny_report):
        capacity = tiny_report["capacity"]
        assert capacity["seed"] == 2017  # pinned, never the bench seed
        assert capacity["problems"] == []
        assert capacity["gate_ok"] is True
        assert 0.85 <= capacity["coverage"] <= 0.95
        lengths = capacity["trace_lengths"]
        curve = [capacity["median_rel_err_by_length"][str(length)]
                 for length in lengths]
        assert curve == sorted(curve, reverse=True)

    def test_render_includes_the_calibration_line(self, tiny_report):
        text = render_bench_report(tiny_report)
        assert "capacity calibration" in text
        assert "gate PASS" in text

    def test_schema_4_accepted_without_the_capacity_section(
            self, tiny_report):
        v4 = json.loads(json.dumps(tiny_report))
        v4["schema_version"] = 4
        del v4["capacity"]
        validate_bench_report(v4)

    def test_schema_5_requires_the_capacity_section(self, tiny_report):
        broken = json.loads(json.dumps(tiny_report))
        del broken["capacity"]
        with pytest.raises(ConfigurationError):
            validate_bench_report(broken)
        broken = json.loads(json.dumps(tiny_report))
        del broken["capacity"]["gate_ok"]
        with pytest.raises(ConfigurationError):
            validate_bench_report(broken)


class TestMemorySection:
    def test_report_carries_peak_rss_ceilings(self, tiny_report):
        memory = tiny_report["memory"]
        assert [row["name"] for row in memory["workloads"]] \
            == list(MEMORY_WORKLOADS)
        for row in memory["workloads"]:
            assert row["peak_rss_bytes"] > 0
            assert row["peak_rss_mib"] \
                == pytest.approx(row["peak_rss_bytes"] / 2**20)

    def test_render_includes_the_ceilings(self, tiny_report):
        text = render_bench_report(tiny_report)
        assert "peak RSS ceilings" in text

    def test_unknown_memory_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_memory_ceilings("tiny", workloads=("brand.new",))
        with pytest.raises(ConfigurationError):
            measure_memory_ceilings("galactic")

    def test_schema_2_accepted_without_service_and_memory(self, tiny_report):
        v2 = json.loads(json.dumps(tiny_report))
        v2["schema_version"] = 2
        del v2["service"]
        del v2["memory"]
        validate_bench_report(v2)

    def test_schema_3_requires_both_sections(self, tiny_report):
        for section in ("service", "memory"):
            broken = json.loads(json.dumps(tiny_report))
            del broken[section]
            with pytest.raises(ConfigurationError):
                validate_bench_report(broken)
        broken = json.loads(json.dumps(tiny_report))
        del broken["memory"]["workloads"][0]["peak_rss_bytes"]
        with pytest.raises(ConfigurationError):
            validate_bench_report(broken)


class TestCompare:
    def test_self_comparison_has_no_regressions(self, tiny_report):
        comparison = compare_bench_reports(tiny_report, tiny_report)
        assert comparison["regressions"] == []
        assert comparison["missing_in_candidate"] == []
        names = {row["name"] for row in comparison["rows"]}
        assert "mc.hardware" in names
        assert "engine.hardware" in names
        for row in comparison["rows"]:
            assert row["delta_pct"] == pytest.approx(0.0)
            assert row["regressed"] is False

    def test_regression_beyond_threshold_is_flagged(self, tiny_report):
        slower = json.loads(json.dumps(tiny_report))
        slower["workloads"][0]["throughput_per_s"] *= 0.5
        comparison = compare_bench_reports(tiny_report, slower,
                                           threshold=0.2)
        assert comparison["regressions"] \
            == [tiny_report["workloads"][0]["name"]]
        text = render_bench_comparison(comparison)
        assert "REGRESSED" in text

    def test_slowdown_within_threshold_passes(self, tiny_report):
        slower = json.loads(json.dumps(tiny_report))
        for workload in slower["workloads"]:
            workload["throughput_per_s"] *= 0.9
        comparison = compare_bench_reports(tiny_report, slower,
                                           threshold=0.2)
        assert comparison["regressions"] == []

    def test_workload_set_drift_is_reported_not_scored(self, tiny_report):
        candidate = json.loads(json.dumps(tiny_report))
        renamed = candidate["workloads"][0]
        old_name = renamed["name"]
        renamed["name"] = "brand.new"
        comparison = compare_bench_reports(tiny_report, candidate)
        assert comparison["missing_in_candidate"] == [old_name]
        assert comparison["new_in_candidate"] == ["brand.new"]
        assert comparison["regressions"] == []

    def test_cross_scale_comparison_rejected(self, tiny_report):
        other = json.loads(json.dumps(tiny_report))
        other["scale"] = "smoke"
        with pytest.raises(ConfigurationError):
            compare_bench_reports(tiny_report, other)

    def test_threshold_validated(self, tiny_report):
        with pytest.raises(ConfigurationError):
            compare_bench_reports(tiny_report, tiny_report, threshold=0.0)

    def test_memory_growth_beyond_threshold_is_flagged(self, tiny_report):
        fatter = json.loads(json.dumps(tiny_report))
        fatter["memory"]["workloads"][0]["peak_rss_bytes"] *= 2
        comparison = compare_bench_reports(tiny_report, fatter,
                                           threshold=0.2)
        assert comparison["regressions"] == [f"mem.{MEMORY_WORKLOADS[0]}"]
        text = render_bench_comparison(comparison)
        assert "peak RSS ceilings" in text
        assert "REGRESSED" in text

    def test_memory_shrink_is_never_a_regression(self, tiny_report):
        slimmer = json.loads(json.dumps(tiny_report))
        for row in slimmer["memory"]["workloads"]:
            row["peak_rss_bytes"] //= 2
        comparison = compare_bench_reports(tiny_report, slimmer,
                                           threshold=0.2)
        assert comparison["regressions"] == []

    def test_comparison_is_json_serializable(self, tiny_report):
        comparison = compare_bench_reports(tiny_report, tiny_report)
        assert json.loads(json.dumps(comparison)) == comparison
