"""Closed-form resume from touched states, pinned against stepping.

PR 5's satellite: ``run_to_exhaustion`` on a non-pristine hook-free
state must finalize every array bit-identically to the stepped kernel,
so restored checkpoints and the service's post-restart replay can skip
per-access stepping.  The states driven here are deliberately abused -
partial drives, external wear, forced failures, killed banks, advanced
copies - because that is exactly what a restored snapshot looks like.
"""

import numpy as np
import pytest

from repro.engine.state import WearState

ARRAYS = ("lifetime", "used", "bank_accesses", "bank_dead", "current",
          "total_accesses")


def _assert_states_equal(a, b, context=""):
    for name in ARRAYS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), (
            f"{name} diverged {context}")


def _clone(state):
    twin = WearState(state.lifetime.copy(), state.k)
    twin.used[:] = state.used
    twin.bank_accesses[:] = state.bank_accesses
    twin.bank_dead[:] = state.bank_dead
    twin.current[:] = state.current
    twin.total_accesses[:] = state.total_accesses
    return twin


def _touch(state, rng, steps):
    """Partially drive and externally abuse ``state`` in a seeded way."""
    for _ in range(steps):
        mask = rng.random(state.instances) < 0.7
        state.step_access(mask)
    # External mutations a checkpoint restore can legally carry.
    for _ in range(state.instances):
        b = int(rng.integers(state.instances))
        c = int(rng.integers(state.copies))
        i = int(rng.integers(state.n))
        choice = rng.integers(4)
        if choice == 0:
            state.view(b, c, i).add_wear(int(rng.integers(1, 3)))
        elif choice == 1:
            state.view(b, c, i).force_fail()
        elif choice == 2:
            state.bank_dead[b, c] = True
        elif choice == 3 and state.current[b] < state.copies:
            state.current[b] += 1


@pytest.mark.parametrize("k", [1, 2, 3])
@pytest.mark.parametrize("cap", [None, 0, 1, 5, 17, 1000])
@pytest.mark.parametrize("seed", [11, 12, 13])
def test_touched_closed_form_matches_stepping(k, cap, seed):
    rng = np.random.default_rng(seed)
    lifetimes = rng.uniform(0.0, 7.0, size=(6, 3, 4))
    lifetimes[0, 0] = np.floor(lifetimes[0, 0])  # integer-lifetime bank
    state = WearState(lifetimes, k)
    _touch(state, rng, steps=int(rng.integers(0, 8)))
    reference = _clone(state)
    served_closed = state.run_to_exhaustion(cap)
    served_stepped = reference._run_stepped(cap)
    assert np.array_equal(served_closed, served_stepped)
    _assert_states_equal(state, reference, f"(k={k}, cap={cap})")


def test_exhausted_instances_stay_untouched():
    state = WearState(np.full((2, 2, 2), 2.0), 1)
    state.run_to_exhaustion()
    snapshot = _clone(state)
    assert state.run_to_exhaustion().tolist() == [0, 0]
    assert state.run_to_exhaustion(5).tolist() == [0, 0]
    _assert_states_equal(state, snapshot)


def test_resume_after_partial_drive_serves_the_remainder():
    state = WearState(np.full((1, 2, 3), 4.0), 2)
    pristine_total = int(WearState(state.lifetime.copy(), 2)
                         .run_to_exhaustion()[0])
    first = int(state.run_to_exhaustion(3)[0])
    assert first == 3
    rest = int(state.run_to_exhaustion()[0])
    assert first + rest == pristine_total


def test_remaining_capacity_matches_actual_serves():
    rng = np.random.default_rng(44)
    lifetimes = rng.uniform(0.0, 6.0, size=(5, 3, 4))
    state = WearState(lifetimes, 2)
    _touch(state, rng, steps=4)
    predicted = state.remaining_capacity()
    served = state.run_to_exhaustion()
    assert np.array_equal(predicted, served)
    assert state.remaining_capacity().tolist() == [0] * 5


def test_remaining_capacity_is_pure():
    state = WearState(np.full((2, 2, 2), 3.0), 1)
    state.step_access()
    before = _clone(state)
    state.remaining_capacity()
    _assert_states_equal(state, before)


def test_step_record_reports_serving_copy_and_observed_row():
    lifetimes = np.array([[[2.0, 2.0], [5.0, 5.0]],
                          [[0.0, 0.0], [0.0, 0.0]]])
    state = WearState(lifetimes, 1)
    record = {}
    success = state.step_access(record=record)
    assert success.tolist() == [True, False]
    assert record["served_copy"].tolist() == [0, -1]
    assert record["observed"][0].tolist() == [True, True]
    assert not record["observed"][1].any()


def test_step_record_observed_comes_from_the_hook():
    class FirstOnly:
        def on_bank_actuate(self, state, instances, copies, closed):
            observed = np.zeros_like(closed)
            observed[:, 0] = closed[:, 0]
            return observed

    state = WearState(np.full((1, 1, 3), 5.0), 1, vector_hook=FirstOnly())
    record = {}
    assert state.step_access(record=record)[0]
    assert record["served_copy"][0] == 0
    assert record["observed"][0].tolist() == [True, False, False]
