"""Unit tests for the struct-of-arrays wear-state engine.

The load-bearing claims: the batched kernels replicate the scalar
object layer's semantics switch for switch, and the closed-form
``run_to_exhaustion`` finalizes *every* state array exactly as a
stepped drive would.
"""

import numpy as np
import pytest

from repro.core.device import NEMSSwitch
from repro.core.hardware import SerialCopies, SimulatedBank
from repro.core.variation import LognormalVariation
from repro.core.weibull import WeibullDistribution
from repro.engine.state import WearState
from repro.errors import ConfigurationError

MODEL = WeibullDistribution(alpha=9.0, beta=6.0)

# Lifetimes exercising every per-switch edge: zero, sub-one fractional,
# exact integer, fractional above one.
EDGE_LIFETIMES = [0.0, 0.4, 1.0, 2.0, 2.5, 3.0, 7.9]


def _object_serial(lifetimes_2d, k):
    """Object-mode SerialCopies over explicit per-copy lifetime rows."""
    banks = []
    for row in lifetimes_2d:
        switches = [NEMSSwitch(value) for value in row]
        banks.append(SimulatedBank(switches, k))
    return SerialCopies(banks)


def _drive_scalar(lifetimes_2d, k, max_accesses=None):
    """Drive the scalar reference to destruction; return full final state."""
    serial = _object_serial(lifetimes_2d, k)
    served = serial.count_successful_accesses(max_accesses)
    used = np.array([[s.cycles_used for s in bank.switches]
                     for bank in serial.banks])
    return {
        "served": served,
        "used": used,
        "bank_accesses": np.array([b.accesses for b in serial.banks]),
        "bank_dead": np.array([b.is_dead for b in serial.banks]),
        "current": serial.current_index,
        "total_accesses": serial.total_accesses,
    }


def _lifetime_grid(rng, copies=3, n=5, instances=4):
    lifetimes = rng.uniform(0.0, 9.0, size=(instances, copies, n))
    # Pin the edge cases into instance 0.
    flat = np.array(EDGE_LIFETIMES[:n])
    lifetimes[0, 0, :len(flat)] = flat
    lifetimes[0, 1] = np.floor(lifetimes[0, 1])  # all-integer bank
    return lifetimes


class TestConstruction:
    def test_requires_3d_lifetimes(self):
        with pytest.raises(ConfigurationError):
            WearState(np.ones((2, 3)), 1)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            WearState(np.ones((1, 2, 4)), 5)
        with pytest.raises(ConfigurationError):
            WearState(np.ones((1, 2, 4)), 0)

    def test_rejects_negative_lifetimes(self):
        lifetimes = np.ones((1, 2, 3))
        lifetimes[0, 1, 2] = -0.5
        with pytest.raises(ConfigurationError):
            WearState(lifetimes, 1)

    def test_from_lifetimes_promotes_2d(self):
        state = WearState.from_lifetimes(np.ones((2, 4)), 2)
        assert (state.instances, state.copies, state.n) == (1, 2, 4)
        assert state.device_count == 8

    def test_pristine_until_touched(self, rng):
        state = WearState.fabricate(MODEL, 2, 2, 3, 1, rng)
        assert state.is_pristine
        state.step_access()
        assert not state.is_pristine


class TestFabricationBitIdentity:
    def test_batched_fabricate_matches_scalar_batches(self):
        seed = 777
        batched = WearState.fabricate(
            MODEL, 3, 4, 6, 2, np.random.default_rng(seed))
        rng = np.random.default_rng(seed)
        for b in range(3):
            for c in range(4):
                expected = [s.lifetime_cycles for s in
                            NEMSSwitch.fabricate_batch(MODEL, 6, rng)]
                assert batched.lifetime[b, c].tolist() == expected

    def test_variation_fabricate_matches_scalar_batches(self):
        seed = 778
        variation = LognormalVariation(sigma_alpha=0.05, sigma_beta=0.02)
        batched = WearState.fabricate(
            MODEL, 2, 3, 5, 1, np.random.default_rng(seed),
            variation=variation)
        rng = np.random.default_rng(seed)
        for b in range(2):
            for c in range(3):
                expected = [s.lifetime_cycles for s in
                            NEMSSwitch.fabricate_batch(MODEL, 5, rng,
                                                       variation)]
                assert batched.lifetime[b, c].tolist() == expected


class TestBudgets:
    def test_switch_and_saturated_budgets(self):
        lifetimes = np.array([[EDGE_LIFETIMES[:6] + [3.2]]])
        state = WearState(lifetimes, 1)
        assert state.switch_budgets()[0, 0].tolist() == [0, 0, 1, 2, 2, 3, 3]
        # Fractional lifetimes admit one extra counted-but-open cycle.
        assert state.saturated_wear()[0, 0].tolist() == [0, 1, 1, 2, 3, 3, 4]

    def test_bank_budget_is_kth_largest(self):
        lifetimes = np.array([[[5.9, 2.1, 7.0, 1.0]]])
        for k, expected in ((1, 7), (2, 5), (3, 2), (4, 1)):
            assert WearState(lifetimes, k).bank_budgets()[0, 0] == expected


class TestSteppedVsScalar:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_step_access_matches_object_drive(self, k):
        rng = np.random.default_rng(101)
        lifetimes = _lifetime_grid(rng)
        state = WearState(lifetimes.copy(), k)
        engine_served = state._run_stepped(None)
        for b in range(state.instances):
            scalar = _drive_scalar(lifetimes[b], k)
            assert engine_served[b] == scalar["served"]
            assert np.array_equal(state.used[b], scalar["used"])
            assert np.array_equal(state.bank_accesses[b],
                                  scalar["bank_accesses"])
            assert np.array_equal(state.bank_dead[b], scalar["bank_dead"])
            assert state.current[b] == scalar["current"]
            assert state.total_accesses[b] == scalar["total_accesses"]

    def test_mask_limits_the_step_to_selected_instances(self):
        state = WearState(np.full((3, 1, 2), 5.0), 1)
        mask = np.array([True, False, True])
        success = state.step_access(mask)
        assert success.tolist() == [True, False, True]
        assert state.total_accesses.tolist() == [1, 0, 1]
        assert state.used[1].sum() == 0


class TestClosedFormVsStepped:
    @pytest.mark.parametrize("k", [1, 2, 4])
    @pytest.mark.parametrize("cap", [None, 0, 1, 7, 23, 1000])
    def test_closed_form_finalizes_every_array(self, k, cap):
        rng = np.random.default_rng(202)
        lifetimes = _lifetime_grid(rng, copies=3, n=5, instances=5)
        closed_form = WearState(lifetimes.copy(), k)
        stepped = WearState(lifetimes.copy(), k)
        served_closed = closed_form.run_to_exhaustion(cap)
        served_stepped = stepped._run_stepped(cap)
        assert np.array_equal(served_closed, served_stepped)
        for array in ("used", "bank_accesses", "bank_dead", "current",
                      "total_accesses"):
            assert np.array_equal(getattr(closed_form, array),
                                  getattr(stepped, array)), array

    def test_touched_state_falls_back_to_stepped(self):
        lifetimes = np.full((2, 2, 3), 4.0)
        state = WearState(lifetimes, 1)
        state.step_access()  # no longer pristine
        reference = WearState(lifetimes.copy(), 1)
        reference._run_stepped(None)
        state.run_to_exhaustion()
        assert np.array_equal(state.used, reference.used)
        assert np.array_equal(state.total_accesses,
                              reference.total_accesses)

    def test_rejects_negative_cap(self):
        state = WearState(np.ones((1, 1, 1)), 1)
        with pytest.raises(ConfigurationError):
            state.run_to_exhaustion(-1)

    def test_exhausted_mask_and_idempotence(self):
        state = WearState(np.full((2, 2, 2), 1.0), 1)
        served = state.run_to_exhaustion()
        assert served.tolist() == [2, 2]
        assert state.exhausted.all()
        # Driving an exhausted state again serves nothing.
        assert state.run_to_exhaustion().tolist() == [0, 0]
