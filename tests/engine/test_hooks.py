"""The vector hook surface: natives, pipeline, and the scalar adapter.

The adapter's contract is bit-compatibility: driving a batched state
through ``ScalarHookAdapter(model)`` must replay the same fault-RNG
streams - and hence produce the same wear, deaths and access bounds - as
the object-mode hardware loop consulting the same model per switch.
Every native hook (and the composed pipeline) then has to match the
adapter bit for bit, which the parametrized identity tests here pin at
the engine level; whole-trial identity lives in ``tests/differential``.
"""

import warnings

import numpy as np
import pytest

from repro.core.device import NEMSSwitch
from repro.core.hardware import SerialCopies, SimulatedBank
from repro.engine.hooks import (
    ScalarHookAdapter,
    VectorFaultHook,
    VectorFaultPipeline,
    VectorPrematureStuckOpen,
    VectorReadoutTimeout,
    VectorShareCorruption,
    VectorStuckClosedConversion,
    VectorTemperatureDrift,
    VectorTransientMisfire,
    vector_hook_for,
)
from repro.engine.state import WearState
from repro.faults.injectors import (
    FaultInjector,
    FaultModel,
    PrematureStuckOpen,
    ReadoutTimeout,
    ShareCorruption,
    StuckClosedConversion,
    TemperatureDrift,
    TransientMisfire,
)


def _fault_model(seed):
    return FaultModel([TransientMisfire(0.15),
                       StuckClosedConversion(0.5)], seed=seed)


def _scalar_drive(lifetimes_2d, k, model):
    banks = [SimulatedBank([NEMSSwitch(v) for v in row], k,
                           fault_hook=model)
             for row in lifetimes_2d]
    serial = SerialCopies(banks)
    served = serial.count_successful_accesses(200)
    used = np.array([[s.cycles_used for s in bank.switches]
                     for bank in serial.banks])
    dead = np.array([b.is_dead for b in serial.banks])
    return served, used, dead


def _assert_identical(reference, native, scalar_model, vector_model):
    """Final state, injection totals and stream positions all match."""
    for array in ("used", "lifetime", "bank_accesses", "bank_dead",
                  "current", "total_accesses"):
        assert np.array_equal(getattr(reference, array),
                              getattr(native, array)), array
    assert (scalar_model.total_injections
            == vector_model.total_injections)
    # Both arms consumed the same number of draws from every injector
    # substream - including rate-0 short circuits, which consume none.
    for scalar_stream, vector_stream in zip(scalar_model.streams,
                                            vector_model.streams):
        assert (scalar_stream.bit_generator.state
                == vector_stream.bit_generator.state)


class TestScalarHookAdapter:
    @pytest.mark.parametrize("k", [1, 2])
    def test_bit_compatible_with_object_mode_loop(self, k):
        lifetimes = np.random.default_rng(5).uniform(0.0, 6.0,
                                                     size=(1, 3, 4))
        engine = WearState(lifetimes.copy(), k,
                           vector_hook=ScalarHookAdapter(_fault_model(9)))
        engine_served = engine.run_to_exhaustion(200)
        served, used, dead = _scalar_drive(lifetimes[0], k,
                                           _fault_model(9))
        assert engine_served[0] == served
        assert np.array_equal(engine.used[0], used)
        assert np.array_equal(engine.bank_dead[0], dead)

    def test_adapter_is_a_vector_fault_hook(self):
        adapter = ScalarHookAdapter(_fault_model(0))
        assert isinstance(adapter, VectorFaultHook)

    def test_observed_matrix_shape(self):
        state = WearState(np.full((2, 1, 3), 4.0), 1)
        adapter = ScalarHookAdapter(_fault_model(1))
        closed = np.ones((2, 3), dtype=bool)
        observed = adapter.on_bank_actuate(
            state, np.array([0, 1]), np.array([0, 0]), closed)
        assert observed.shape == closed.shape
        assert observed.dtype == np.bool_


def _native_vs_adapter(injectors_factory, k, seed=77, lifetimes_seed=21,
                       max_accesses=150):
    """Drive adapter and native arms over identical state; return both."""
    lifetimes = np.random.default_rng(lifetimes_seed).uniform(
        0.0, 6.0, size=(3, 3, 4))
    scalar_model = FaultModel(injectors_factory(), seed=seed)
    vector_model = FaultModel(injectors_factory(), seed=seed)
    reference = WearState(lifetimes.copy(), k,
                          vector_hook=ScalarHookAdapter(scalar_model))
    native_hook = vector_hook_for(vector_model)
    assert not isinstance(native_hook, ScalarHookAdapter)
    native = WearState(lifetimes.copy(), k, vector_hook=native_hook)
    served_ref = reference.run_to_exhaustion(max_accesses)
    served_native = native.run_to_exhaustion(max_accesses)
    assert np.array_equal(served_ref, served_native)
    _assert_identical(reference, native, scalar_model, vector_model)
    return scalar_model, vector_model


class TestVectorTransientMisfire:
    """The native batched misfire must replay the scalar fault-RNG stream.

    The scalar injector draws one uniform per closed switch in
    instance-major, switch-index order; the vector implementation draws
    one batch over the same positions.  PCG64 guarantees the streams
    are equal, so final state, served counts and injection totals must
    all match bit for bit.
    """

    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("rate", [0.0, 0.05, 0.3, 1.0])
    def test_bit_identical_to_scalar_adapter(self, k, rate):
        _native_vs_adapter(lambda: [TransientMisfire(rate)], k)

    def test_is_a_vector_fault_hook(self):
        model = FaultModel([TransientMisfire(0.1)], seed=0)
        hook = VectorTransientMisfire(model.injectors[0], model.streams[0])
        assert isinstance(hook, VectorFaultHook)


class TestVectorPrematureStuckOpen:
    """Native premature-fracture: one draw per *live* switch, row-major.

    A hit must collapse the lifetime to the wear already spent
    (``force_fail``) and suppress this round's observation - and a
    switch already failed must not consume a draw.
    """

    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("rate", [0.0, 0.02, 0.2, 1.0])
    def test_bit_identical_to_scalar_adapter(self, k, rate):
        _native_vs_adapter(lambda: [PrematureStuckOpen(rate)], k)

    def test_rate_one_kills_everything_in_one_round(self):
        model = FaultModel([PrematureStuckOpen(1.0)], seed=4)
        state = WearState(np.full((1, 2, 3), 9.0), 1,
                          vector_hook=vector_hook_for(model))
        # The failed access falls over through both copies; every live
        # switch of each actuated bank fractures.
        assert not state.step_access()[0]
        assert model.injectors[0].injections == 6


class TestVectorStuckClosedConversion:
    """The native stuck-closed hook must replay the scalar draw order.

    The scalar injector decides each newly-dead switch's stickiness
    with one uniform, in instance-major, switch-index order - exactly
    the row-major order of ``np.nonzero`` over the candidate matrix -
    and draws nothing at all when the probability is zero.  The vector
    implementation must consume the identical stream.
    """

    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("probability", [0.0, 0.3, 0.7, 1.0])
    def test_bit_identical_to_scalar_adapter(self, k, probability):
        _native_vs_adapter(lambda: [StuckClosedConversion(probability)], k,
                           seed=55, lifetimes_seed=13)

    def test_conversion_is_sticky_across_rounds(self):
        # One switch, lifetime 1, probability 1: dies after the first
        # access and reads closed forever after.
        model = FaultModel([StuckClosedConversion(1.0)], seed=2)
        state = WearState(np.ones((1, 1, 1)), 1,
                          vector_hook=vector_hook_for(model))
        for _ in range(5):
            assert state.step_access()[0]
        assert state.total_accesses[0] == 5
        assert model.injectors[0].injections == 1

    def test_is_a_vector_fault_hook(self):
        model = FaultModel([StuckClosedConversion(0.5)], seed=0)
        hook = VectorStuckClosedConversion(model.injectors[0],
                                           model.streams[0])
        assert isinstance(hook, VectorFaultHook)


class TestVectorTemperatureDrift:
    """Native drift: whole cycles deterministic, fraction one draw/live.

    At 25C the injector is inert and must consume no draws; hotter
    temperatures burn hidden wear without changing observations.
    """

    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("temperature_c", [25.0, 40.0, 85.0, 125.0])
    def test_bit_identical_to_scalar_adapter(self, k, temperature_c):
        _native_vs_adapter(lambda: [TemperatureDrift(temperature_c)], k)

    def test_drift_never_changes_observations(self):
        model = FaultModel([TemperatureDrift(85.0)], seed=6)
        hook = vector_hook_for(model)
        state = WearState(np.full((1, 1, 3), 50.0), 1)
        closed = np.array([[True, True, False]])
        observed = hook.on_bank_actuate(state, np.array([0]),
                                        np.array([0]), closed)
        assert np.array_equal(observed, closed)


class TestReadoutOnlyNatives:
    """Corruption/timeout natives are actuate-site no-ops by design."""

    @pytest.mark.parametrize("factory", [
        lambda: ShareCorruption(0.5), lambda: ReadoutTimeout(0.5)])
    def test_passthrough_and_no_draws(self, factory):
        model = FaultModel([factory()], seed=8)
        hook = vector_hook_for(model)
        assert isinstance(hook, (VectorShareCorruption,
                                 VectorReadoutTimeout))
        state = WearState(np.full((1, 1, 3), 5.0), 1)
        closed = np.array([[True, False, True]])
        before = model.streams[0].bit_generator.state
        observed = hook.on_bank_actuate(state, np.array([0]),
                                        np.array([0]), closed)
        assert np.array_equal(observed, closed)
        assert model.streams[0].bit_generator.state == before


class TestVectorFaultPipeline:
    """Mixed-injector models compose natives stage-major, bit-identically."""

    FULL_MIX = [
        lambda: [TransientMisfire(0.1), PrematureStuckOpen(0.02),
                 StuckClosedConversion(0.5), TemperatureDrift(60.0)],
        lambda: [TransientMisfire(0.1), StuckClosedConversion(0.7)],
        lambda: [PrematureStuckOpen(0.05), TemperatureDrift(85.0),
                 TransientMisfire(0.2)],
        lambda: [TransientMisfire(0.1), PrematureStuckOpen(0.02),
                 StuckClosedConversion(0.5), TemperatureDrift(60.0),
                 ShareCorruption(0.3), ReadoutTimeout(0.2)],
    ]

    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("factory", FULL_MIX)
    def test_mixed_pipeline_bit_identical_to_adapter(self, k, factory):
        _native_vs_adapter(factory, k)

    def test_mixed_pipeline_goes_native(self):
        model = FaultModel([TransientMisfire(0.2),
                            StuckClosedConversion(0.5)], seed=3)
        hook = vector_hook_for(model)
        assert isinstance(hook, VectorFaultPipeline)
        kinds = [type(h) for h in hook.hooks]
        assert kinds == [VectorTransientMisfire, VectorStuckClosedConversion]
        # Each stage holds its injector's dedicated substream.
        assert hook.hooks[0].rng is model.streams[0]
        assert hook.hooks[1].rng is model.streams[1]


class TestVectorHookFor:
    def test_none_stays_none(self):
        assert vector_hook_for(None) is None

    def test_lone_misfire_goes_native(self):
        model = FaultModel([TransientMisfire(0.2)], seed=3)
        hook = vector_hook_for(model)
        assert isinstance(hook, VectorTransientMisfire)
        assert hook.injector is model.injectors[0]
        assert hook.rng is model.streams[0]

    def test_lone_stuck_closed_goes_native(self):
        model = FaultModel([StuckClosedConversion(0.4)], seed=3)
        hook = vector_hook_for(model)
        assert isinstance(hook, VectorStuckClosedConversion)
        assert hook.injector is model.injectors[0]
        assert hook.rng is model.streams[0]

    def test_every_shipped_injector_has_a_native(self):
        model = FaultModel([TransientMisfire(0.1), PrematureStuckOpen(0.1),
                            StuckClosedConversion(0.1),
                            TemperatureDrift(60.0), ShareCorruption(0.1),
                            ReadoutTimeout(0.1)], seed=3)
        hook = vector_hook_for(model)
        assert isinstance(hook, VectorFaultPipeline)
        assert len(hook.hooks) == 6

    def test_unknown_injector_falls_back_to_adapter_and_warns_once(self):
        class CustomInjector(FaultInjector):
            name = "custom"

            def on_switch_actuate(self, switch, closed, rng):
                return closed

        model = FaultModel([TransientMisfire(0.2), CustomInjector()],
                           seed=3)
        import repro.engine.hooks as hooks_module
        hooks_module._warned_fallback.discard("CustomInjector")
        with pytest.warns(RuntimeWarning, match="CustomInjector"):
            hook = vector_hook_for(model)
        assert isinstance(hook, ScalarHookAdapter)
        assert hook.hook is model
        # Second construction: fallback still engages, but silently.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = vector_hook_for(model)
        assert isinstance(again, ScalarHookAdapter)

    def test_non_model_hook_falls_back_to_adapter(self):
        class Custom:
            def on_switch_actuate(self, switch, closed):
                return closed

        hook = vector_hook_for(Custom())
        assert isinstance(hook, ScalarHookAdapter)


class TestVectorHookSite:
    def test_hook_output_decides_service_but_not_the_dead_latch(self):
        class AllOpen:
            def on_bank_actuate(self, state, instances, copies, closed):
                return np.zeros_like(closed)

        # Healthy bank, hook reports nothing closed: the access falls
        # over, but the physically-alive bank must NOT latch dead.
        state = WearState(np.full((1, 2, 2), 9.0), 1, vector_hook=AllOpen())
        success = state.step_access()
        assert not success[0]
        assert not state.bank_dead.any()
        assert state.exhausted[0]  # fell over past both copies

    def test_stuck_closed_hook_keeps_a_dead_bank_serving(self):
        class AllClosed:
            def on_bank_actuate(self, state, instances, copies, closed):
                return np.ones_like(closed)

        # Worn-out bank, hook reports closures: serves via the hook, and
        # the physical dead state must not stop it (ceiling violation).
        state = WearState(np.zeros((1, 1, 2)), 1, vector_hook=AllClosed())
        assert state.step_access()[0]
        assert state.step_access()[0]
        assert state.total_accesses[0] == 2
