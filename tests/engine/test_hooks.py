"""The vector hook surface and the scalar-hook adapter.

The adapter's contract is bit-compatibility: driving a batched state
through ``ScalarHookAdapter(model)`` must replay the same fault-RNG
stream - and hence produce the same wear, deaths and access bounds - as
the object-mode hardware loop consulting the same model per switch.
"""

import numpy as np
import pytest

from repro.core.device import NEMSSwitch
from repro.core.hardware import SerialCopies, SimulatedBank
from repro.engine.hooks import (
    ScalarHookAdapter,
    VectorFaultHook,
    VectorStuckClosedConversion,
    VectorTransientMisfire,
    vector_hook_for,
)
from repro.engine.state import WearState
from repro.faults.injectors import (
    FaultModel,
    StuckClosedConversion,
    TransientMisfire,
)


def _fault_model(seed):
    return FaultModel([TransientMisfire(0.15),
                       StuckClosedConversion(0.5)], seed=seed)


def _scalar_drive(lifetimes_2d, k, model):
    banks = [SimulatedBank([NEMSSwitch(v) for v in row], k,
                           fault_hook=model)
             for row in lifetimes_2d]
    serial = SerialCopies(banks)
    served = serial.count_successful_accesses(200)
    used = np.array([[s.cycles_used for s in bank.switches]
                     for bank in serial.banks])
    dead = np.array([b.is_dead for b in serial.banks])
    return served, used, dead


class TestScalarHookAdapter:
    @pytest.mark.parametrize("k", [1, 2])
    def test_bit_compatible_with_object_mode_loop(self, k):
        lifetimes = np.random.default_rng(5).uniform(0.0, 6.0,
                                                     size=(1, 3, 4))
        engine = WearState(lifetimes.copy(), k,
                           vector_hook=ScalarHookAdapter(_fault_model(9)))
        engine_served = engine.run_to_exhaustion(200)
        served, used, dead = _scalar_drive(lifetimes[0], k,
                                           _fault_model(9))
        assert engine_served[0] == served
        assert np.array_equal(engine.used[0], used)
        assert np.array_equal(engine.bank_dead[0], dead)

    def test_adapter_is_a_vector_fault_hook(self):
        adapter = ScalarHookAdapter(_fault_model(0))
        assert isinstance(adapter, VectorFaultHook)

    def test_observed_matrix_shape(self):
        state = WearState(np.full((2, 1, 3), 4.0), 1)
        adapter = ScalarHookAdapter(_fault_model(1))
        closed = np.ones((2, 3), dtype=bool)
        observed = adapter.on_bank_actuate(
            state, np.array([0, 1]), np.array([0, 0]), closed)
        assert observed.shape == closed.shape
        assert observed.dtype == np.bool_


class TestVectorTransientMisfire:
    """The native batched misfire must replay the scalar fault-RNG stream.

    The scalar injector draws one uniform per closed switch in
    instance-major, switch-index order; the vector implementation draws
    one batch over the same positions.  PCG64 guarantees the streams
    are equal, so final state, served counts and injection totals must
    all match bit for bit.
    """

    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("rate", [0.0, 0.05, 0.3, 1.0])
    def test_bit_identical_to_scalar_adapter(self, k, rate):
        lifetimes = np.random.default_rng(21).uniform(
            0.0, 6.0, size=(3, 3, 4))
        scalar_model = FaultModel([TransientMisfire(rate)], seed=77)
        vector_model = FaultModel([TransientMisfire(rate)], seed=77)
        reference = WearState(lifetimes.copy(), k,
                              vector_hook=ScalarHookAdapter(scalar_model))
        native = WearState(
            lifetimes.copy(), k,
            vector_hook=VectorTransientMisfire(vector_model.injectors[0],
                                               vector_model.rng))
        served_ref = reference.run_to_exhaustion(150)
        served_native = native.run_to_exhaustion(150)
        assert np.array_equal(served_ref, served_native)
        for array in ("used", "bank_accesses", "bank_dead", "current",
                      "total_accesses"):
            assert np.array_equal(getattr(reference, array),
                                  getattr(native, array)), array
        assert (scalar_model.total_injections
                == vector_model.total_injections)
        # Both consumed the same number of fault draws.
        assert (scalar_model.rng.bit_generator.state
                == vector_model.rng.bit_generator.state)

    def test_is_a_vector_fault_hook(self):
        model = FaultModel([TransientMisfire(0.1)], seed=0)
        hook = VectorTransientMisfire(model.injectors[0], model.rng)
        assert isinstance(hook, VectorFaultHook)


class TestVectorStuckClosedConversion:
    """The native stuck-closed hook must replay the scalar draw order.

    The scalar injector decides each newly-dead switch's stickiness
    with one uniform, in instance-major, switch-index order - exactly
    the row-major order of ``np.nonzero`` over the candidate matrix -
    and draws nothing at all when the probability is zero.  The vector
    implementation must consume the identical stream.
    """

    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("probability", [0.0, 0.3, 0.7, 1.0])
    def test_bit_identical_to_scalar_adapter(self, k, probability):
        lifetimes = np.random.default_rng(13).uniform(
            0.0, 6.0, size=(3, 3, 4))
        scalar_model = FaultModel([StuckClosedConversion(probability)],
                                  seed=55)
        vector_model = FaultModel([StuckClosedConversion(probability)],
                                  seed=55)
        reference = WearState(lifetimes.copy(), k,
                              vector_hook=ScalarHookAdapter(scalar_model))
        native = WearState(
            lifetimes.copy(), k,
            vector_hook=VectorStuckClosedConversion(
                vector_model.injectors[0], vector_model.rng))
        served_ref = reference.run_to_exhaustion(150)
        served_native = native.run_to_exhaustion(150)
        assert np.array_equal(served_ref, served_native)
        for array in ("used", "bank_accesses", "bank_dead", "current",
                      "total_accesses"):
            assert np.array_equal(getattr(reference, array),
                                  getattr(native, array)), array
        assert (scalar_model.total_injections
                == vector_model.total_injections)
        # Same number of fault draws consumed - including the
        # probability-0 short circuit, which must consume none.
        assert (scalar_model.rng.bit_generator.state
                == vector_model.rng.bit_generator.state)

    def test_conversion_is_sticky_across_rounds(self):
        # One switch, lifetime 1, probability 1: dies after the first
        # access and reads closed forever after.
        model = FaultModel([StuckClosedConversion(1.0)], seed=2)
        state = WearState(np.ones((1, 1, 1)), 1,
                          vector_hook=VectorStuckClosedConversion(
                              model.injectors[0], model.rng))
        for _ in range(5):
            assert state.step_access()[0]
        assert state.total_accesses[0] == 5
        assert model.injectors[0].injections == 1

    def test_is_a_vector_fault_hook(self):
        model = FaultModel([StuckClosedConversion(0.5)], seed=0)
        hook = VectorStuckClosedConversion(model.injectors[0], model.rng)
        assert isinstance(hook, VectorFaultHook)


class TestVectorHookFor:
    def test_none_stays_none(self):
        assert vector_hook_for(None) is None

    def test_lone_misfire_goes_native(self):
        model = FaultModel([TransientMisfire(0.2)], seed=3)
        hook = vector_hook_for(model)
        assert isinstance(hook, VectorTransientMisfire)
        assert hook.injector is model.injectors[0]
        assert hook.rng is model.rng

    def test_lone_stuck_closed_goes_native(self):
        model = FaultModel([StuckClosedConversion(0.4)], seed=3)
        hook = vector_hook_for(model)
        assert isinstance(hook, VectorStuckClosedConversion)
        assert hook.injector is model.injectors[0]
        assert hook.rng is model.rng

    def test_mixed_pipeline_falls_back_to_adapter(self):
        model = FaultModel([TransientMisfire(0.2),
                            StuckClosedConversion(0.5)], seed=3)
        hook = vector_hook_for(model)
        assert isinstance(hook, ScalarHookAdapter)
        assert hook.hook is model

    def test_non_model_hook_falls_back_to_adapter(self):
        class Custom:
            def on_switch_actuate(self, switch, closed):
                return closed

        hook = vector_hook_for(Custom())
        assert isinstance(hook, ScalarHookAdapter)


class TestVectorHookSite:
    def test_hook_output_decides_service_but_not_the_dead_latch(self):
        class AllOpen:
            def on_bank_actuate(self, state, instances, copies, closed):
                return np.zeros_like(closed)

        # Healthy bank, hook reports nothing closed: the access falls
        # over, but the physically-alive bank must NOT latch dead.
        state = WearState(np.full((1, 2, 2), 9.0), 1, vector_hook=AllOpen())
        success = state.step_access()
        assert not success[0]
        assert not state.bank_dead.any()
        assert state.exhausted[0]  # fell over past both copies

    def test_stuck_closed_hook_keeps_a_dead_bank_serving(self):
        class AllClosed:
            def on_bank_actuate(self, state, instances, copies, closed):
                return np.ones_like(closed)

        # Worn-out bank, hook reports closures: serves via the hook, and
        # the physical dead state must not stop it (ceiling violation).
        state = WearState(np.zeros((1, 1, 2)), 1, vector_hook=AllClosed())
        assert state.step_access()[0]
        assert state.step_access()[0]
        assert state.total_accesses[0] == 2
