"""SwitchView must be indistinguishable from NEMSSwitch to its callers."""

import numpy as np
import pytest

from repro.core.device import NEMSSwitch
from repro.engine.state import WearState
from repro.errors import ConfigurationError, DeviceWornOutError
from repro.faults.hooks import SwitchLike

LIFETIMES = [0.0, 0.4, 1.0, 2.5, 3.0]


def _paired(lifetime):
    state = WearState(np.array([[[lifetime]]]), 1)
    return state.view(0, 0, 0), NEMSSwitch(lifetime)


class TestIdentity:
    def test_views_are_cached_by_coordinate(self):
        state = WearState(np.ones((2, 2, 2)), 1)
        assert state.view(0, 1, 1) is state.view(0, 1, 1)
        assert state.view(0, 1, 1) is not state.view(1, 1, 1)
        bank = state.bank_views(0, 0)
        assert bank[0] is state.view(0, 0, 0)

    def test_out_of_range_coordinates_rejected(self):
        state = WearState(np.ones((1, 1, 2)), 1)
        with pytest.raises(ConfigurationError):
            state.view(0, 0, 2)

    def test_switch_ids_are_unique_and_stable(self):
        state = WearState(np.ones((1, 1, 3)), 1)
        ids = [view.switch_id for view in state.bank_views(0, 0)]
        assert len(set(ids)) == 3
        assert [v.switch_id for v in state.bank_views(0, 0)] == ids

    def test_satisfies_the_switch_protocol(self):
        state = WearState(np.ones((1, 1, 1)), 1)
        assert isinstance(state.view(0, 0, 0), SwitchLike)
        assert isinstance(NEMSSwitch(1.0), SwitchLike)


class TestActuationParity:
    @pytest.mark.parametrize("lifetime", LIFETIMES)
    def test_actuate_sequence_matches_nemsswitch(self, lifetime):
        view, switch = _paired(lifetime)
        for _ in range(8):
            assert view.actuate() == switch.actuate()
            assert view.cycles_used == switch.cycles_used
            assert view.is_failed == switch.is_failed
            assert view.remaining_cycles == switch.remaining_cycles

    def test_actuate_writes_through_to_the_state(self):
        state = WearState(np.full((1, 1, 2), 3.0), 1)
        state.view(0, 0, 1).actuate()
        assert state.used[0, 0].tolist() == [0, 1]

    def test_actuate_or_raise(self):
        view, _ = _paired(1.0)
        view.actuate_or_raise()
        with pytest.raises(DeviceWornOutError):
            view.actuate_or_raise()


class TestFaultSurface:
    def test_force_fail_matches_nemsswitch(self):
        view, switch = _paired(5.0)
        view.actuate(), switch.actuate()
        view.force_fail(), switch.force_fail()
        assert view.is_failed and switch.is_failed
        assert view.lifetime_cycles == switch.lifetime_cycles == 1.0
        assert not view.actuate() and not switch.actuate()

    def test_add_wear(self):
        view, switch = _paired(5.0)
        view.add_wear(3), switch.add_wear(3)
        assert view.cycles_used == switch.cycles_used == 3
        with pytest.raises(ConfigurationError):
            view.add_wear(-1)

    def test_setters_validate_and_write_through(self):
        state = WearState(np.full((1, 1, 1), 4.0), 1)
        view = state.view(0, 0, 0)
        view.lifetime_cycles = 2.0
        view.cycles_used = 2
        assert state.lifetime[0, 0, 0] == 2.0
        assert view.is_failed
        with pytest.raises(ConfigurationError):
            view.lifetime_cycles = -1.0
