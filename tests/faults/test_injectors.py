"""Tests for the fault injector taxonomy and hardware wiring."""

import numpy as np
import pytest

from repro.core.device import NEMSSwitch
from repro.core.hardware import SimulatedBank, build_serial_copies
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.faults.injectors import (
    FaultModel,
    PrematureStuckOpen,
    ReadoutTimeout,
    ShareCorruption,
    StuckClosedConversion,
    TemperatureDrift,
    TransientMisfire,
)


def model_of(*injectors, seed=0):
    return FaultModel(injectors, rng=np.random.default_rng(seed))


class TestTransientMisfire:
    def test_rate_one_suppresses_every_closure(self):
        model = model_of(TransientMisfire(1.0))
        bank = SimulatedBank([NEMSSwitch(100)], k=1, fault_hook=model)
        assert bank.access() == []
        assert model.total_injections == 1

    def test_rate_zero_is_transparent(self):
        model = model_of(TransientMisfire(0.0))
        bank = SimulatedBank([NEMSSwitch(100)], k=1, fault_hook=model)
        assert bank.access() == [0]
        assert model.total_injections == 0

    def test_misfire_does_not_latch_a_healthy_bank_dead(self):
        """A transient glitch must not permanently condemn the bank."""
        injector = TransientMisfire(1.0)
        model = model_of(injector)
        bank = SimulatedBank([NEMSSwitch(100)], k=1, fault_hook=model)
        assert bank.access() == []
        assert not bank.is_dead
        injector.rate = 0.0  # glitch clears
        assert bank.access() == [0]

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            TransientMisfire(1.5)


class TestPrematureStuckOpen:
    def test_kills_switch_permanently(self):
        model = model_of(PrematureStuckOpen(1.0))
        switch = NEMSSwitch(1000)
        bank = SimulatedBank([switch], k=1, fault_hook=model)
        assert bank.access() == []
        assert switch.is_failed
        # Dead stays dead even with injection disabled afterwards.
        bank2 = SimulatedBank([switch], k=1)
        assert bank2.access() == []


class TestStuckClosedConversion:
    def test_converted_switch_conducts_forever(self):
        model = model_of(StuckClosedConversion(1.0))
        switch = NEMSSwitch(2)
        bank = SimulatedBank([switch], k=1, fault_hook=model)
        for _ in range(20):
            assert bank.access() == [0]
        assert switch.is_failed  # physically dead, electrically alive

    def test_decision_is_sticky_per_switch(self):
        """The stuck/not-stuck draw happens once, at the switch's death."""
        injector = StuckClosedConversion(0.5)
        model = model_of(injector, seed=3)
        switches = [NEMSSwitch(1) for _ in range(40)]
        bank = SimulatedBank(switches, k=1, fault_hook=model)
        bank.access()  # consume the single lifetime
        first = bank.access()
        for _ in range(5):
            assert bank.access() == first

    def test_probability_zero_fails_secure(self):
        model = model_of(StuckClosedConversion(0.0))
        bank = SimulatedBank([NEMSSwitch(1)], k=1, fault_hook=model)
        assert bank.access() == [0]
        assert bank.access() == []


class TestTemperatureDrift:
    def test_room_temperature_adds_no_wear(self):
        model = model_of(TemperatureDrift(25.0))
        switch = NEMSSwitch(10)
        bank = SimulatedBank([switch], k=1, fault_hook=model)
        bank.access()
        assert switch.cycles_used == 1

    def test_heat_consumes_budget_faster(self):
        model = model_of(TemperatureDrift(500.0))
        switch = NEMSSwitch(100)
        bank = SimulatedBank([switch], k=1, fault_hook=model)
        served = 0
        while bank.access_succeeds():
            served += 1
            assert served < 101
        # 500 C scales lifetime by 2/21, so ~9-10 accesses instead of 100.
        assert served < 20

    def test_cold_never_extends_life(self):
        model = model_of(TemperatureDrift(-50.0))
        switch = NEMSSwitch(10)
        bank = SimulatedBank([switch], k=1, fault_hook=model)
        served = 0
        while bank.access_succeeds():
            served += 1
            assert served <= 10
        assert served == 10


class TestShareReadoutFaults:
    def test_corruption_flips_bits(self):
        model = model_of(ShareCorruption(1.0))
        out = model.on_share_readout(0, 0, b"\x00" * 8)
        assert out != b"\x00" * 8
        assert len(out) == 8

    def test_timeout_returns_none_and_short_circuits(self):
        corruption = ShareCorruption(1.0)
        model = model_of(ReadoutTimeout(1.0), corruption)
        assert model.on_share_readout(0, 0, b"data") is None
        assert corruption.injections == 0  # pipeline stopped at timeout

    def test_zero_rates_are_identity(self):
        model = model_of(ShareCorruption(0.0), ReadoutTimeout(0.0))
        assert model.on_share_readout(3, 1, b"data") == b"data"


class TestFaultModelPlumbing:
    def test_injection_counts_merge_by_name(self):
        a, b = TransientMisfire(1.0), TransientMisfire(1.0)
        model = model_of(a, b)
        bank = SimulatedBank([NEMSSwitch(100)], k=1, fault_hook=model)
        bank.access()
        # First injector suppresses; second sees closed=False, no-op.
        assert model.injection_counts() == {"misfire": 1}

    def test_no_hook_paths_unchanged(self):
        """Banks without a hook behave exactly as before (baseline)."""
        rng = np.random.default_rng(0)
        device = WeibullDistribution(alpha=8.0, beta=8.0)
        baseline = build_serial_copies(device, 2, 5, 2,
                                       np.random.default_rng(42))
        hooked = build_serial_copies(device, 2, 5, 2,
                                     np.random.default_rng(42),
                                     fault_hook=None)
        assert baseline.count_successful_accesses(100) == \
            hooked.count_successful_accesses(100)
        assert rng is not None

    def test_fabrication_unaffected_by_fault_model(self):
        """Fault draws come from the model's own rng, never fabrication."""
        device = WeibullDistribution(alpha=8.0, beta=8.0)
        plain = build_serial_copies(device, 2, 5, 2,
                                    np.random.default_rng(7))
        faulty = build_serial_copies(device, 2, 5, 2,
                                     np.random.default_rng(7),
                                     fault_hook=model_of(
                                         TransientMisfire(0.3)))
        for bank_a, bank_b in zip(plain.banks, faulty.banks):
            assert [s.lifetime_cycles for s in bank_a.switches] == \
                [s.lifetime_cycles for s in bank_b.switches]
