"""Tests for checkpointed fault-injection campaigns."""

import numpy as np
import pytest

from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.faults.campaign import (
    FaultCampaignConfig,
    FaultCampaignReport,
    build_fault_model,
    run_fault_campaign,
    run_fault_trial,
    security_ceiling,
)
from repro.sim.rng import substream


@pytest.fixture(scope="module")
def design():
    device = WeibullDistribution(alpha=10.0, beta=8.0)
    return solve_encoded_fractional(device, 40, 0.10, PAPER_CRITERIA)


class TestConfig:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultCampaignConfig(misfire_rate=2.0)
        with pytest.raises(ConfigurationError):
            FaultCampaignConfig(max_accesses=0)

    def test_round_trips_through_dict(self):
        config = FaultCampaignConfig(misfire_rate=0.1, timeout_rate=0.2,
                                     temperature_c=100.0, max_accesses=50)
        assert FaultCampaignConfig.from_dict(config.to_dict()) == config

    def test_faultless_config_builds_no_model(self):
        rng = np.random.default_rng(0)
        assert build_fault_model(FaultCampaignConfig(), rng) is None
        assert build_fault_model(
            FaultCampaignConfig(misfire_rate=0.1), rng) is not None


class TestTrial:
    def test_faultless_trial_meets_design(self, design):
        record = run_fault_trial(design, FaultCampaignConfig(),
                                 substream(0, 0))
        assert record["worn_out"]
        assert not record["violated"]
        assert record["served"] <= security_ceiling(design)
        assert record["served"] >= design.access_bound * 0.9
        assert record["injections"] == {}

    def test_trial_is_a_pure_function_of_the_stream(self, design):
        config = FaultCampaignConfig(misfire_rate=0.05,
                                     corruption_rate=0.05)
        a = run_fault_trial(design, config, substream(9, 4))
        b = run_fault_trial(design, config, substream(9, 4))
        assert a == b

    def test_stuck_closed_violates_ceiling(self, design):
        config = FaultCampaignConfig(stuck_closed_probability=1.0)
        record = run_fault_trial(design, config, substream(1, 0))
        assert record["violated"]
        assert record["capped"] and not record["worn_out"]

    def test_corruption_recovered_via_rs(self, design):
        config = FaultCampaignConfig(corruption_rate=0.08)
        record = run_fault_trial(design, config, substream(2, 0))
        assert record["corruption_detected"] > 0
        assert record["degraded_recoveries"] > 0
        assert record["availability"] > 0.9

    def test_no_rs_fallback_costs_availability(self, design):
        heavy = FaultCampaignConfig(corruption_rate=0.3,
                                    rs_fallback=False)
        record = run_fault_trial(design, heavy, substream(3, 0))
        assert record["coding_failures"] > 0
        assert record["availability"] < 1.0


class TestCampaign:
    CONFIG = FaultCampaignConfig(misfire_rate=0.02, corruption_rate=0.05,
                                 timeout_rate=0.02)

    def test_straight_run_summary(self, design):
        report = run_fault_campaign(design, self.CONFIG, trials=4, seed=5)
        assert report.trials == 4
        assert 0.0 < report.availability <= 1.0
        assert report.violation_rate == 0.0
        assert "availability" in report.render()

    def test_interrupted_run_resumes_bit_identically(self, design,
                                                     tmp_path):
        path = str(tmp_path / "campaign.json")
        uninterrupted = run_fault_campaign(design, self.CONFIG, trials=6,
                                           seed=5)
        # "Kill" the campaign after 3 trials by running a shorter one
        # into the checkpoint, then resume to the full length.
        run_fault_campaign(design, self.CONFIG, trials=3, seed=5,
                           checkpoint_path=path, checkpoint_every=1)
        import json

        stored = json.load(open(path))
        stored["meta"]["trials"] = 6  # what the killed campaign targeted
        json.dump(stored, open(path, "w"))
        resumed = run_fault_campaign(design, self.CONFIG, trials=6, seed=5,
                                     checkpoint_path=path,
                                     checkpoint_every=1)
        assert resumed.records == uninterrupted.records
        assert resumed == uninterrupted

    def test_checkpoint_mismatch_refuses_resume(self, design, tmp_path):
        path = str(tmp_path / "campaign.json")
        run_fault_campaign(design, self.CONFIG, trials=2, seed=5,
                           checkpoint_path=path)
        other = FaultCampaignConfig(misfire_rate=0.5)
        with pytest.raises(ConfigurationError):
            run_fault_campaign(design, other, trials=2, seed=5,
                               checkpoint_path=path)
        with pytest.raises(ConfigurationError):
            run_fault_campaign(design, self.CONFIG, trials=2, seed=6,
                               checkpoint_path=path)

    def test_report_aggregates_records(self, design):
        records = [run_fault_trial(design, self.CONFIG, substream(5, i))
                   for i in range(3)]
        report = FaultCampaignReport.from_records(records, self.CONFIG)
        assert report.trials == 3
        assert report.min_served <= report.mean_served <= report.max_served
        total_calls = sum(r["calls"] for r in records)
        total_success = sum(r["successes"] for r in records)
        assert report.availability == pytest.approx(
            total_success / total_calls)
