"""Tests for the command-line interface."""

import json

import pytest

from repro.cli.main import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_design_requires_device(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["design"])


class TestDesign:
    def test_design_output(self, capsys):
        code, out, _ = run_cli(
            capsys, "design", "--alpha", "14", "--beta", "8",
            "--bound", "1000", "--k-fraction", "0.1", "--paper-criteria")
        assert code == 0
        assert "NEMS switches" in out
        assert "guaranteed:" in out
        assert "mm^2" in out

    def test_design_unencoded(self, capsys):
        code, out, _ = run_cli(
            capsys, "design", "--alpha", "14", "--beta", "12",
            "--bound", "500", "--paper-criteria")
        assert code == 0
        assert "1-of-" in out

    def test_infeasible_reports_error(self, capsys):
        code, _, err = run_cli(
            capsys, "design", "--alpha", "10", "--beta", "0.5",
            "--bound", "100", "--window", "integer")
        assert code == 1
        assert "error:" in err

    def test_custom_criteria(self, capsys):
        code, out, _ = run_cli(
            capsys, "design", "--alpha", "14", "--beta", "8",
            "--bound", "500", "--k-fraction", "0.1",
            "--r-min", "0.95", "--p-fail", "0.05")
        assert code == 0


class TestSweep:
    def test_sweep_prints_chart(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--beta", "8", "--bound", "1000",
            "--alpha-min", "10", "--alpha-max", "14", "--step", "2",
            "--k-fraction", "0.1", "--paper-criteria")
        assert code == 0
        assert "alpha=10:" in out
        assert "alpha=14:" in out
        assert "beta=8" in out  # legend of the chart

    def test_sweep_log_scale(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--beta", "12", "--bound", "1000",
            "--alpha-min", "10", "--alpha-max", "12", "--step", "2",
            "--paper-criteria", "--log-y")
        assert code == 0
        assert "(log y)" in out


class TestAttack:
    def test_attack_probabilities(self, capsys):
        code, out, _ = run_cli(
            capsys, "attack", "--alpha", "14", "--beta", "8",
            "--k-fraction", "0.1", "--paper-criteria")
        assert code == 0
        assert "P[professional brute force succeeds]" in out
        assert "100%" in out  # the software-counter contrast

    def test_attack_with_consumed_budget(self, capsys):
        code, out, _ = run_cli(
            capsys, "attack", "--alpha", "14", "--beta", "8",
            "--k-fraction", "0.1", "--paper-criteria",
            "--legitimate-uses", "91250")
        assert code == 0
        assert "0.0000%" in out


class TestPads:
    def test_pads_analysis(self, capsys):
        code, out, _ = run_cli(
            capsys, "pads", "--alpha", "10", "--beta", "1",
            "--height", "8", "--copies", "128", "--k", "8")
        assert code == 0
        assert "P[receiver succeeds]" in out
        assert "same-path adversary" in out
        assert "pads per mm^2" in out

    def test_pads_design_mode(self, capsys):
        code, out, _ = run_cli(
            capsys, "pads", "--alpha", "10", "--beta", "1", "--design",
            "--receiver-min", "0.99", "--adversary-max", "1e-3")
        assert code == 0
        assert "solved pad geometry" in out
        assert "same-path adversary" in out

    def test_pads_design_infeasible(self, capsys):
        code, _, err = run_cli(
            capsys, "pads", "--alpha", "0.5", "--beta", "8", "--design")
        assert code == 1
        assert "error:" in err


class TestSimulate:
    def test_simulate_summary(self, capsys):
        code, out, _ = run_cli(
            capsys, "simulate", "--alpha", "10", "--beta", "8",
            "--bound", "200", "--k-fraction", "0.1", "--paper-criteria",
            "--trials", "50", "--seed", "3")
        assert code == 0
        assert "simulated 50 fabricated instances" in out
        assert "P[meets legitimate bound" in out

    def test_wall_clock_always_reported(self, capsys):
        code, out, _ = run_cli(
            capsys, "simulate", "--alpha", "10", "--beta", "8",
            "--bound", "200", "--k-fraction", "0.1", "--paper-criteria",
            "--trials", "20", "--seed", "0")
        assert code == 0
        assert "wall clock:" in out
        assert "trials/s" in out


class TestObservabilityFlags:
    BASE = ("simulate", "--alpha", "10", "--beta", "8", "--bound", "200",
            "--k-fraction", "0.1", "--paper-criteria", "--trials", "20",
            "--seed", "0")

    def test_metrics_out_writes_snapshot(self, capsys, tmp_path):
        target = tmp_path / "metrics.json"
        code, _, _ = run_cli(capsys, *self.BASE,
                             "--metrics-out", str(target))
        assert code == 0
        snap = json.loads(target.read_text())
        assert snap["kind"] == "metrics-snapshot"
        assert snap["schema_version"] == 1
        assert snap["counters"]["mc.trials"] == 20

    def test_trace_out_writes_jsonl_spans(self, capsys, tmp_path):
        target = tmp_path / "trace.jsonl"
        code, _, _ = run_cli(capsys, *self.BASE,
                             "--trace-out", str(target))
        assert code == 0
        events = [json.loads(line)
                  for line in target.read_text().splitlines()]
        assert events
        names = {e["name"] for e in events if e["kind"] == "span"}
        assert "cli.simulate" in names

    def test_obs_summary_to_stdout(self, capsys):
        code, out, _ = run_cli(capsys, *self.BASE, "--obs-summary")
        assert code == 0
        assert "counters" in out
        assert "mc.trials" in out

    def test_obs_summary_to_file(self, capsys, tmp_path):
        target = tmp_path / "summary.txt"
        code, out, _ = run_cli(capsys, *self.BASE,
                               "--obs-summary", str(target))
        assert code == 0
        assert "mc.trials" in target.read_text()
        assert "mc.trials" not in out

    def test_recorder_reset_between_runs(self, capsys, tmp_path):
        # Two CLI invocations in one process must not accumulate state.
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        run_cli(capsys, *self.BASE, "--metrics-out", str(first))
        run_cli(capsys, *self.BASE, "--metrics-out", str(second))
        a = json.loads(first.read_text())
        b = json.loads(second.read_text())
        assert a["counters"]["mc.trials"] == b["counters"]["mc.trials"]

    def test_no_flags_means_disabled(self, capsys):
        from repro.obs.recorder import OBS

        code, _, _ = run_cli(capsys, *self.BASE)
        assert code == 0
        assert not OBS.enabled
        assert OBS.metrics.counters == {}


class TestFaultsCheckpointMismatch:
    def test_mismatched_resume_exits_2(self, capsys, tmp_path):
        ckpt = tmp_path / "campaign.ckpt"
        base = ("faults", "--alpha", "10", "--beta", "8", "--bound",
                "200", "--k-fraction", "0.1", "--paper-criteria",
                "--trials", "4", "--checkpoint", str(ckpt),
                "--checkpoint-every", "2")
        code, _, _ = run_cli(capsys, *base, "--seed", "3")
        assert code == 0
        code, _, err = run_cli(capsys, *base, "--seed", "99")
        assert code == 2
        assert "checkpoint mismatch" in err

    def test_faults_reports_wall_clock(self, capsys):
        code, out, _ = run_cli(
            capsys, "faults", "--alpha", "10", "--beta", "8", "--bound",
            "200", "--k-fraction", "0.1", "--paper-criteria",
            "--trials", "2", "--seed", "0")
        assert code == 0
        assert "wall clock:" in out


@pytest.mark.slow
class TestBench:
    def test_tiny_bench_writes_valid_report(self, capsys, tmp_path):
        from repro.obs.bench import validate_bench_report

        target = tmp_path / "BENCH_tiny.json"
        code, out, _ = run_cli(
            capsys, "bench", "--scale", "tiny", "--repeats", "1",
            "--out", str(target))
        assert code == 0
        assert "bench report written" in out
        validate_bench_report(json.loads(target.read_text()))

    def test_overhead_check_passes_generous_budget(self, capsys):
        code, out, _ = run_cli(
            capsys, "bench", "--scale", "tiny", "--repeats", "1",
            "--check-overhead", "500")
        assert code == 0
        assert "overhead check passed" in out

    def test_compare_against_self_passes(self, capsys, tmp_path):
        target = tmp_path / "BENCH_base.json"
        code, _, _ = run_cli(
            capsys, "bench", "--scale", "tiny", "--repeats", "1",
            "--out", str(target))
        assert code == 0
        # Tiny workloads are noisy run to run, so the wiring test uses a
        # nearly-vacuous threshold; regression detection itself is pinned
        # in tests/obs/test_bench.py on doctored reports.
        code, out, _ = run_cli(
            capsys, "bench", "--scale", "tiny", "--repeats", "1",
            "--compare", str(target), "--compare-threshold", "0.99")
        assert code == 0
        assert "bench compare" in out

    def test_compare_flags_doctored_regression(self, capsys, tmp_path):
        target = tmp_path / "BENCH_base.json"
        code, _, _ = run_cli(
            capsys, "bench", "--scale", "tiny", "--repeats", "1",
            "--out", str(target))
        assert code == 0
        # Inflate the baseline so the rerun looks like a regression.
        payload = json.loads(target.read_text())
        for workload in payload["workloads"]:
            workload["throughput_per_s"] *= 1e6
        target.write_text(json.dumps(payload))
        code, _, err = run_cli(
            capsys, "bench", "--scale", "tiny", "--repeats", "1",
            "--compare", str(target))
        assert code == 4
        assert "throughput regressed" in err

    def test_compare_missing_baseline_exits_2(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "bench", "--scale", "tiny", "--repeats", "1",
            "--compare", str(tmp_path / "nope.json"))
        assert code == 2
        assert "cannot read baseline" in err


class TestAdvise:
    def test_advise_lists_candidates(self, capsys):
        code, out, _ = run_cli(
            capsys, "advise", "--alpha", "14", "--beta", "8",
            "--bound", "2000", "--paper-criteria")
        assert code == 0
        assert "k=" in out
        assert "devices" in out

    def test_advise_impossible_constraints(self, capsys):
        code, out, _ = run_cli(
            capsys, "advise", "--alpha", "14", "--beta", "8",
            "--bound", "2000", "--paper-criteria",
            "--max-devices", "1")
        assert code == 1
        assert "no feasible design" in out


class TestDesignSave:
    def test_save_roundtrips(self, capsys, tmp_path):
        target = tmp_path / "design.json"
        code, out, _ = run_cli(
            capsys, "design", "--alpha", "14", "--beta", "8",
            "--bound", "500", "--k-fraction", "0.1", "--paper-criteria",
            "--save", str(target))
        assert code == 0
        assert "design saved" in out
        from repro.core.serialize import loads_design

        design = loads_design(target.read_text())
        assert design.access_bound == 500


class TestExperiments:
    def test_run_single_experiment(self, capsys):
        code, out, _ = run_cli(capsys, "experiments", "sec6.5.2")
        assert code == 0
        assert "0.08512" in out

    def test_unknown_id(self, capsys):
        code, _, err = run_cli(capsys, "experiments", "fig99")
        assert code == 2
        assert "unknown" in err


class TestParallelWorkers:
    SIM = ("simulate", "--alpha", "10", "--beta", "8", "--bound", "40",
           "--k-fraction", "0.1", "--paper-criteria", "--seed", "3")

    def test_simulate_workers_matches_serial_checkpoint_run(self, capsys,
                                                            tmp_path):
        serial = tmp_path / "serial.ckpt"
        parallel = tmp_path / "parallel.ckpt"
        code, serial_out, _ = run_cli(
            capsys, *self.SIM, "--trials", "30",
            "--checkpoint", str(serial))
        assert code == 0
        code, parallel_out, _ = run_cli(
            capsys, *self.SIM, "--trials", "30", "--workers", "2",
            "--checkpoint", str(parallel))
        assert code == 0
        # Identical summary statistics and identical checkpoint bytes.
        assert serial_out.splitlines()[:4] == parallel_out.splitlines()[:4]
        assert serial.read_bytes() == parallel.read_bytes()

    def test_simulate_workers_without_checkpoint(self, capsys):
        code, out, _ = run_cli(
            capsys, *self.SIM, "--trials", "12", "--workers", "2")
        assert code == 0
        assert "simulated 12 fabricated instances" in out

    def test_simulate_hardware_flag_uses_checkpointed_path(self, capsys):
        code, out, _ = run_cli(
            capsys, *self.SIM, "--trials", "8", "--hardware")
        assert code == 0
        assert "simulated 8 fabricated instances" in out

    def test_workers_must_be_positive(self, capsys):
        code, _, err = run_cli(
            capsys, *self.SIM, "--trials", "5", "--workers", "0")
        assert code == 1
        assert "--workers must be >= 1" in err

    def test_faults_workers_matches_serial(self, capsys):
        base = ("faults", "--alpha", "10", "--beta", "8", "--bound", "40",
                "--k-fraction", "0.1", "--paper-criteria", "--trials",
                "6", "--seed", "2", "--misfire-rate", "0.02")
        code, serial_out, _ = run_cli(capsys, *base)
        assert code == 0
        code, parallel_out, _ = run_cli(capsys, *base, "--workers", "2")
        assert code == 0
        # Everything but the wall-clock line is bit-identical.
        strip = [line for line in serial_out.splitlines()
                 if "wall clock" not in line]
        strip_parallel = [line for line in parallel_out.splitlines()
                          if "wall clock" not in line]
        assert strip == strip_parallel
