"""Property tests for the reliability algebra of ``core.structures``.

The sizing solver composes :func:`series_reliability`,
:func:`parallel_reliability` and :func:`k_of_n_reliability` millions of
times, so the algebraic identities relating them must hold for *every*
``(r, n, k)`` - not just the sampled design grid:

- series and parallel are complementary structures: a parallel bank of
  devices with reliability ``r`` fails exactly when a series chain of
  their complements ``1 - r`` "survives";
- k-of-n interpolates between them: ``k = 1`` is the parallel bank and
  ``k = n`` the series chain, exactly;
- every structure's reliability is monotone in the device reliability
  and properly ordered in ``k`` (asking for more live devices can never
  make the system more reliable).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.structures import (
    KOutOfNStructure,
    k_of_n_reliability,
    parallel_reliability,
    series_reliability,
)
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError

RELIABILITIES = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
SIZES = st.integers(1, 400)


@given(r=RELIABILITIES, n=SIZES)
def test_series_parallel_complementarity(r, n):
    # P[parallel fails] = P[every device failed] = P[series of (1-r) "works"]
    assert 1.0 - parallel_reliability(r, n) \
        == pytest.approx(series_reliability(1.0 - r, n), abs=1e-12)


@given(r=RELIABILITIES, n=SIZES)
def test_k_of_n_reduces_to_parallel_at_k_1(r, n):
    assert k_of_n_reliability(r, n, 1) \
        == pytest.approx(parallel_reliability(r, n), abs=1e-12)


@given(r=RELIABILITIES, n=SIZES)
def test_k_of_n_reduces_to_series_at_k_n(r, n):
    assert k_of_n_reliability(r, n, n) \
        == pytest.approx(series_reliability(r, n), abs=1e-12)


@given(r=RELIABILITIES, s=RELIABILITIES, n=SIZES, data=st.data())
def test_reliability_is_monotone_in_r(r, s, n, data):
    k = data.draw(st.integers(1, n))
    lo, hi = sorted((r, s))
    assert series_reliability(lo, n) <= series_reliability(hi, n) + 1e-12
    assert parallel_reliability(lo, n) <= parallel_reliability(hi, n) + 1e-12
    assert k_of_n_reliability(lo, n, k) \
        <= k_of_n_reliability(hi, n, k) + 1e-12


@given(r=RELIABILITIES, n=SIZES, data=st.data())
def test_reliability_is_antitone_in_k(r, n, data):
    # Requiring more live devices can only lower system reliability, so
    # every k-of-n value is sandwiched between series (k=n) and
    # parallel (k=1).
    k = data.draw(st.integers(1, n))
    value = k_of_n_reliability(r, n, k)
    assert series_reliability(r, n) - 1e-12 <= value \
        <= parallel_reliability(r, n) + 1e-12
    if k < n:
        assert k_of_n_reliability(r, n, k + 1) <= value + 1e-12


@given(r=RELIABILITIES, n=SIZES)
def test_reliability_stays_a_probability(r, n):
    for k in {1, (n + 1) // 2, n}:
        assert 0.0 <= k_of_n_reliability(r, n, k) <= 1.0


@given(x=st.floats(0.0, 100.0, allow_nan=False), n=st.integers(1, 50),
       data=st.data())
def test_structure_class_matches_free_function(x, n, data):
    k = data.draw(st.integers(1, n))
    device = WeibullDistribution(alpha=10.0, beta=2.0)
    structure = KOutOfNStructure(device, n, k)
    assert structure.reliability(x) \
        == pytest.approx(k_of_n_reliability(device.reliability(x), n, k),
                         abs=1e-12)


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        series_reliability(0.5, 0)
    with pytest.raises(ConfigurationError):
        parallel_reliability(0.5, 0)
    with pytest.raises(ConfigurationError):
        k_of_n_reliability(0.5, 5, 6)
    with pytest.raises(ConfigurationError):
        k_of_n_reliability(0.5, 5, 0)
