"""Cross-module property tests: invariants that tie the layers together.

Each property here spans at least two subsystems (e.g. solver + analytic
structures + Monte Carlo, or crypto + hardware), so a regression in the
glue between layers is caught even when each layer's own tests pass.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degradation import (
    DegradationCriteria,
    PAPER_CRITERIA,
    solve_encoded_fractional,
)
from repro.core.device import NEMSSwitch
from repro.core.hardware import SimulatedBank
from repro.core.structures import k_of_n_reliability
from repro.core.weibull import WeibullDistribution
from repro.errors import DeviceWornOutError
from repro.sim.montecarlo import simulate_access_bounds

ALPHAS = st.floats(9.0, 22.0)
BETAS = st.sampled_from([6.0, 8.0, 12.0, 16.0])


class TestSolverVsMonteCarlo:
    @given(alpha=ALPHAS, beta=BETAS, seed=st.integers(0, 2 ** 20))
    @settings(max_examples=15, deadline=None)
    def test_fabricated_instances_respect_the_window(self, alpha, beta,
                                                     seed):
        """Whatever the parameters, fabricated hardware lands inside the
        envelope the solver promises: hard-capped above by
        copies * (t + 2), and covering the access bound with at least the
        design's own aggregate coverage probability (shortfalls, when the
        coverage is marginal, are at most a handful of accesses)."""
        device = WeibullDistribution(alpha=alpha, beta=beta)
        design = solve_encoded_fractional(device, 500, 0.10,
                                          PAPER_CRITERIA)
        bounds = simulate_access_bounds(design, 40,
                                        np.random.default_rng(seed))
        assert np.all(bounds <= design.copies * (design.t + 2))
        coverage = design.coverage_probability()
        empirical = (bounds >= design.access_bound).mean()
        assert empirical >= max(coverage - 0.25, 0.0)
        # Any shortfall is marginal: never below 99% of the bound.
        assert np.all(bounds >= design.access_bound * 0.99)


class TestBankVsAnalyticReliability:
    @given(alpha=st.floats(5.0, 20.0), n=st.integers(2, 25),
           data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_bank_survival_matches_binomial_tail(self, alpha, n, data):
        """Empirical P[bank survives access t] tracks the k-of-n formula."""
        k = data.draw(st.integers(1, n))
        t = data.draw(st.integers(1, int(alpha * 2)))
        device = WeibullDistribution(alpha=alpha, beta=8.0)
        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 20)))
        trials = 300
        survived = 0
        for _ in range(trials):
            lifetimes = device.sample(size=n, rng=rng)
            alive_at_t = int((np.floor(lifetimes) >= t).sum())
            survived += alive_at_t >= k
        predicted = float(k_of_n_reliability(
            device.reliability(float(t)), n, k))
        assert survived / trials == pytest.approx(predicted, abs=0.09)


class TestHardwareMonotonicity:
    @given(lifetimes=st.lists(st.floats(0.0, 30.0), min_size=2,
                              max_size=12),
           data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_bank_never_resurrects(self, lifetimes, data):
        k = data.draw(st.integers(1, len(lifetimes)))
        bank = SimulatedBank([NEMSSwitch(v) for v in lifetimes], k)
        results = [bank.access_succeeds() for _ in range(40)]
        # Once False, always False: wear is monotone.
        if False in results:
            first_failure = results.index(False)
            assert not any(results[first_failure:])

    @given(lifetimes=st.lists(st.floats(0.0, 30.0), min_size=1,
                              max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_bank_life_is_max_lifetime_for_k1(self, lifetimes):
        bank = SimulatedBank([NEMSSwitch(v) for v in lifetimes], k=1)
        served = 0
        while bank.access_succeeds():
            served += 1
            assert served <= 31, "bank outlived every member lifetime"
        assert served == int(max(np.floor(v) for v in lifetimes))


class TestPhoneInvariants:
    @given(seed=st.integers(0, 2 ** 16), wrong_first=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_wrong_passcode_never_unlocks(self, seed, wrong_first):
        """No RNG seed, no attempt ordering makes a wrong passcode work
        or a right passcode fail (until wearout)."""
        from repro.connection.phone import SecurePhone

        device = WeibullDistribution(alpha=10.0, beta=8.0)
        design = solve_encoded_fractional(device, 60, 0.10,
                                          PAPER_CRITERIA)
        rng = np.random.default_rng(seed)
        phone = SecurePhone(design, "right", b"data", rng)
        order = (["wrong", "right"] if wrong_first
                 else ["right", "wrong"]) * 10
        try:
            for passcode in order:
                result = phone.login(passcode)
                assert result.success == (passcode == "right")
        except DeviceWornOutError:
            pass


class TestCriteriaDominance:
    @given(alpha=ALPHAS, beta=BETAS)
    @settings(max_examples=15, deadline=None)
    def test_stricter_criteria_never_cheaper(self, alpha, beta):
        device = WeibullDistribution(alpha=alpha, beta=beta)
        loose = solve_encoded_fractional(device, 1_000, 0.10,
                                         PAPER_CRITERIA)
        strict = solve_encoded_fractional(
            device, 1_000, 0.10,
            DegradationCriteria(r_min=0.999, p_fail=0.005))
        assert strict.total_devices >= loose.total_devices
