"""Property tests for the fault taxonomy's security direction.

The security argument of the paper survives realistic faults only if the
*direction* of every fault is right: fail-secure mechanisms (transient
misfires, premature stuck-open fractures, share corruption, readout
timeouts, temperature drift) may cost availability but can never grant
extra accesses, while stuck-closed conversion is the single mechanism
allowed to push the empirical access bound past the design ceiling.
These properties pin that taxonomy against live hardware simulation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.hardware import build_serial_copies
from repro.core.weibull import WeibullDistribution
from repro.faults.campaign import (
    FaultCampaignConfig,
    run_fault_trial,
    security_ceiling,
)
from repro.faults.injectors import (
    FaultModel,
    PrematureStuckOpen,
    ShareCorruption,
    StuckClosedConversion,
    TemperatureDrift,
    TransientMisfire,
)
from repro.sim.rng import substream

DEVICE = WeibullDistribution(alpha=10.0, beta=8.0)
DESIGN = solve_encoded_fractional(DEVICE, 40, 0.10, PAPER_CRITERIA)

RATES = st.floats(0.0, 0.3)
SEEDS = st.integers(0, 2 ** 16)


def served_accesses(design, config, seed):
    """Successful reads of one fabricated instance under ``config``."""
    return run_fault_trial(design, config, substream(seed, 0))["served"]


class TestFailSecureDirection:
    @given(misfire=RATES, premature=st.floats(0.0, 0.05),
           corruption=RATES, timeout=RATES, seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_fail_secure_faults_never_raise_the_bound(self, misfire,
                                                      premature,
                                                      corruption, timeout,
                                                      seed):
        """Any mix of fail-secure faults serves at most what the same
        fabricated instance serves faultlessly (and never exceeds the
        ceiling).  Fabrication draws are identical because the fault
        stream is jumped off the trial stream, not consumed from it."""
        baseline = served_accesses(DESIGN, FaultCampaignConfig(), seed)
        faulty_config = FaultCampaignConfig(
            misfire_rate=misfire,
            premature_stuck_open_rate=premature,
            corruption_rate=corruption,
            timeout_rate=timeout,
        )
        faulty = served_accesses(DESIGN, faulty_config, seed)
        assert faulty <= baseline
        assert faulty <= security_ceiling(DESIGN)

    @given(temperature=st.floats(25.0, 400.0), seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_heat_only_consumes_budget(self, temperature, seed):
        baseline = served_accesses(DESIGN, FaultCampaignConfig(), seed)
        hot = served_accesses(
            DESIGN, FaultCampaignConfig(temperature_c=temperature), seed)
        assert hot <= baseline

    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_only_stuck_closed_breaks_the_ceiling(self, seed):
        """Certain stiction conducts forever: the trial caps out above
        the ceiling instead of wearing out below it."""
        config = FaultCampaignConfig(stuck_closed_probability=1.0)
        record = run_fault_trial(DESIGN, config, substream(seed, 0))
        assert record["violated"]
        assert record["served"] > security_ceiling(DESIGN)


class TestBankLevelDirection:
    """The same direction law, one layer down: raw serial-copies access
    counts under a switch-site fault hook vs the identical fabrication
    without one."""

    CASES = [
        lambda: TransientMisfire(0.2),
        lambda: PrematureStuckOpen(0.02),
        lambda: TemperatureDrift(250.0),
    ]

    @pytest.mark.parametrize("make_injector", CASES)
    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_switch_site_fail_secure_faults(self, make_injector, seed):
        plain = build_serial_copies(DEVICE, 3, 8, 2,
                                    np.random.default_rng(seed))
        hook = FaultModel([make_injector()],
                          rng=np.random.default_rng(seed + 1))
        faulty = build_serial_copies(DEVICE, 3, 8, 2,
                                     np.random.default_rng(seed),
                                     fault_hook=hook)
        cap = 500
        assert (faulty.count_successful_accesses(cap)
                <= plain.count_successful_accesses(cap))

    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_stuck_closed_may_only_add_accesses(self, seed):
        plain = build_serial_copies(DEVICE, 3, 8, 2,
                                    np.random.default_rng(seed))
        hook = FaultModel([StuckClosedConversion(1.0)],
                          rng=np.random.default_rng(seed + 1))
        faulty = build_serial_copies(DEVICE, 3, 8, 2,
                                     np.random.default_rng(seed),
                                     fault_hook=hook)
        cap = 500
        assert (faulty.count_successful_accesses(cap)
                >= plain.count_successful_accesses(cap))

    def test_share_corruption_never_touches_switches(self):
        """Readout-site faults are invisible to the physical layer."""
        plain = build_serial_copies(DEVICE, 3, 8, 2,
                                    np.random.default_rng(5))
        hook = FaultModel([ShareCorruption(1.0)],
                          rng=np.random.default_rng(6))
        faulty = build_serial_copies(DEVICE, 3, 8, 2,
                                     np.random.default_rng(5),
                                     fault_hook=hook)
        assert (faulty.count_successful_accesses(500)
                == plain.count_successful_accesses(500))
