"""Property tests for exact histogram merging (the fleet-percentile core).

The whole fleet telemetry plane rests on one claim: merging per-shard
histogram snapshots yields *bit-identical* summaries to a single
registry that observed every sample directly - for any partitioning of
the samples across shards and any merge order.  That holds because

- quantiles depend only on integer bucket counts (addition is exact and
  commutative) plus exact min/max, and
- the running sum is kept as Shewchuk error-free partials, whose
  ``fsum`` is the correctly-rounded sum of the inputs and therefore
  independent of accumulation order.

These properties pin that claim under hypothesis-generated samples,
partitions and permutations.  Summaries are compared *excluding* the
``partials`` key: the partials list is an order-dependent
representation of an order-independent value, so only its ``fsum``
(the ``sum`` field) is comparable.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.recorder import Histogram, MetricsRegistry

SAMPLES = st.lists(
    st.floats(min_value=1e-12, max_value=1e12,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=60)


def _comparable(summary: dict) -> dict:
    return {key: value for key, value in summary.items()
            if key != "partials"}


def _observe_all(values) -> Histogram:
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist


@given(values=SAMPLES, data=st.data())
@settings(max_examples=200, deadline=None)
def test_merge_is_partition_invariant(values, data):
    """Any split of the samples across shards merges bit-identically."""
    reference = _observe_all(values)
    cuts = sorted(data.draw(st.lists(
        st.integers(0, len(values)), min_size=0, max_size=4)))
    merged = Histogram()
    previous = 0
    for cut in cuts + [len(values)]:
        shard = _observe_all(values[previous:cut])
        merged.merge(Histogram.from_state(shard.summary()))
        previous = cut
    assert _comparable(merged.summary()) == _comparable(reference.summary())


@given(values=SAMPLES, data=st.data())
@settings(max_examples=200, deadline=None)
def test_merge_is_permutation_invariant(values, data):
    """Merging shard snapshots in any order gives the same summary."""
    shards = []
    remaining = list(values)
    while remaining:
        take = data.draw(st.integers(1, len(remaining)))
        shards.append(_observe_all(remaining[:take]))
        remaining = remaining[take:]
    if not shards:
        shards = [Histogram()]
    order = data.draw(st.permutations(range(len(shards))))

    forward = Histogram()
    for shard in shards:
        forward.merge(shard)
    permuted = Histogram()
    for index in order:
        permuted.merge(Histogram.from_state(shards[index].summary()))
    assert _comparable(forward.summary()) == _comparable(permuted.summary())


@given(values=SAMPLES, data=st.data())
@settings(max_examples=100, deadline=None)
def test_registry_merge_matches_single_registry(values, data):
    """Registry-level merge (counters + histograms) is exact end to end."""
    reference = MetricsRegistry()
    for value in values:
        reference.inc("requests")
        reference.observe("latency", value)

    cut = data.draw(st.integers(0, len(values)))
    shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
    for value in values[:cut]:
        shard_a.inc("requests")
        shard_a.observe("latency", value)
    for value in values[cut:]:
        shard_b.inc("requests")
        shard_b.observe("latency", value)

    merged = MetricsRegistry()
    merged.merge(shard_a.snapshot())
    merged.merge(shard_b.snapshot())

    got, want = merged.snapshot(), reference.snapshot()
    assert got["counters"] == want["counters"]
    got_hists = {name: _comparable(summary)
                 for name, summary in got["histograms"].items()}
    want_hists = {name: _comparable(summary)
                  for name, summary in want["histograms"].items()}
    assert got_hists == want_hists


@given(values=SAMPLES)
@settings(max_examples=100, deadline=None)
def test_snapshot_round_trips_through_json(values):
    """Snapshots survive the wire (JSON) without losing exactness."""
    hist = _observe_all(values)
    wired = json.loads(json.dumps(hist.summary()))
    rebuilt = Histogram.from_state(wired)
    assert _comparable(rebuilt.summary()) == _comparable(hist.summary())
