"""Property tests for trace replay: profile strategies + arm identity.

Hypothesis drives the replay through the awkward shapes the fixed-seed
differential suite cannot enumerate: profiles whose days draw zero
events, traces that exhaust the hardware mid-day, and truncation at an
arbitrary prefix.  Every property holds for both arms, and the central
one - scalar/vectorized report identity - is itself a property here.

The designs are tiny on purpose: the scalar arm pays the real KDF per
login, so example budgets stay small.
"""

from dataclasses import asdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degradation import PAPER_CRITERIA
from repro.core.sizing import size_architecture
from repro.sim.rng import make_rng
from repro.sim.timeline import UsageProfile
from repro.sim.traces import (
    EndState,
    EventKind,
    TraceEvent,
    generate_trace,
    replay_trace,
)

_DESIGN_CACHE: dict = {}


def _design(bound):
    design = _DESIGN_CACHE.get(bound)
    if design is None:
        design = _DESIGN_CACHE[bound] = size_architecture(
            10.0, 8.0, bound, k_fraction=0.10, criteria=PAPER_CRITERIA,
            window="fractional")
    return design


#: Usage profiles skewed toward sparse days: small means make zero-event
#: days common, which is exactly the chunk-boundary shape the batched
#: arm must not mishandle.
profiles = st.builds(UsageProfile,
                     mean_daily=st.floats(min_value=0.2, max_value=4.0,
                                          allow_nan=False))

#: (profile, days, trace-seed, burst) - a full trace recipe.  Bursts
#: land mid-trace; size 0 disables them.
trace_recipes = st.tuples(
    profiles,
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2 ** 16),
    st.integers(min_value=0, max_value=6),
)


def _trace_from_recipe(recipe):
    profile, days, seed, burst = recipe
    return generate_trace(profile, days, make_rng(seed), typo_rate=0.1,
                          attacker_burst_day=days // 2 if burst else None,
                          attacker_burst_size=burst)


def _reports(trace, bound, seed, fraction, modules=1):
    designs = [_design(bound)] * modules
    passcodes = [f"pc-{i}" for i in range(modules)]
    out = []
    for vectorized in (False, True):
        rng = make_rng(seed)
        report = replay_trace(designs, passcodes, b"property storage",
                              trace, rng, fraction, vectorized=vectorized)
        out.append((asdict(report), rng.bit_generator.state))
    return out


class TestReplayArmIdentity:
    @given(recipe=trace_recipes,
           bound=st.sampled_from([6, 10, 16]),
           seed=st.integers(min_value=0, max_value=2 ** 16),
           fraction=st.sampled_from([0.0, 0.05, 0.4]),
           modules=st.integers(min_value=1, max_value=2))
    @settings(max_examples=12, deadline=None)
    def test_scalar_and_vectorized_agree(self, recipe, bound, seed,
                                         fraction, modules):
        """Report and final RNG state match for arbitrary profiles -
        including zero-event days and exhaustion mid-day."""
        trace = _trace_from_recipe(recipe)
        scalar, vector = _reports(trace, bound, seed, fraction, modules)
        assert scalar == vector

    @given(recipe=trace_recipes,
           cut=st.integers(min_value=0, max_value=40),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=8, deadline=None)
    def test_truncated_trace_agrees(self, recipe, cut, seed):
        """Arm identity survives truncation at any prefix length."""
        trace = _trace_from_recipe(recipe)[:cut]
        scalar, vector = _reports(trace, 8, seed, 0.05)
        assert scalar == vector


class TestReplayInvariants:
    @given(recipe=trace_recipes,
           seed=st.integers(min_value=0, max_value=2 ** 16),
           vectorized=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_report_accounting_is_consistent(self, recipe, seed,
                                             vectorized):
        trace = _trace_from_recipe(recipe)
        report = replay_trace([_design(8)], ["pc-0"], b"property storage",
                              trace, make_rng(seed), 0.05,
                              vectorized=vectorized)
        served = (report.owner_logins + report.owner_typos
                  + report.attacker_attempts)
        assert served <= len(trace)
        if report.died_on_day is None:
            assert served == len(trace)
            assert report.end_state is EndState.SERVED_FULL_TRACE
        else:
            assert served < len(trace)
            last_day = trace[served].day
            assert report.died_on_day == last_day
        if trace:
            assert report.days_served <= trace[-1].day + 1
        else:
            assert report.days_served == 0

    @given(days=st.integers(min_value=1, max_value=6),
           seed=st.integers(min_value=0, max_value=2 ** 16),
           vectorized=st.booleans())
    @settings(max_examples=6, deadline=None)
    def test_exhaustion_mid_day_dies_on_a_served_day(self, days, seed,
                                                     vectorized):
        """A dense single day exhausts the tiny device partway through:
        the death day must be a day the trace actually contains."""
        trace = [TraceEvent(day, EventKind.OWNER_LOGIN)
                 for day in range(days) for _ in range(20)]
        report = replay_trace([_design(6)], ["pc-0"], b"property storage",
                              trace, make_rng(seed), 0.05,
                              vectorized=vectorized)
        assert report.died_on_day is not None
        assert 0 <= report.died_on_day < days
        assert report.end_state is EndState.WORN_OUT
