"""Property tests for GF(256) field laws and Shamir threshold sharing.

Two layers of the secret-storage stack (Section 4.1.4) get algebraic
treatment: the field itself must satisfy the field axioms for *all*
operand pairs hypothesis throws at it, and the sharing scheme must
(a) reconstruct from any k-of-n subset and (b) reveal nothing from k-1
shares - pinned here both by the API refusing to interpolate and by the
exact XOR-masking identity of the share polynomials.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.shamir import Share, recover_secret, split_secret
from repro.errors import ConfigurationError, InsufficientSharesError
from repro.gf.field import GF_AES, GF_RS
from repro.sim.rng import make_rng

ELEMENTS = st.integers(0, 255)
NONZERO = st.integers(1, 255)
SECRETS = st.binary(min_size=1, max_size=64)
SEEDS = st.integers(0, 2 ** 16)
FIELDS = st.sampled_from([GF_RS, GF_AES])


class TestFieldLaws:
    @given(field=FIELDS, a=ELEMENTS, b=ELEMENTS, c=ELEMENTS)
    def test_multiplication_is_commutative_and_associative(self, field,
                                                           a, b, c):
        assert field.mul(a, b) == field.mul(b, a)
        assert field.mul(field.mul(a, b), c) \
            == field.mul(a, field.mul(b, c))

    @given(field=FIELDS, a=ELEMENTS, b=ELEMENTS, c=ELEMENTS)
    def test_multiplication_distributes_over_addition(self, field,
                                                      a, b, c):
        assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)

    @given(field=FIELDS, a=ELEMENTS)
    def test_identities_and_annihilator(self, field, a):
        assert field.mul(a, 1) == a
        assert field.mul(a, 0) == 0
        assert field.add(a, a) == 0  # characteristic 2

    @given(field=FIELDS, a=NONZERO)
    def test_inverse_and_division_agree(self, field, a):
        inv = field.inverse(a)
        assert field.mul(a, inv) == 1
        assert field.div(1, a) == inv

    @given(field=FIELDS, a=ELEMENTS, b=NONZERO)
    def test_division_inverts_multiplication(self, field, a, b):
        assert field.div(field.mul(a, b), b) == a

    @given(field=FIELDS, a=NONZERO, e=st.integers(-10, 10))
    def test_pow_matches_repeated_multiplication(self, field, a, e):
        expected = 1
        base = a if e >= 0 else field.inverse(a)
        for _ in range(abs(e)):
            expected = field.mul(expected, base)
        assert field.pow(a, e) == expected

    @given(field=FIELDS, seed=SEEDS)
    @settings(max_examples=20)
    def test_vectorized_ops_match_scalar(self, field, seed):
        rng = make_rng(seed)
        a = rng.integers(0, 256, size=32, dtype=np.uint8)
        b = rng.integers(1, 256, size=32, dtype=np.uint8)
        mul = field.mul_vec(a, b)
        div = field.div_vec(a, b)
        for i in range(a.size):
            assert int(mul[i]) == field.mul(int(a[i]), int(b[i]))
            assert int(div[i]) == field.div(int(a[i]), int(b[i]))


class TestShamirRoundTrip:
    @given(secret=SECRETS, k=st.integers(1, 5), extra=st.integers(0, 4),
           seed=SEEDS)
    @settings(max_examples=40)
    def test_any_k_of_n_subset_reconstructs(self, secret, k, extra, seed):
        n = k + extra
        shares = split_secret(secret, k, n, rng=make_rng(seed))
        assert len(shares) == n
        for subset in itertools.combinations(shares, k):
            assert recover_secret(list(subset), k) == secret

    @given(secret=SECRETS, k=st.integers(2, 6), seed=SEEDS)
    @settings(max_examples=40)
    def test_k_minus_1_shares_refuse_to_interpolate(self, secret, k,
                                                    seed):
        shares = split_secret(secret, k, k + 1, rng=make_rng(seed))
        with pytest.raises(InsufficientSharesError):
            recover_secret(shares[:k - 1], k)
        # Duplicate indices cannot masquerade as distinct shares.
        with pytest.raises(InsufficientSharesError):
            recover_secret([shares[0]] * k, k)

    @given(secret_a=SECRETS, seed=SEEDS, k=st.integers(2, 5))
    @settings(max_examples=40)
    def test_shares_only_mask_the_secret_bytewise(self, secret_a, seed,
                                                  k):
        """k-1 shares reveal nothing: exact XOR-masking identity.

        Under one fixed coefficient draw (same rng seed), the share
        polynomial is q(x) = s + a1*x + ... ; swapping the secret byte s
        for s' shifts *every* share by exactly s ^ s'.  So any share set
        is consistent with every possible secret under some coefficient
        draw - the scheme's information-theoretic hiding, checked as an
        exact bit identity rather than statistically.
        """
        secret_b = bytes(b ^ 0x5A for b in secret_a)
        shares_a = split_secret(secret_a, k, k + 1, rng=make_rng(seed))
        shares_b = split_secret(secret_b, k, k + 1, rng=make_rng(seed))
        mask = bytes(x ^ y for x, y in zip(secret_a, secret_b))
        for share_a, share_b in zip(shares_a, shares_b):
            assert share_b.data \
                == bytes(x ^ m for x, m in zip(share_a.data, mask))

    @given(secret=SECRETS, seed=SEEDS)
    @settings(max_examples=20)
    def test_single_share_uniform_over_seed_ensemble(self, secret, seed):
        # Coarse distributional check: across an ensemble of coefficient
        # draws, share #1's first byte takes many values (a leaky scheme
        # that echoed the secret byte would collapse to one).
        observed = {
            split_secret(secret, 2, 2,
                         rng=make_rng(seed + i))[0].data[0]
            for i in range(48)
        }
        assert len(observed) > 8

    def test_k_equals_1_is_plain_replication(self):
        shares = split_secret(b"replicated", 1, 3, rng=make_rng(0))
        assert all(s.data == b"replicated" for s in shares)

    @given(secret=SECRETS, seed=SEEDS)
    def test_invalid_parameters_rejected(self, secret, seed):
        with pytest.raises(ConfigurationError):
            split_secret(secret, 3, 2, rng=make_rng(seed))
        with pytest.raises(ConfigurationError):
            split_secret(b"", 1, 1, rng=make_rng(seed))
        with pytest.raises(ConfigurationError):
            Share(index=0, data=b"x")
