"""Property tests for the Weibull wearout model (paper Eqs. 1-3).

The architecture sizing math leans on exact algebraic identities of the
two-parameter Weibull - cdf/reliability complementarity, quantile
inversion, the scale-preserving ``scaled()`` transform, and the
series-chain equivalence R_series(x) = R(x)**n of Section 4.1.2.  These
hold for *every* valid (alpha, beta, x), which is what hypothesis
checks.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError

ALPHAS = st.floats(1e-2, 1e6, allow_nan=False, allow_infinity=False)
BETAS = st.floats(0.2, 50.0, allow_nan=False, allow_infinity=False)
TIMES = st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False)
PROBS = st.floats(0.0, 0.999999, allow_nan=False, allow_infinity=False)


@given(alpha=ALPHAS, beta=BETAS, x=TIMES)
def test_cdf_and_reliability_are_complementary(alpha, beta, x):
    w = WeibullDistribution(alpha=alpha, beta=beta)
    assert w.cdf(x) + w.reliability(x) == pytest.approx(1.0, abs=1e-12)
    assert 0.0 <= w.cdf(x) <= 1.0
    assert 0.0 <= w.reliability(x) <= 1.0


@given(alpha=ALPHAS, beta=BETAS, x=TIMES, y=TIMES)
def test_cdf_is_monotone_nondecreasing(alpha, beta, x, y):
    w = WeibullDistribution(alpha=alpha, beta=beta)
    lo, hi = sorted((x, y))
    assert w.cdf(lo) <= w.cdf(hi)
    assert w.reliability(lo) >= w.reliability(hi)


@given(alpha=ALPHAS, beta=BETAS)
def test_boundary_values(alpha, beta):
    w = WeibullDistribution(alpha=alpha, beta=beta)
    assert w.cdf(0.0) == 0.0
    assert w.reliability(0.0) == 1.0
    assert w.quantile(0.0) == 0.0


@given(alpha=ALPHAS, beta=st.floats(0.5, 20.0), q=PROBS)
def test_quantile_inverts_cdf(alpha, beta, q):
    w = WeibullDistribution(alpha=alpha, beta=beta)
    assert w.cdf(w.quantile(q)) == pytest.approx(q, abs=1e-9)


@given(alpha=ALPHAS, beta=BETAS, x=TIMES,
       factor=st.floats(1e-3, 1e3))
def test_scaled_preserves_shape(alpha, beta, x, factor):
    # scaled(f) stretches time by f: R_scaled(f * x) == R(x), exactly
    # the paper's "scale alpha down" acceleration (Fig. 3a).
    w = WeibullDistribution(alpha=alpha, beta=beta)
    scaled = w.scaled(factor)
    assert scaled.beta == w.beta
    assert scaled.alpha == pytest.approx(alpha * factor)
    assert scaled.reliability(factor * x) \
        == pytest.approx(w.reliability(x), rel=1e-9, abs=1e-300)


@given(alpha=ALPHAS, beta=st.floats(0.5, 20.0), x=TIMES,
       n=st.integers(1, 64))
def test_series_equivalent_matches_power_identity(alpha, beta, x, n):
    # n devices in series survive x iff all survive x:
    # R_series(x) = R(x)**n (Section 4.1.2).
    w = WeibullDistribution(alpha=alpha, beta=beta)
    series = w.series_equivalent(n)
    assert series.beta == w.beta
    log_r = w.log_reliability(x)
    assert series.log_reliability(x) \
        == pytest.approx(n * log_r, rel=1e-9, abs=1e-12)
    if log_r > -700:  # exp underflows past that; compare in log space only
        assert series.reliability(x) \
            == pytest.approx(w.reliability(x) ** n, rel=1e-7, abs=1e-300)


@given(alpha=ALPHAS, beta=st.floats(0.5, 20.0))
def test_median_is_the_half_quantile(alpha, beta):
    w = WeibullDistribution(alpha=alpha, beta=beta)
    assert w.median == pytest.approx(w.quantile(0.5), rel=1e-12)
    assert w.cdf(w.median) == pytest.approx(0.5, abs=1e-12)


@given(alpha=ALPHAS, beta=BETAS, seed=st.integers(0, 2 ** 16),
       size=st.integers(1, 64))
@settings(max_examples=25)
def test_samples_respect_the_cdf_bounds(alpha, beta, seed, size):
    # Inverse-transform samples are nonnegative, finite, and land in the
    # distribution's support with plausible cdf mass.
    from repro.sim.rng import make_rng

    w = WeibullDistribution(alpha=alpha, beta=beta)
    draws = w.sample(size=size, rng=make_rng(seed))
    assert np.all(draws >= 0.0)
    assert np.all(np.isfinite(draws))


@given(bad=st.one_of(st.floats(max_value=0.0), st.just(float("nan"))))
def test_invalid_parameters_rejected(bad):
    with pytest.raises(ConfigurationError):
        WeibullDistribution(alpha=bad, beta=8.0)
    with pytest.raises(ConfigurationError):
        WeibullDistribution(alpha=10.0, beta=bad)


def test_mean_matches_gamma_formula():
    w = WeibullDistribution(alpha=10.0, beta=8.0)
    assert w.mean == pytest.approx(10.0 * math.gamma(1.125))
