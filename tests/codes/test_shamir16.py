"""Tests for wide Shamir sharing over GF(2^16)."""

import pytest

from repro.codes.shamir16 import (
    MAX_SHARES16,
    Share16,
    recover_secret16,
    split_secret16,
)
from repro.errors import ConfigurationError, InsufficientSharesError

SECRET = b"a storage key!!!"


class TestShare16:
    def test_index_bounds(self):
        Share16(index=1, data=b"ab")
        Share16(index=MAX_SHARES16, data=b"ab")
        with pytest.raises(ConfigurationError):
            Share16(index=0, data=b"ab")
        with pytest.raises(ConfigurationError):
            Share16(index=MAX_SHARES16 + 1, data=b"ab")

    def test_even_length_enforced(self):
        with pytest.raises(ConfigurationError):
            Share16(index=1, data=b"abc")


class TestRoundtrip:
    def test_basic(self, rng):
        shares = split_secret16(SECRET, 3, 8, rng)
        assert recover_secret16(shares[:3], k=3,
                                secret_len=len(SECRET)) == SECRET

    def test_more_than_255_shares(self, rng):
        """The whole point of the GF(2^16) variant."""
        shares = split_secret16(SECRET, 40, 400, rng)
        chosen = [shares[i] for i in rng.choice(400, 40, replace=False)]
        assert recover_secret16(chosen, k=40,
                                secret_len=len(SECRET)) == SECRET

    def test_odd_length_secret_padded_and_stripped(self, rng):
        secret = b"odd"
        shares = split_secret16(secret, 2, 4, rng)
        assert recover_secret16(shares[:2], k=2,
                                secret_len=len(secret)) == secret

    def test_below_threshold_raises(self, rng):
        shares = split_secret16(SECRET, 5, 9, rng)
        with pytest.raises(InsufficientSharesError):
            recover_secret16(shares[:4], k=5)

    def test_k1_replicates(self, rng):
        shares = split_secret16(SECRET, 1, 3, rng)
        assert all(recover_secret16([s], k=1, secret_len=len(SECRET))
                   == SECRET for s in shares)

    def test_conflicting_duplicates_rejected(self, rng):
        shares = split_secret16(SECRET, 2, 3, rng)
        fake = Share16(index=shares[0].index,
                       data=b"\x00" * len(shares[0].data))
        with pytest.raises(ConfigurationError):
            recover_secret16([shares[0], fake, shares[1]], k=2)

    def test_parameter_validation(self, rng):
        with pytest.raises(ConfigurationError):
            split_secret16(SECRET, 0, 5, rng)
        with pytest.raises(ConfigurationError):
            split_secret16(b"", 2, 5, rng)
        with pytest.raises(InsufficientSharesError):
            recover_secret16([])


class TestWideBankKeyStore:
    def test_keystore_uses_gf65536_for_wide_banks(self, rng):
        from repro.connection.keystore import BankKeyStore

        store = BankKeyStore(SECRET, n=400, k=30, rng=rng)
        live = list(range(100, 130))
        assert store.recover(live) == SECRET
        with pytest.raises(InsufficientSharesError):
            store.recover(live[:29])

    def test_keystore_mode_boundaries(self, rng):
        from repro.connection.keystore import BankKeyStore

        assert BankKeyStore(SECRET, 255, 2, rng)._mode == "gf256"
        assert BankKeyStore(SECRET, 256, 2, rng)._mode == "gf65536"
        assert BankKeyStore(SECRET, 1000, 1, rng)._mode == "replicas"
