"""Tests for Shamir secret sharing."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.shamir import Share, recover_secret, split_secret
from repro.errors import ConfigurationError, InsufficientSharesError

SECRET = b"the launch code is 00000000"


class TestShareContainer:
    def test_valid_indices(self):
        Share(index=1, data=b"x")
        Share(index=255, data=b"x")

    @pytest.mark.parametrize("index", [0, 256, -3])
    def test_invalid_indices_rejected(self, index):
        with pytest.raises(ConfigurationError):
            Share(index=index, data=b"x")


class TestSplit:
    def test_share_count_and_indices(self, rng):
        shares = split_secret(SECRET, 3, 7, rng)
        assert [s.index for s in shares] == list(range(1, 8))
        assert all(len(s.data) == len(SECRET) for s in shares)

    def test_k1_shares_equal_secret(self, rng):
        # Degree-0 polynomial: every share IS the secret.
        shares = split_secret(SECRET, 1, 4, rng)
        assert all(s.data == SECRET for s in shares)

    @pytest.mark.parametrize("k,n", [(0, 5), (6, 5), (1, 256)])
    def test_invalid_parameters(self, k, n, rng):
        with pytest.raises(ConfigurationError):
            split_secret(SECRET, k, n, rng)

    def test_empty_secret_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            split_secret(b"", 2, 3, rng)

    def test_shares_differ_between_splits(self, rng):
        a = split_secret(SECRET, 3, 5, rng)
        b = split_secret(SECRET, 3, 5, rng)
        assert a[0].data != b[0].data  # fresh randomness each split


class TestRecover:
    def test_any_k_subset_recovers(self, rng):
        shares = split_secret(SECRET, 3, 6, rng)
        for combo in itertools.combinations(shares, 3):
            assert recover_secret(list(combo), k=3) == SECRET

    def test_extra_shares_ok(self, rng):
        shares = split_secret(SECRET, 2, 5, rng)
        assert recover_secret(shares, k=2) == SECRET

    def test_too_few_raises(self, rng):
        shares = split_secret(SECRET, 4, 6, rng)
        with pytest.raises(InsufficientSharesError):
            recover_secret(shares[:3], k=4)

    def test_no_shares_raises(self):
        with pytest.raises(InsufficientSharesError):
            recover_secret([])

    def test_duplicate_consistent_shares_deduplicated(self, rng):
        shares = split_secret(SECRET, 2, 4, rng)
        assert recover_secret([shares[0], shares[0], shares[1]],
                              k=2) == SECRET

    def test_conflicting_duplicates_rejected(self, rng):
        shares = split_secret(SECRET, 2, 4, rng)
        fake = Share(index=shares[0].index, data=b"x" * len(SECRET))
        with pytest.raises(ConfigurationError):
            recover_secret([shares[0], fake, shares[1]], k=2)

    def test_inconsistent_lengths_rejected(self, rng):
        shares = split_secret(SECRET, 2, 4, rng)
        bad = Share(index=9, data=b"short")
        with pytest.raises(ConfigurationError):
            recover_secret([shares[0], bad], k=2)

    def test_k_minus_one_shares_reveal_nothing(self, rng):
        """Perfect secrecy shape: with k-1 shares, every candidate secret
        byte remains equally consistent - we verify the share bytes for a
        fixed position are uniform over many splits."""
        counts = np.zeros(256, dtype=int)
        secret = b"\x00"
        for _ in range(2000):
            share = split_secret(secret, 2, 2, rng)[0]
            counts[share.data[0]] += 1
        # Chi-square-ish sanity: no value should dominate.
        assert counts.max() < 2000 * 0.02

    @given(secret=st.binary(min_size=1, max_size=64), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, secret, data):
        n = data.draw(st.integers(1, 10))
        k = data.draw(st.integers(1, n))
        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 31)))
        shares = split_secret(secret, k, n, rng)
        chosen = data.draw(st.permutations(shares))[:k]
        assert recover_secret(chosen, k=k) == secret
