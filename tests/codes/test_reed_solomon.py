"""Tests for the Reed-Solomon code (encode, erasures, errors, errata)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.reed_solomon import ReedSolomonCode
from repro.errors import ConfigurationError, DecodingFailure


@pytest.fixture(scope="module")
def code():
    return ReedSolomonCode(20, 8)


def random_message(rng, k=8):
    return [int(v) for v in rng.integers(0, 256, k)]


class TestConstruction:
    @pytest.mark.parametrize("n,k", [(0, 0), (10, 0), (10, 11), (256, 10)])
    def test_invalid_parameters(self, n, k):
        with pytest.raises(ConfigurationError):
            ReedSolomonCode(n, k)

    def test_generator_degree(self, code):
        assert code.generator_poly.degree == code.parity

    def test_generator_roots(self, code):
        for i in range(code.parity):
            assert code.generator_poly(code.field.exp(i)) == 0

    def test_rate_one_code(self):
        code = ReedSolomonCode(5, 5)
        msg = [1, 2, 3, 4, 5]
        assert code.encode(msg) == msg


class TestEncoding:
    def test_systematic(self, code, rng):
        msg = random_message(rng)
        assert code.encode(msg)[:8] == msg

    def test_codeword_has_zero_syndromes(self, code, rng):
        cw = code.encode(random_message(rng))
        assert code.is_codeword(cw)
        assert all(s == 0 for s in code.syndromes(cw))

    def test_wrong_length_rejected(self, code):
        with pytest.raises(ConfigurationError):
            code.encode([1, 2, 3])

    def test_non_byte_symbols_rejected(self, code):
        with pytest.raises(ConfigurationError):
            code.encode([300] * 8)

    def test_linearity(self, code, rng):
        a, b = random_message(rng), random_message(rng)
        xor = [x ^ y for x, y in zip(a, b)]
        cw_xor = [x ^ y for x, y in zip(code.encode(a), code.encode(b))]
        assert code.encode(xor) == cw_xor


class TestErasureDecoding:
    def test_max_erasures_recovered(self, code, rng):
        msg = random_message(rng)
        cw = code.encode(msg)
        erasures = list(rng.choice(20, size=code.parity, replace=False))
        received = list(cw)
        for p in erasures:
            received[p] = 0xAA
        assert code.decode_erasures(received, erasures) == msg

    def test_erasures_beyond_capacity_raise(self, code, rng):
        cw = code.encode(random_message(rng))
        with pytest.raises(DecodingFailure):
            code.decode_erasures(cw, list(range(code.parity + 1)))

    def test_no_erasures_is_identity(self, code, rng):
        msg = random_message(rng)
        assert code.decode_erasures(code.encode(msg), []) == msg

    def test_erasure_positions_validated(self, code, rng):
        cw = code.encode(random_message(rng))
        with pytest.raises(ConfigurationError):
            code.decode_erasures(cw, [99])

    def test_wrong_word_length_rejected(self, code):
        with pytest.raises(ConfigurationError):
            code.decode([1, 2, 3])


class TestErrorDecoding:
    def test_single_error(self, code, rng):
        msg = random_message(rng)
        received = code.encode(msg)
        received[5] ^= 0x42
        assert code.decode(received) == msg

    def test_max_errors(self, code, rng):
        msg = random_message(rng)
        received = code.encode(msg)
        for p in rng.choice(20, size=code.parity // 2, replace=False):
            received[p] ^= int(rng.integers(1, 256))
        assert code.decode(received) == msg

    def test_error_in_parity_region(self, code, rng):
        msg = random_message(rng)
        received = code.encode(msg)
        received[19] ^= 0x99
        assert code.decode(received) == msg

    def test_too_many_errors_raise_or_miscorrect_detectably(self, code, rng):
        msg = random_message(rng)
        received = code.encode(msg)
        for p in range(code.parity // 2 + 2):
            received[p] ^= int(rng.integers(1, 256))
        with pytest.raises(DecodingFailure):
            code.decode(received)

    def test_max_errors_budget_parameter(self, code, rng):
        msg = random_message(rng)
        received = code.encode(msg)
        received[3] ^= 1
        with pytest.raises(DecodingFailure):
            code.decode(received, max_errors=0)


class TestErrataDecoding:
    def test_mixed_errors_and_erasures(self, code, rng):
        # 2e + f <= 12: use 3 errors + 6 erasures.
        msg = random_message(rng)
        cw = code.encode(msg)
        received = list(cw)
        erasures = [0, 4, 9, 13, 17, 19]
        for p in erasures:
            received[p] = 0xEE
        for p in (2, 7, 11):
            received[p] ^= int(rng.integers(1, 256))
        assert code.decode(received, erasure_positions=erasures) == msg

    def test_erased_zeros_still_recovered(self, code, rng):
        """Erasing symbols that happen to be zero must still decode."""
        msg = [0] * 8
        cw = code.encode(msg)
        assert code.decode_erasures(cw, [0, 1, 2]) == msg

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_errata_roundtrip_property(self, data):
        n = data.draw(st.integers(8, 40))
        k = data.draw(st.integers(1, n - 2))
        code = ReedSolomonCode(n, k)
        msg = data.draw(st.lists(st.integers(0, 255), min_size=k,
                                 max_size=k))
        cw = code.encode(msg)
        parity = n - k
        f = data.draw(st.integers(0, parity))
        e = data.draw(st.integers(0, (parity - f) // 2))
        positions = data.draw(st.permutations(range(n)))
        erasures = sorted(positions[:f])
        error_positions = positions[f:f + e]
        received = list(cw)
        for p in erasures:
            received[p] = data.draw(st.integers(0, 255))
        for p in error_positions:
            received[p] ^= data.draw(st.integers(1, 255))
        assert code.decode(received, erasure_positions=erasures) == msg


class TestThresholdSemantics:
    def test_any_k_symbols_suffice(self, rng):
        """The architecture's claim: any k of n symbols recover the key."""
        code = ReedSolomonCode(12, 4)
        msg = random_message(rng, 4)
        cw = code.encode(msg)
        keep = list(rng.choice(12, size=4, replace=False))
        erasures = [i for i in range(12) if i not in keep]
        received = [cw[i] if i in keep else 0 for i in range(12)]
        assert code.decode_erasures(received, erasures) == msg
