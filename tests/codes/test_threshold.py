"""Tests for RS-based threshold sharing of byte strings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.threshold import rs_recover_secret, rs_split_secret
from repro.errors import ConfigurationError, InsufficientSharesError

SECRET = b"storage decryption key material!"


class TestSplit:
    def test_share_count(self):
        shares = rs_split_secret(SECRET, 4, 10)
        assert len(shares) == 10
        assert [s.index for s in shares] == list(range(1, 11))

    def test_share_size_is_chunk_count(self):
        shares = rs_split_secret(SECRET, 4, 10)
        expected_chunks = -(-len(SECRET) // 4)
        assert all(len(s.data) == expected_chunks for s in shares)

    def test_systematic_head_shares_contain_secret_chunks(self):
        # RS sharing is NOT hiding: share i < k literally holds byte
        # column i of the chunked secret.  Verified here so the docstring
        # warning stays true.
        shares = rs_split_secret(SECRET, 4, 10)
        column0 = bytes(SECRET[c * 4] for c in range(len(shares[0].data)))
        assert shares[0].data == column0

    @pytest.mark.parametrize("k,n", [(0, 5), (6, 5), (1, 300)])
    def test_invalid_parameters(self, k, n):
        with pytest.raises(ConfigurationError):
            rs_split_secret(SECRET, k, n)

    def test_empty_secret_rejected(self):
        with pytest.raises(ConfigurationError):
            rs_split_secret(b"", 2, 3)


class TestRecover:
    def test_all_shares(self):
        shares = rs_split_secret(SECRET, 4, 10)
        assert rs_recover_secret(shares, 4, 10,
                                 secret_len=len(SECRET)) == SECRET

    def test_any_k_shares(self, rng):
        shares = rs_split_secret(SECRET, 4, 10)
        for _ in range(10):
            chosen = [shares[i]
                      for i in rng.choice(10, size=4, replace=False)]
            assert rs_recover_secret(chosen, 4, 10,
                                     secret_len=len(SECRET)) == SECRET

    def test_too_few_raises(self):
        shares = rs_split_secret(SECRET, 5, 9)
        with pytest.raises(InsufficientSharesError):
            rs_recover_secret(shares[:4], 5, 9)

    def test_padding_stripped_without_length(self):
        shares = rs_split_secret(b"abc", 2, 5)
        assert rs_recover_secret(shares, 2, 5) == b"abc"

    def test_trailing_nul_needs_explicit_length(self):
        secret = b"ends in nuls\x00\x00"
        shares = rs_split_secret(secret, 3, 7)
        assert rs_recover_secret(shares, 3, 7,
                                 secret_len=len(secret)) == secret

    def test_secret_len_validation(self):
        shares = rs_split_secret(b"abc", 2, 5)
        with pytest.raises(ConfigurationError):
            rs_recover_secret(shares, 2, 5, secret_len=1000)

    def test_out_of_range_index_rejected(self):
        shares = rs_split_secret(SECRET, 2, 3)
        with pytest.raises(ConfigurationError):
            rs_recover_secret(shares, 2, 2)

    def test_error_correction_fixes_corrupt_share(self):
        shares = rs_split_secret(SECRET, 4, 12)
        from repro.codes.shamir import Share

        corrupted = list(shares)
        corrupted[5] = Share(index=shares[5].index,
                             data=bytes(b ^ 0x55 for b in shares[5].data))
        out = rs_recover_secret(corrupted, 4, 12,
                                secret_len=len(SECRET),
                                correct_errors=True)
        assert out == SECRET

    def test_without_error_correction_corruption_propagates(self):
        from repro.codes.shamir import Share
        from repro.errors import DecodingFailure

        shares = rs_split_secret(SECRET, 4, 12)
        corrupted = list(shares)
        corrupted[5] = Share(index=shares[5].index,
                             data=bytes(b ^ 0x55 for b in shares[5].data))
        try:
            out = rs_recover_secret(corrupted, 4, 12,
                                    secret_len=len(SECRET))
        except DecodingFailure:
            return  # detected - also acceptable
        assert out != SECRET

    @given(secret=st.binary(min_size=1, max_size=40), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, secret, data):
        n = data.draw(st.integers(2, 12))
        k = data.draw(st.integers(1, n))
        shares = rs_split_secret(secret, k, n)
        chosen = data.draw(st.permutations(shares))[:k]
        out = rs_recover_secret(list(chosen), k, n, secret_len=len(secret))
        assert out == secret
