"""Whole-repo RNG hygiene: all randomness flows through repro.sim.rng.

Reproducibility depends on every random draw descending from an explicit
seed.  A single stray ``np.random.default_rng()`` (or worse, the legacy
global ``np.random.seed`` / ``RandomState`` API) re-introduces hidden
state that checkpoint/resume and the paired overhead benchmark cannot
replay.  This test greps the source tree so the invariant cannot rot
silently; ``repro/sim/rng.py`` is the one place allowed to construct
generators.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

ALLOWED = {Path("sim") / "rng.py"}

FORBIDDEN = re.compile(
    r"np\.random\.default_rng\s*\("
    r"|numpy\.random\.default_rng\s*\("
    r"|np\.random\.seed\s*\("
    r"|numpy\.random\.seed\s*\("
    r"|RandomState\s*\(")


def _code_lines(path: Path):
    """Source lines with comments and docstring-ish text stripped out."""
    in_doc = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.split("#", 1)[0]
        quotes = stripped.count('"""') + stripped.count("'''")
        if in_doc:
            if quotes:
                in_doc = False
            continue
        if quotes == 1:
            in_doc = True
            continue
        yield lineno, stripped


def test_no_ad_hoc_generators_outside_sim_rng():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.relative_to(SRC) in ALLOWED:
            continue
        for lineno, line in _code_lines(path):
            if FORBIDDEN.search(line):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: "
                                 f"{line.strip()}")
    assert not offenders, (
        "direct NumPy RNG construction outside repro/sim/rng.py - route "
        "through make_rng/substream/derive_rng instead:\n"
        + "\n".join(offenders))


def test_allowlist_is_current():
    # If rng.py moves, the allowlist (and this test) must follow it.
    for rel in ALLOWED:
        assert (SRC / rel).is_file(), f"allowlisted file missing: {rel}"
