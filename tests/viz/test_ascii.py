"""Tests for the ASCII chart renderers."""

import pytest

from repro.errors import ConfigurationError
from repro.viz.ascii import heatmap, line_chart


class TestLineChart:
    def test_basic_structure(self):
        out = line_chart({"a": [(0, 0.0), (1, 1.0), (2, 2.0)]},
                         width=20, height=6, title="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert any("o" in line for line in lines)
        assert "o = a" in lines[-1]

    def test_extremes_on_correct_rows(self):
        out = line_chart({"a": [(0, 0.0), (10, 5.0)]}, width=20, height=6)
        lines = out.splitlines()
        assert "o" in lines[0]       # max on the top row
        assert "o" in lines[5]       # min on the bottom row

    def test_multiple_series_distinct_markers(self):
        out = line_chart({"a": [(0, 1.0)], "b": [(1, 2.0)]},
                         width=20, height=6)
        assert "o = a" in out
        assert "x = b" in out

    def test_gaps_skipped(self):
        out = line_chart({"a": [(0, 1.0), (1, None), (2, 3.0)]},
                         width=20, height=6)
        assert "o" in out

    def test_log_scale_labels(self):
        out = line_chart({"a": [(0, 10.0), (1, 1e6)]}, width=20, height=6,
                         log_y=True)
        assert "1.00e+06" in out
        assert "(log y)" in out

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            line_chart({"a": [(0, 0.0)]}, log_y=True)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            line_chart({"a": [(0, None)]})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ConfigurationError):
            line_chart({"a": [(0, 1.0)]}, width=5, height=2)

    def test_flat_series_does_not_crash(self):
        out = line_chart({"a": [(0, 5.0), (1, 5.0)]}, width=20, height=6)
        assert "o" in out


class TestHeatmap:
    def test_shape_and_labels(self):
        out = heatmap([[0.0, 1.0], [0.5, 0.25]], ["r1", "r2"], ["c1", "c2"])
        lines = out.splitlines()
        assert "c1" in lines[0] and "c2" in lines[0]
        assert lines[1].startswith("r1")
        assert lines[2].startswith("r2")

    def test_shading_monotone(self):
        out = heatmap([[0.0, 0.5, 1.0]], ["r"], ["a", "b", "c"])
        row = out.splitlines()[1]
        assert " " in row and "@" in row

    def test_clamps_out_of_range(self):
        out = heatmap([[-1.0, 2.0]], ["r"], ["a", "b"])
        row = out.splitlines()[1]
        assert "@" in row

    def test_custom_max_value(self):
        out = heatmap([[50.0]], ["r"], ["a"], max_value=100.0)
        assert "=" in out.splitlines()[1] or "+" in out.splitlines()[1]

    def test_label_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            heatmap([[1.0]], ["r1", "r2"], ["c1"])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            heatmap([], [], [])

    def test_invalid_max_rejected(self):
        with pytest.raises(ConfigurationError):
            heatmap([[1.0]], ["r"], ["c"], max_value=0)

    def test_title_and_scale_line(self):
        out = heatmap([[0.3]], ["r"], ["c"], title="grid")
        assert out.splitlines()[0] == "grid"
        assert out.splitlines()[-1].startswith("scale:")
