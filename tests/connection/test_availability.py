"""Tests for the availability / drain-attack analysis."""

import pytest

from repro.connection.availability import drain_analysis, simulate_drain_attack
from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def design():
    device = WeibullDistribution(alpha=10.0, beta=8.0)
    return solve_encoded_fractional(device, 200, 0.10, PAPER_CRITERIA)


class TestClosedForm:
    def test_no_drain_is_full_service(self, design):
        result = drain_analysis(design, owner_rate_per_day=50.0)
        assert result.service_loss_fraction == pytest.approx(0.0)
        assert result.attacker_accesses_wasted == 0.0

    def test_equal_drain_halves_service(self, design):
        result = drain_analysis(design, owner_rate_per_day=50.0,
                                drain_rate_per_day=50.0)
        assert result.service_loss_fraction == pytest.approx(0.5)
        assert result.owner_accesses_served == pytest.approx(
            design.guaranteed_accesses / 2)

    def test_heavy_drain_dominates(self, design):
        result = drain_analysis(design, owner_rate_per_day=50.0,
                                drain_rate_per_day=450.0)
        assert result.service_loss_fraction == pytest.approx(0.9)

    def test_validation(self, design):
        with pytest.raises(ConfigurationError):
            drain_analysis(design, owner_rate_per_day=0.0)
        with pytest.raises(ConfigurationError):
            drain_analysis(design, drain_rate_per_day=-1.0)


class TestSimulated:
    def test_confidentiality_holds_while_availability_degrades(self, design,
                                                               rng):
        result = simulate_drain_attack(design, "pass", rng,
                                       owner_per_cycle=1,
                                       attacker_per_cycle=1)
        # Attacker burned about half the budget...
        assert result.attacker_accesses_wasted == pytest.approx(
            result.owner_accesses_served, rel=0.05)
        # ...the owner still got >= half the accesses, and (asserted
        # inside the simulation) no attacker attempt ever succeeded.
        assert result.owner_accesses_served >= design.access_bound / 2 - 2

    def test_matches_closed_form_split(self, design, rng):
        sim = simulate_drain_attack(design, "pass", rng,
                                    owner_per_cycle=1,
                                    attacker_per_cycle=3)
        frac = sim.attacker_accesses_wasted / (
            sim.owner_accesses_served + sim.attacker_accesses_wasted)
        assert frac == pytest.approx(0.75, abs=0.02)

    def test_validation(self, design, rng):
        with pytest.raises(ConfigurationError):
            simulate_drain_attack(design, "pass", rng, owner_per_cycle=0)
