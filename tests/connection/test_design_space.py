"""Tests for the Fig. 4 / Table 1 design-space sweeps (reduced grids)."""


from repro.connection.design_space import (
    SMARTPHONE_ACCESS_BOUND,
    fig4a_unencoded_sweep,
    fig4b_encoded_sweep,
    fig4c_relaxed_criteria_sweep,
    fig4d_stronger_passcodes,
    table1_area_cost,
)

ALPHAS = (10, 14, 20)


class TestFig4a:
    def test_exponential_growth_in_alpha(self):
        curves = fig4a_unencoded_sweep(alphas=ALPHAS, betas=(8,))
        totals = [t for _, t in curves[8]]
        assert totals[0] < totals[1] < totals[2]
        assert totals[2] / totals[0] > 100  # orders of magnitude

    def test_higher_beta_cheaper(self):
        curves = fig4a_unencoded_sweep(alphas=(14,), betas=(8, 16))
        assert curves[16][0][1] < curves[8][0][1]

    def test_lab_default(self):
        assert SMARTPHONE_ACCESS_BOUND == 91_250


class TestFig4b:
    def test_linear_scaling_in_alpha(self):
        curves = fig4b_encoded_sweep(alphas=ALPHAS, k_fractions=(0.10,),
                                     betas=(8,))
        totals = [t for _, t in curves[(0.10, 8)]]
        assert totals[0] < totals[1] < totals[2]
        assert totals[2] / totals[0] < 4  # linear, not exponential

    def test_four_orders_below_unencoded(self):
        plain = fig4a_unencoded_sweep(alphas=(14,), betas=(8,))[8][0][1]
        encoded = fig4b_encoded_sweep(alphas=(14,), k_fractions=(0.10,),
                                      betas=(8,))[(0.10, 8)][0][1]
        assert plain / encoded > 100

    def test_beta4_feasible_with_encoding(self):
        """Encoding tolerates high process variation (beta = 4)."""
        curves = fig4b_encoded_sweep(alphas=(14,), k_fractions=(0.10,),
                                     betas=(4,))
        assert curves[(0.10, 4)][0][1] is not None

    def test_diminishing_returns_beyond_30_percent(self):
        curves = fig4b_encoded_sweep(alphas=(14,),
                                     k_fractions=(0.10, 0.30), betas=(8,))
        t10 = curves[(0.10, 8)][0][1]
        t30 = curves[(0.30, 8)][0][1]
        assert abs(t30 - t10) / t10 < 0.25  # negligible change


class TestFig4c:
    def test_relaxed_ceiling_cuts_devices(self):
        curves = fig4c_relaxed_criteria_sweep(alphas=(14,),
                                              p_values=(0.01, 0.10))
        strict = curves[0.01][0]["total_devices"]
        loose = curves[0.10][0]["total_devices"]
        assert 0.4 < loose / strict < 0.85  # paper: ~40% reduction

    def test_upper_bound_moves_little(self):
        curves = fig4c_relaxed_criteria_sweep(alphas=(14,),
                                              p_values=(0.01, 0.10))
        strict = curves[0.01][0]["expected_upper_bound"]
        loose = curves[0.10][0]["expected_upper_bound"]
        assert abs(loose - strict) / SMARTPHONE_ACCESS_BOUND < 0.10


class TestFig4d:
    def test_relaxed_targets_monotone_cheaper(self):
        results = fig4d_stronger_passcodes(betas=(8,), alphas=(10, 14, 20))
        row = results[8]
        assert row["beyond_1pct"] < row["baseline"]
        assert row["beyond_2pct"] < row["beyond_1pct"]

    def test_drastic_reduction_like_paper(self):
        results = fig4d_stronger_passcodes(betas=(8,), alphas=(10, 14, 20))
        row = results[8]
        assert row["baseline"] / row["beyond_2pct"] > 10


class TestTable1:
    def test_rows_for_all_design_points(self):
        rows = table1_area_cost(design_points=((10.51, 16), (18.69, 10)))
        assert len(rows) == 2
        assert all(r["area_with_encoding_mm2"] is not None for r in rows)

    def test_encoding_shrinks_area(self):
        rows = table1_area_cost(design_points=((18.69, 10),))
        row = rows[0]
        assert (row["area_with_encoding_mm2"]
                < row["area_without_encoding_mm2"] / 10)

    def test_worst_cell_benefits_most(self):
        """Paper Table 1's pattern: the loose-bound high-variation device
        (18.69, 10) gains the largest factor from encoding."""
        rows = table1_area_cost(design_points=((10.51, 16), (18.69, 10)))
        gains = [r["area_without_encoding_mm2"] / r["area_with_encoding_mm2"]
                 for r in rows]
        assert gains[1] > gains[0]
