"""Tests for binding shares to bank switches."""

import pytest

from repro.connection.keystore import BankKeyStore
from repro.errors import ConfigurationError, InsufficientSharesError

SECRET = b"sixteen byte key"


class TestUnencoded:
    def test_any_single_switch_recovers(self, rng):
        store = BankKeyStore(SECRET, n=5, k=1, rng=rng)
        for i in range(5):
            assert store.recover([i]) == SECRET

    def test_supports_large_banks(self, rng):
        # Unencoded banks can exceed 255 devices (plain replicas).
        store = BankKeyStore(SECRET, n=1000, k=1, rng=rng)
        assert store.recover([999]) == SECRET


class TestEncoded:
    def test_threshold_recovery(self, rng):
        store = BankKeyStore(SECRET, n=10, k=4, rng=rng)
        assert store.recover([1, 3, 5, 7]) == SECRET
        assert store.recover(list(range(10))) == SECRET

    def test_below_threshold_raises(self, rng):
        store = BankKeyStore(SECRET, n=10, k=4, rng=rng)
        with pytest.raises(InsufficientSharesError):
            store.recover([0, 1, 2])

    def test_wide_encoded_banks_use_gf65536(self, rng):
        store = BankKeyStore(SECRET, n=300, k=30, rng=rng)
        assert store.recover(list(range(200, 230))) == SECRET

    def test_index_validation(self, rng):
        store = BankKeyStore(SECRET, n=5, k=2, rng=rng)
        with pytest.raises(ConfigurationError):
            store.recover([0, 7])

    def test_invalid_parameters(self, rng):
        with pytest.raises(ConfigurationError):
            BankKeyStore(SECRET, n=5, k=6, rng=rng)
        with pytest.raises(ConfigurationError):
            BankKeyStore(b"", n=5, k=2, rng=rng)
        with pytest.raises(ConfigurationError):
            BankKeyStore(SECRET, n=5, k=2, rng=rng, scheme="xor")


class TestRSScheme:
    def test_threshold_recovery(self, rng):
        store = BankKeyStore(SECRET, n=12, k=4, rng=rng, scheme="rs")
        assert store.recover([0, 3, 7, 11]) == SECRET

    def test_corrupted_share_corrected(self, rng):
        """Fault injection: a decaying register flips bits.  RS corrects
        it (2e <= n - k - f); Shamir would return garbage."""
        from repro.codes.shamir import Share

        store = BankKeyStore(SECRET, n=12, k=4, rng=rng, scheme="rs")
        bad = store._shares[2]
        store._shares[2] = Share(index=bad.index,
                                 data=bytes(b ^ 0xFF for b in bad.data))
        # All 12 live: 1 error, 0 erasures, capacity (12-4)/2 = 4.
        assert store.recover(list(range(12))) == SECRET

    def test_shamir_returns_garbage_on_corruption(self, rng):
        from repro.codes.shamir import Share

        store = BankKeyStore(SECRET, n=12, k=4, rng=rng, scheme="shamir")
        bad = store._shares[2]
        store._shares[2] = Share(index=bad.index,
                                 data=bytes(b ^ 0xFF for b in bad.data))
        recovered = store.recover([0, 1, 2, 3])  # includes the bad share
        assert recovered != SECRET  # silent corruption - the RS motivation

    def test_corruption_beyond_radius_detected(self, rng):
        from repro.codes.shamir import Share
        from repro.errors import DecodingFailure

        store = BankKeyStore(SECRET, n=6, k=4, rng=rng, scheme="rs")
        for i in (0, 1, 2):  # 3 errors > (6-4)/2 = 1
            bad = store._shares[i]
            store._shares[i] = Share(index=bad.index,
                                     data=bytes(b ^ 0xA5
                                                for b in bad.data))
        with pytest.raises(DecodingFailure):
            store.recover(list(range(6)))

    def test_rs_capped_at_255(self, rng):
        with pytest.raises(ConfigurationError):
            BankKeyStore(SECRET, n=300, k=30, rng=rng, scheme="rs")
