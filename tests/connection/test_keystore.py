"""Tests for binding shares to bank switches."""

import pytest

from repro.codes.shamir import Share
from repro.connection.keystore import BankKeyStore
from repro.errors import (
    ConfigurationError,
    DecodingFailure,
    InsufficientSharesError,
)
from repro.faults.injectors import FaultModel, ReadoutTimeout, ShareCorruption

SECRET = b"sixteen byte key"


def corrupt_share(store, index, mask=0xA5):
    bad = store._shares[index]
    store._shares[index] = Share(index=bad.index,
                                 data=bytes(b ^ mask for b in bad.data))


class TestUnencoded:
    def test_any_single_switch_recovers(self, rng):
        store = BankKeyStore(SECRET, n=5, k=1, rng=rng)
        for i in range(5):
            assert store.recover([i]) == SECRET

    def test_supports_large_banks(self, rng):
        # Unencoded banks can exceed 255 devices (plain replicas).
        store = BankKeyStore(SECRET, n=1000, k=1, rng=rng)
        assert store.recover([999]) == SECRET


class TestEncoded:
    def test_threshold_recovery(self, rng):
        store = BankKeyStore(SECRET, n=10, k=4, rng=rng)
        assert store.recover([1, 3, 5, 7]) == SECRET
        assert store.recover(list(range(10))) == SECRET

    def test_below_threshold_raises(self, rng):
        store = BankKeyStore(SECRET, n=10, k=4, rng=rng)
        with pytest.raises(InsufficientSharesError):
            store.recover([0, 1, 2])

    def test_wide_encoded_banks_use_gf65536(self, rng):
        store = BankKeyStore(SECRET, n=300, k=30, rng=rng)
        assert store.recover(list(range(200, 230))) == SECRET

    def test_index_validation(self, rng):
        store = BankKeyStore(SECRET, n=5, k=2, rng=rng)
        with pytest.raises(ConfigurationError):
            store.recover([0, 7])

    def test_invalid_parameters(self, rng):
        with pytest.raises(ConfigurationError):
            BankKeyStore(SECRET, n=5, k=6, rng=rng)
        with pytest.raises(ConfigurationError):
            BankKeyStore(b"", n=5, k=2, rng=rng)
        with pytest.raises(ConfigurationError):
            BankKeyStore(SECRET, n=5, k=2, rng=rng, scheme="xor")


class TestRSScheme:
    def test_threshold_recovery(self, rng):
        store = BankKeyStore(SECRET, n=12, k=4, rng=rng, scheme="rs")
        assert store.recover([0, 3, 7, 11]) == SECRET

    def test_corrupted_share_corrected(self, rng):
        """Fault injection: a decaying register flips bits.  RS corrects
        it (2e <= n - k - f); Shamir would return garbage."""
        from repro.codes.shamir import Share

        store = BankKeyStore(SECRET, n=12, k=4, rng=rng, scheme="rs")
        bad = store._shares[2]
        store._shares[2] = Share(index=bad.index,
                                 data=bytes(b ^ 0xFF for b in bad.data))
        # All 12 live: 1 error, 0 erasures, capacity (12-4)/2 = 4.
        assert store.recover(list(range(12))) == SECRET

    def test_shamir_returns_garbage_on_corruption(self, rng):
        from repro.codes.shamir import Share

        store = BankKeyStore(SECRET, n=12, k=4, rng=rng, scheme="shamir")
        bad = store._shares[2]
        store._shares[2] = Share(index=bad.index,
                                 data=bytes(b ^ 0xFF for b in bad.data))
        recovered = store.recover([0, 1, 2, 3])  # includes the bad share
        assert recovered != SECRET  # silent corruption - the RS motivation

    def test_corruption_beyond_radius_detected(self, rng):
        from repro.codes.shamir import Share
        from repro.errors import DecodingFailure

        store = BankKeyStore(SECRET, n=6, k=4, rng=rng, scheme="rs")
        for i in (0, 1, 2):  # 3 errors > (6-4)/2 = 1
            bad = store._shares[i]
            store._shares[i] = Share(index=bad.index,
                                     data=bytes(b ^ 0xA5
                                                for b in bad.data))
        with pytest.raises(DecodingFailure):
            store.recover(list(range(6)))

    def test_rs_capped_at_255(self, rng):
        with pytest.raises(ConfigurationError):
            BankKeyStore(SECRET, n=300, k=30, rng=rng, scheme="rs")


class TestRSCorrectionBoundary:
    """RS recovery succeeds iff ``2 * errors <= n - k - missing``."""

    def test_recovers_exactly_up_to_the_radius(self, rng):
        # n=12, k=4, 2 shares missing: radius (12 - 4 - 2) // 2 = 3.
        live = list(range(10))  # indices 10, 11 never closed
        for errors in range(4):
            store = BankKeyStore(SECRET, n=12, k=4, rng=rng, scheme="rs")
            for i in range(errors):
                corrupt_share(store, i)
            assert store.recover(live) == SECRET, f"{errors} errors"

    def test_beyond_radius_raises_with_context(self, rng):
        store = BankKeyStore(SECRET, n=12, k=4, rng=rng, scheme="rs",
                             bank_id=7)
        for i in range(4):  # 4 errors > radius 3 with 2 missing
            corrupt_share(store, i)
        with pytest.raises(DecodingFailure) as excinfo:
            store.recover(list(range(10)))
        assert excinfo.value.bank_id == 7
        assert excinfo.value.n == 12
        assert excinfo.value.k == 4

    def test_erasures_and_errors_trade_off(self, rng):
        # Same code, 4 missing: radius drops to (12 - 4 - 4) // 2 = 2.
        live = list(range(8))
        store = BankKeyStore(SECRET, n=12, k=4, rng=rng, scheme="rs")
        corrupt_share(store, 0)
        corrupt_share(store, 1)
        assert store.recover(live) == SECRET
        corrupt_share(store, 2)  # third error: outside the radius
        with pytest.raises(DecodingFailure):
            store.recover(live)


class TestErrorContext:
    def test_below_threshold_error_carries_context(self, rng):
        store = BankKeyStore(SECRET, n=10, k=4, rng=rng, bank_id=3)
        with pytest.raises(InsufficientSharesError) as excinfo:
            store.recover([0, 5])
        err = excinfo.value
        assert err.supplied == 2
        assert err.required == 4
        assert err.bank_id == 3
        assert err.timeouts is None  # switches, not readouts, were short

    def test_timeout_starved_recovery_reports_timeouts(self, rng):
        hook = FaultModel([ReadoutTimeout(1.0)], rng=rng)
        store = BankKeyStore(SECRET, n=10, k=4, rng=rng, bank_id=1,
                             fault_hook=hook)
        with pytest.raises(InsufficientSharesError) as excinfo:
            store.recover(list(range(10)))
        err = excinfo.value
        assert err.supplied == 0
        assert err.required == 4
        assert err.bank_id == 1
        assert err.timeouts == 10


class TestFaultHookReadout:
    def test_hook_free_store_reads_shares_verbatim(self, rng):
        store = BankKeyStore(SECRET, n=10, k=4, rng=rng)
        assert store.fault_hook is None
        assert store.recover(list(range(10))) == SECRET

    def test_corrupting_hook_defeats_shamir_but_not_rs(self, rng):
        corrupting = FaultModel([ShareCorruption(0.3)], rng=rng)
        shamir = BankKeyStore(SECRET, n=12, k=4, rng=rng,
                              fault_hook=corrupting)
        rs = BankKeyStore(SECRET, n=12, k=4, rng=rng, scheme="rs",
                          fault_hook=FaultModel([ShareCorruption(0.1)],
                                                rng=rng))
        # Shamir eventually reconstructs garbage without noticing.
        results = {shamir.recover(list(range(12))) for _ in range(30)}
        assert any(r != SECRET for r in results)
        # RS corrects the same pressure (expected ~1.2 errors/read,
        # radius (12 - 4) // 2 = 4).
        for _ in range(30):
            assert rs.recover(list(range(12))) == SECRET
