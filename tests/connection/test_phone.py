"""Tests for the secure phone login flow and M-way replication."""

import pytest

from repro.connection.phone import MWayPhone, SecurePhone
from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError, DeviceWornOutError

STORAGE = b"contacts, photos, messages"


def small_design(bound=60):
    device = WeibullDistribution(alpha=10.0, beta=8.0)
    return solve_encoded_fractional(device, bound, 0.10, PAPER_CRITERIA)


class TestSecurePhone:
    def test_correct_passcode_decrypts(self, rng):
        phone = SecurePhone(small_design(), "1234", STORAGE, rng)
        result = phone.login("1234")
        assert result.success
        assert result.plaintext == STORAGE

    def test_wrong_passcode_fails_but_counts(self, rng):
        phone = SecurePhone(small_design(), "1234", STORAGE, rng)
        result = phone.login("0000")
        assert not result.success
        assert result.plaintext is None
        assert phone.login_attempts == 1

    def test_every_attempt_spends_hardware(self, rng):
        phone = SecurePhone(small_design(), "1234", STORAGE, rng)
        for i in range(10):
            phone.login(f"{i:04d}")
        assert phone.connection.accesses == 10

    def test_bricks_at_the_bound(self, rng):
        design = small_design(bound=40)
        phone = SecurePhone(design, "1234", STORAGE, rng)
        with pytest.raises(DeviceWornOutError):
            for _ in range(10 ** 6):
                phone.login("9999")
        assert phone.is_bricked
        with pytest.raises(DeviceWornOutError):
            phone.login("1234")  # even the right passcode is too late

    def test_empty_passcode_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            SecurePhone(small_design(), "", STORAGE, rng)

    def test_change_passcode_rotates_credentials(self, rng):
        phone = SecurePhone(small_design(), "old-code", STORAGE, rng)
        assert phone.change_passcode("old-code", "new-code")
        assert phone.login("new-code").success
        assert not phone.login("old-code").success

    def test_change_passcode_wrong_old_fails_but_costs(self, rng):
        phone = SecurePhone(small_design(), "old-code", STORAGE, rng)
        before = phone.connection.accesses
        assert not phone.change_passcode("wrong", "new-code")
        assert phone.connection.accesses == before + 1
        assert phone.login("old-code").success  # unchanged

    def test_change_passcode_validates_new(self, rng):
        phone = SecurePhone(small_design(), "old-code", STORAGE, rng)
        with pytest.raises(ConfigurationError):
            phone.change_passcode("old-code", "")


class TestMWayPhone:
    def test_requires_matching_passcodes(self, rng):
        with pytest.raises(ConfigurationError):
            MWayPhone([small_design()] * 2, ["only-one"], STORAGE, rng)

    def test_requires_distinct_passcodes(self, rng):
        with pytest.raises(ConfigurationError):
            MWayPhone([small_design()] * 2, ["same", "same"], STORAGE, rng)

    def test_migration_preserves_storage(self, rng):
        phone = MWayPhone([small_design(), small_design()],
                          ["first", "second"], STORAGE, rng)
        assert phone.login("first").success
        phone.migrate()
        assert phone.active_module == 1
        result = phone.login("second")
        assert result.success and result.plaintext == STORAGE

    def test_old_passcode_dead_after_migration(self, rng):
        phone = MWayPhone([small_design(), small_design()],
                          ["first", "second"], STORAGE, rng)
        phone.migrate()
        assert not phone.login("first").success

    def test_cannot_migrate_past_last_module(self, rng):
        phone = MWayPhone([small_design()], ["only"], STORAGE, rng)
        with pytest.raises(DeviceWornOutError):
            phone.migrate()

    def test_m_property_and_migration_count(self, rng):
        designs = [small_design()] * 3
        phone = MWayPhone(designs, ["a", "b", "c"], STORAGE, rng)
        assert phone.m == 3
        phone.migrate()
        phone.migrate()
        assert phone.migrations == 2
        assert not phone.is_bricked
