"""Tests for the multi-user shared device."""

import pytest

from repro.connection.multiuser import SharedPhone
from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError, DeviceWornOutError

STORAGE = b"shared workspace files"


def design(bound=120):
    device = WeibullDistribution(alpha=10.0, beta=8.0)
    return solve_encoded_fractional(device, bound, 0.10, PAPER_CRITERIA)


@pytest.fixture
def phone(rng):
    return SharedPhone(design(), "alice", "alice-pass", STORAGE, rng)


class TestLogin:
    def test_owner_logs_in(self, phone):
        result = phone.login("alice", "alice-pass")
        assert result.success and result.plaintext == STORAGE

    def test_wrong_passcode_fails_and_costs(self, phone):
        before = phone.connection.accesses
        assert not phone.login("alice", "wrong").success
        assert phone.connection.accesses == before + 1

    def test_unknown_user_rejected_without_cost(self, phone):
        before = phone.connection.accesses
        with pytest.raises(ConfigurationError):
            phone.login("mallory", "x")
        assert phone.connection.accesses == before

    def test_ledger_counts_per_user(self, phone):
        phone.login("alice", "alice-pass")
        phone.login("alice", "whoops")
        assert phone.access_ledger["alice"] == 2


class TestUserManagement:
    def test_add_user_and_login(self, phone):
        assert phone.add_user("alice", "alice-pass", "bob", "bob-pass")
        assert "bob" in phone.users
        result = phone.login("bob", "bob-pass")
        assert result.success and result.plaintext == STORAGE

    def test_add_user_costs_one_access(self, phone):
        before = phone.connection.accesses
        phone.add_user("alice", "alice-pass", "bob", "bob-pass")
        assert phone.connection.accesses == before + 1

    def test_wrong_sponsor_passcode_fails_but_costs(self, phone):
        before = phone.connection.accesses
        assert not phone.add_user("alice", "wrong", "bob", "bob-pass")
        assert "bob" not in phone.users
        assert phone.connection.accesses == before + 1

    def test_duplicate_user_rejected(self, phone):
        phone.add_user("alice", "alice-pass", "bob", "bob-pass")
        with pytest.raises(ConfigurationError):
            phone.add_user("alice", "alice-pass", "bob", "other")

    def test_remove_user_is_free_and_effective(self, phone):
        phone.add_user("alice", "alice-pass", "bob", "bob-pass")
        before = phone.connection.accesses
        phone.remove_user("bob")
        assert phone.connection.accesses == before
        with pytest.raises(ConfigurationError):
            phone.login("bob", "bob-pass")

    def test_cannot_remove_last_user(self, phone):
        with pytest.raises(ConfigurationError):
            phone.remove_user("alice")

    def test_revoked_user_cannot_be_sponsor(self, phone):
        phone.add_user("alice", "alice-pass", "bob", "bob-pass")
        phone.remove_user("bob")
        with pytest.raises(ConfigurationError):
            phone.add_user("bob", "bob-pass", "carol", "carol-pass")


class TestSharedBudget:
    def test_budget_shared_across_users(self, rng):
        phone = SharedPhone(design(60), "alice", "a-pass", STORAGE, rng)
        phone.add_user("alice", "a-pass", "bob", "b-pass")
        spent = 0
        with pytest.raises(DeviceWornOutError):
            while True:
                user = "alice" if spent % 2 == 0 else "bob"
                passcode = "a-pass" if user == "alice" else "b-pass"
                assert phone.login(user, passcode).success
                spent += 1
        assert spent >= 59  # add_user consumed one access of the budget
        assert phone.access_ledger["alice"] > 0
        assert phone.access_ledger["bob"] > 0