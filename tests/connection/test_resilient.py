"""Tests for the resilient access layer (retry, quarantine, RS fallback)."""

import numpy as np
import pytest

from repro.connection.resilient import (
    AccessStats,
    CopyHealth,
    ResilientAccessController,
    RetryPolicy,
)
from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.weibull import WeibullDistribution
from repro.errors import (
    ConfigurationError,
    DecodingFailure,
    DeviceWornOutError,
)
from repro.faults.injectors import FaultInjector, FaultModel

SECRET = b"resilient secret"


@pytest.fixture(scope="module")
def design():
    device = WeibullDistribution(alpha=10.0, beta=8.0)
    return solve_encoded_fractional(device, 40, 0.10, PAPER_CRITERIA)


def controller(design, hook=None, **kwargs):
    return ResilientAccessController(design, SECRET,
                                     np.random.default_rng(0),
                                     fault_hook=hook, **kwargs)


# Deterministic injectors exercising the pluggable FaultInjector API.
class CorruptShareZero(FaultInjector):
    """Always flips every bit of share 0 - one error per readout set."""

    name = "corrupt-share-0"

    def on_share_readout(self, bank_id, index, data, rng):
        if index == 0:
            self.injections += 1
            return bytes(b ^ 0xFF for b in data)
        return data


class PoisonBank(FaultInjector):
    """Corrupts every readout of one bank; other banks read clean."""

    name = "poison-bank"

    def __init__(self, bank_id):
        super().__init__()
        self.target = bank_id

    def on_share_readout(self, bank_id, index, data, rng):
        if bank_id == self.target:
            self.injections += 1
            return bytes(b ^ 0xFF for b in data)
        return data


class TimeoutFirstReadouts(FaultInjector):
    """Times out the first ``count`` readouts, then behaves."""

    name = "timeout-burst"

    def __init__(self, count):
        super().__init__()
        self.remaining = count

    def on_share_readout(self, bank_id, index, data, rng):
        if self.remaining > 0:
            self.remaining -= 1
            self.injections += 1
            return None
        return data


def model_of(*injectors):
    return FaultModel(injectors, rng=np.random.default_rng(1))


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(backoff_base_s=0.5, backoff_factor=3.0)
        assert policy.backoff_s(0) == 0.5
        assert policy.backoff_s(2) == 0.5 * 9.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(quarantine_after=0)


class TestCopyHealth:
    def test_quarantine_trips_exactly_once(self):
        health = CopyHealth(bank_id=0)
        assert not health.note_failure(quarantine_after=2)
        assert health.note_failure(quarantine_after=2)  # trips here
        assert not health.note_failure(quarantine_after=2)  # already out
        assert health.quarantined and not health.available

    def test_success_resets_the_streak(self):
        health = CopyHealth(bank_id=0)
        health.note_failure(quarantine_after=3)
        health.note_failure(quarantine_after=3)
        health.note_success()
        assert health.consecutive_failures == 0
        assert not health.note_failure(quarantine_after=3)
        assert health.available


class TestHappyPath:
    def test_faultless_controller_is_fully_available(self, design):
        ctrl = controller(design)
        served = 0
        while True:
            try:
                assert ctrl.read_key() == SECRET
            except DeviceWornOutError:
                break
            served += 1
        assert served >= design.access_bound * 0.9
        assert served <= design.copies * (design.t + 2)
        stats = ctrl.stats
        assert stats.availability == served / (served + 1)
        assert stats.retries == 0
        assert stats.corruption_detected == 0
        # Every copy wore out physically; each wearout is one fall-over.
        assert all(h.dead for h in ctrl.health)
        assert stats.fallovers == design.copies
        assert ctrl.is_exhausted

    def test_stats_serialization(self):
        stats = AccessStats(calls=4, successes=3)
        as_dict = stats.as_dict()
        assert as_dict["availability"] == pytest.approx(0.75)
        assert as_dict["calls"] == 4


class TestTransientRetry:
    def test_timeout_burst_absorbed_by_one_retry(self, design):
        burst = TimeoutFirstReadouts(design.n)  # starves attempt 1 only
        ctrl = controller(design, hook=model_of(burst))
        assert ctrl.read_key() == SECRET
        stats = ctrl.stats
        assert stats.successes == 1
        assert stats.retries == 1
        assert stats.attempts == 2
        assert stats.backoff_total_s > 0.0
        # The transient failure must not linger on the health ledger.
        assert ctrl.health[0].consecutive_failures == 0
        assert ctrl.health[0].available


class TestDegradedRecovery:
    def test_single_corrupt_share_recovers_through_rs(self, design):
        ctrl = controller(design, hook=model_of(CorruptShareZero()))
        assert ctrl.read_key() == SECRET
        stats = ctrl.stats
        assert stats.corruption_detected >= 1
        assert stats.degraded_recoveries >= 1
        assert stats.successes == 1
        assert ctrl.health[0].degraded_recoveries >= 1

    def test_no_rs_fallback_raises_instead(self, design):
        ctrl = controller(design, hook=model_of(CorruptShareZero()),
                          rs_fallback=False,
                          policy=RetryPolicy(max_attempts=2))
        assert not ctrl.rs_fallback
        with pytest.raises(DecodingFailure) as excinfo:
            ctrl.read_key()
        assert "no RS fallback" in str(excinfo.value)
        assert excinfo.value.bank_id == 0

    def test_never_returns_a_wrong_secret(self, design):
        """Total corruption: every read raises; none returns garbage."""
        poison = model_of(*(PoisonBank(i) for i in range(design.copies)))
        ctrl = controller(design, hook=poison,
                          policy=RetryPolicy(max_attempts=2,
                                             quarantine_after=100))
        for _ in range(5):
            with pytest.raises(DecodingFailure):
                ctrl.read_key()
        assert ctrl.stats.successes == 0
        assert ctrl.stats.corruption_detected > 0


class TestQuarantine:
    def test_poisoned_copy_is_quarantined_and_routed_around(self, design):
        assert design.copies >= 2
        ctrl = controller(design, hook=model_of(PoisonBank(0)))
        # Default policy: 3 consecutive failures quarantine copy 0, the
        # 4th attempt falls over to copy 1 and succeeds.
        assert ctrl.read_key() == SECRET
        assert ctrl.quarantined_copies == [0]
        assert ctrl.current_copy == 1
        stats = ctrl.stats
        assert stats.quarantines == 1
        assert stats.retries == 3
        assert stats.successes == 1
        # Copy 0 is skipped from now on: no further quarantine churn.
        assert ctrl.read_key() == SECRET
        assert stats.attempts == 5

    def test_retry_budget_exhaustion_reraises_last_error(self, design):
        ctrl = controller(design, hook=model_of(PoisonBank(0)),
                          policy=RetryPolicy(max_attempts=2,
                                             quarantine_after=50))
        with pytest.raises(DecodingFailure) as excinfo:
            ctrl.read_key()
        assert excinfo.value.bank_id == 0
        assert ctrl.stats.successes == 0
        assert not ctrl.quarantined_copies  # below the quarantine bar

    def test_all_copies_quarantined_is_exhaustion(self, design):
        poison = model_of(*(PoisonBank(i) for i in range(design.copies)))
        ctrl = controller(design, hook=poison,
                          policy=RetryPolicy(max_attempts=8 * design.copies,
                                             quarantine_after=2))
        with pytest.raises(DeviceWornOutError):
            ctrl.read_key()
        assert ctrl.is_exhausted
        assert len(ctrl.quarantined_copies) == design.copies
        assert all(not h.dead for h in ctrl.health)  # alive but untrusted
