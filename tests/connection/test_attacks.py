"""Tests for brute-force attack statistics against the hardware bound."""

import pytest

from repro.connection.attacks import (
    analytic_crack_probability,
    simulate_hardware_attacks,
    software_counter_attempts_needed,
)
from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.weibull import WeibullDistribution
from repro.errors import ConfigurationError
from repro.passwords.model import PasswordModel


@pytest.fixture(scope="module")
def phone_design():
    device = WeibullDistribution(alpha=14.0, beta=8.0)
    return solve_encoded_fractional(device, 91_250, 0.10, PAPER_CRITERIA)


class TestAnalytic:
    def test_paper_headline_about_one_percent(self, phone_design):
        """~91k hardware attempts crack just under 1% of passcodes."""
        p = analytic_crack_probability(phone_design)
        assert 0.005 < p < 0.011

    def test_legitimate_use_shrinks_attacker_budget(self, phone_design):
        fresh = analytic_crack_probability(phone_design)
        used = analytic_crack_probability(phone_design,
                                          legitimate_uses=50_000)
        assert used < fresh

    def test_exclusion_policy_can_zero_out(self, phone_design):
        p = analytic_crack_probability(phone_design,
                                       min_fraction_excluded=0.01)
        assert p == 0.0

    def test_budget_never_negative(self, phone_design):
        p = analytic_crack_probability(phone_design,
                                       legitimate_uses=10 ** 9)
        assert p == 0.0


class TestSimulated:
    def test_simulation_matches_analytic(self, phone_design, rng):
        stats = simulate_hardware_attacks(phone_design, trials=600,
                                          rng=rng)
        analytic = analytic_crack_probability(phone_design)
        assert stats.crack_probability == pytest.approx(analytic, abs=0.02)
        assert stats.trials == 600

    def test_mean_budget_near_expected_bound(self, phone_design, rng):
        stats = simulate_hardware_attacks(phone_design, trials=100, rng=rng)
        assert stats.mean_hardware_budget == pytest.approx(
            phone_design.expected_access_bound(), rel=0.02)

    def test_rejects_zero_trials(self, phone_design, rng):
        with pytest.raises(ConfigurationError):
            simulate_hardware_attacks(phone_design, 0, rng)


class TestSoftwareContrast:
    def test_bypassed_software_always_succeeds_eventually(self, rng):
        model = PasswordModel()
        attempts = software_counter_attempts_needed(model, rng)
        assert 1 <= attempts <= model.vocabulary_size
