"""Tests for the software-counter baseline and its bypasses."""

import pytest

from repro.connection.baselines import PhoneWipedError, SoftwareCounterPhone
from repro.errors import ConfigurationError

STORAGE = b"baseline disk"


class TestPolicy:
    def test_correct_passcode_returns_plaintext(self, rng):
        phone = SoftwareCounterPhone("1234", STORAGE, rng)
        assert phone.login("1234") == STORAGE

    def test_success_resets_counter(self, rng):
        phone = SoftwareCounterPhone("1234", STORAGE, rng, wipe_after=3)
        phone.login("0000")
        phone.login("1234")
        assert phone.failed_attempts == 0

    def test_wipes_after_threshold(self, rng):
        phone = SoftwareCounterPhone("1234", STORAGE, rng, wipe_after=3)
        for i in range(3):
            phone.login(f"bad{i}")
        assert phone.wiped
        with pytest.raises(PhoneWipedError):
            phone.login("1234")

    def test_wipe_after_validated(self, rng):
        with pytest.raises(ConfigurationError):
            SoftwareCounterPhone("1234", STORAGE, rng, wipe_after=0)


class TestBypasses:
    def test_power_cut_bypass_gives_unlimited_attempts(self, rng):
        """The MDSec attack: failures are observed but never recorded."""
        phone = SoftwareCounterPhone("0099", STORAGE, rng, wipe_after=10)
        for i in range(99):
            assert phone.login(f"{i:04d}", power_cut_bypass=True) is None
        assert phone.failed_attempts == 0
        assert phone.login("0099", power_cut_bypass=True) == STORAGE

    def test_nand_restore_unwipes(self, rng):
        """Skorobogatov's NAND mirroring: replay the counter state."""
        phone = SoftwareCounterPhone("7777", STORAGE, rng, wipe_after=3)
        image = phone.snapshot_nand()
        for i in range(3):
            phone.login(f"bad{i}")
        assert phone.wiped
        phone.restore_nand(image)
        assert not phone.wiped
        assert phone.login("7777") == STORAGE

    def test_bypassed_attack_always_terminates(self, rng):
        """The contrast with the hardware design: the baseline attacker's
        attempt count is bounded only by the passcode space."""
        phone = SoftwareCounterPhone("0042", STORAGE, rng, wipe_after=10)
        image = phone.snapshot_nand()
        attempts = 0
        while True:
            attempts += 1
            if phone.login(f"{attempts:04d}",
                           power_cut_bypass=(attempts % 2 == 0)) is not None:
                break
            phone.restore_nand(image)
        assert attempts == 42
        assert phone.total_attempts == 42
