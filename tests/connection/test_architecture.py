"""Tests for the fabricated limited-use connection."""

import pytest

from repro.connection.architecture import LimitedUseConnection
from repro.core.degradation import PAPER_CRITERIA, solve_encoded_fractional
from repro.core.weibull import WeibullDistribution
from repro.errors import DeviceWornOutError

SECRET = b"hardware key 128"


@pytest.fixture
def design():
    device = WeibullDistribution(alpha=10.0, beta=8.0)
    return solve_encoded_fractional(device, 100, 0.10, PAPER_CRITERIA)


class TestReadKey:
    def test_reads_return_secret(self, design, rng):
        connection = LimitedUseConnection(design, SECRET, rng)
        for _ in range(design.access_bound):
            assert connection.read_key() == SECRET

    def test_wears_out_near_the_bound(self, design, rng):
        connection = LimitedUseConnection(design, SECRET, rng)
        reads = 0
        try:
            while True:
                connection.read_key()
                reads += 1
        except DeviceWornOutError:
            pass
        # Guaranteed at least the bound; fractional window allows at most
        # ~copies * (t + 2) total.
        assert design.access_bound <= reads
        assert reads <= design.copies * (design.t + 2)
        assert connection.is_exhausted

    def test_accesses_counted(self, design, rng):
        connection = LimitedUseConnection(design, SECRET, rng)
        connection.read_key()
        connection.read_key()
        assert connection.accesses == 2

    def test_copies_consumed_in_order(self, design, rng):
        connection = LimitedUseConnection(design, SECRET, rng)
        assert connection.current_copy == 0
        for _ in range(design.t + 3):
            connection.read_key()
        assert connection.current_copy >= 1

    def test_device_count(self, design, rng):
        connection = LimitedUseConnection(design, SECRET, rng)
        assert connection.device_count == design.total_devices

    def test_exhausted_connection_keeps_raising(self, design, rng):
        connection = LimitedUseConnection(design, SECRET, rng)
        with pytest.raises(DeviceWornOutError):
            for _ in range(10 ** 6):
                connection.read_key()
        with pytest.raises(DeviceWornOutError):
            connection.read_key()
