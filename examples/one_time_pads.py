"""One-time pads in wearout decision trees (Section 6).

Provisions a pad chip, runs the sender/receiver protocol, and then lets
an evil maid raid a second chip to show why the design resists cloning:
random path trials almost never assemble k shares, and the trials
themselves destroy the hardware.

Run:  python examples/one_time_pads.py

Set ``REPRO_EXAMPLES_SMOKE=1`` (as the CI examples leg does) to shrink
the chips and the raid so the script finishes in a couple of seconds.
"""

import os

import numpy as np

from repro import pads
from repro.core import WeibullDistribution

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))
rng = np.random.default_rng(6)

# NEMS with ~10-cycle lifetimes and heavy process variation (beta = 1):
# only first-access survival matters for pads, so cheap devices suffice.
device = WeibullDistribution(alpha=10, beta=1)
HEIGHT, COPIES, K = (8, 24, 4) if SMOKE else (8, 128, 8)
RAID_PADS = 4 if SMOKE else 12
HEAVY_TRIALS = 5 if SMOKE else 25

recv_p = pads.receiver_success_probability(device, HEIGHT, COPIES, K)
adv_p = pads.adversary_success_probability(device, HEIGHT, COPIES, K)
print(f"design H={HEIGHT}, n={COPIES}, k={K}: "
      f"P[receiver succeeds]={recv_p:.4f}, P[adversary succeeds]="
      f"{adv_p:.2e}")

cost = pads.retrieval_cost(HEIGHT, COPIES)
print(f"per-key retrieval: {cost.total_latency_s * 1e3:.3f} ms, "
      f"{cost.energy_j:.2e} J; "
      f"{pads.pads_per_chip(HEIGHT, COPIES)} pads fit on 1 mm^2\n")

# --- the honest protocol ------------------------------------------------
chip = pads.OneTimePadChip(n_pads=4, height=HEIGHT, n_copies=COPIES, k=K,
                           device=device, rng=rng, key_bytes=64)
sender = pads.PadSender(chip)     # keeps keys + addresses at provisioning
receiver = pads.PadReceiver(chip)  # gets the physical chip

for text in (b"meet at the bridge at dawn", b"bring the microfilm"):
    message = sender.send(text)
    plaintext = receiver.receive(message)
    print(f"pad {message.address.pad_id} (path {message.address.path}): "
          f"receiver decrypted {plaintext!r}")
print(f"pads remaining on the chip: {sender.pads_remaining}\n")

# --- the evil maid ------------------------------------------------------
# A light raid (one guess per pad) leaks nothing and leaves the pads
# usable; a determined raid still leaks nothing, but its own traversals
# wear the trees out - the receiver *sees* the attack as dead pads.
for trials, label in ((1, "light raid (1 trial/pad) "),
                      (HEAVY_TRIALS, f"heavy raid ({HEAVY_TRIALS} "
                                     f"trials/pad)")):
    target = pads.OneTimePadChip(n_pads=RAID_PADS, height=HEIGHT,
                                 n_copies=COPIES, k=K, device=device,
                                 rng=rng, key_bytes=32)
    maid = pads.EvilMaidAttacker(np.random.default_rng(666))
    leaked, burned = maid.raid(target, trials_per_pad=trials)
    print(f"{label}: {leaked} keys leaked, {burned}/{RAID_PADS} pads "
          f"burned")
print("wearout turns a determined raid into visible sabotage - but "
      "never into a silent clone")
