"""The fab engineer's workflow: from lifetime data to a shippable lot.

Ties together the reproduction's fabrication-side extensions:

1. destructive lifetime testing of a device sample,
2. lifetime-model selection (is Weibull even the right family?),
3. architecture sizing with an engineered margin,
4. bootstrap lot-acceptance against the design's tolerance bands,
5. stiction certification (maximum stuck-closed fraction).

Run:  python examples/fab_acceptance.py
"""

import numpy as np

from repro.core import (
    DegradationCriteria,
    PAPER_CRITERIA,
    WeibullDistribution,
    alpha_margin,
    beta_margin,
    evaluate_lot,
    max_tolerable_stuck_closed,
    select_lifetime_model,
)
from repro.core.degradation import solve_encoded_fractional

rng = np.random.default_rng(2026)

# --- 1. characterize the lot ---------------------------------------------
true_process = WeibullDistribution(alpha=14.2, beta=7.8)  # what the fab
sample = true_process.sample(size=4_000, rng=rng)          # actually makes
print(f"tested {sample.size} devices to destruction: "
      f"mean {sample.mean():.1f} cycles, std {sample.std():.1f}")

# --- 2. which lifetime family fits? ---------------------------------------
fits = select_lifetime_model(sample)
best = fits[0]
print("model selection (AIC):",
      ", ".join(f"{f.family}={f.aic:.0f}" for f in fits))
print(f"-> {best.family} wins; fitted "
      f"alpha={best.model.alpha:.2f} beta={best.model.beta:.2f}\n")

# --- 3. size the architecture with margin ---------------------------------
SIZING = DegradationCriteria(r_min=0.999, p_fail=0.002)   # strict sizing
design = solve_encoded_fractional(
    WeibullDistribution(alpha=14.0, beta=8.0),  # the *spec* device
    access_bound=91_250, k_fraction=0.10, criteria=SIZING)
m_alpha = alpha_margin(design, PAPER_CRITERIA)  # certified field criteria
m_beta = beta_margin(design, PAPER_CRITERIA)
print(f"design: {design.k}-of-{design.n} x {design.copies} copies "
      f"({design.total_devices:,} switches)")
print(f"tolerance bands: alpha in [{m_alpha.low:.2f}, {m_alpha.high:.2f}]"
      f", beta in [{m_beta.low:.2f}, {m_beta.high:.2f}]\n")

# --- 4. accept or reject the lot -------------------------------------------
decision = evaluate_lot(sample, design, rng, n_boot=120,
                        certify_criteria=PAPER_CRITERIA)
print(f"lot decision: {'ACCEPT' if decision.accepted else 'REJECT'}")
print(f"  fitted alpha {decision.fitted_alpha:.2f} "
      f"(95% CI {decision.alpha_interval[0]:.2f}.."
      f"{decision.alpha_interval[1]:.2f})")
print(f"  fitted beta  {decision.fitted_beta:.2f} "
      f"(95% CI {decision.beta_interval[0]:.2f}.."
      f"{decision.beta_interval[1]:.2f})")
for reason in decision.reasons:
    print(f"  - {reason}")

# --- 5. stiction certification ---------------------------------------------
q_max = max_tolerable_stuck_closed(design)
print(f"\nstiction requirement: at most {q_max:.2%} of failures may be "
      f"stuck-closed (k/n = {design.k / design.n:.1%}); beyond that, "
      "copies can conduct forever and the attack ceiling breaks")

# A lot that drifted long (often read as GOOD news in reliability work)
# must be rejected here: over-built devices outlive the security window.
drifted = WeibullDistribution(alpha=17.5, beta=8.0).sample(size=4_000,
                                                           rng=rng)
drifted_decision = evaluate_lot(drifted, design, rng, n_boot=120,
                                certify_criteria=PAPER_CRITERIA)
print(f"\ndrifted lot (alpha ~17.5): "
      f"{'ACCEPT' if drifted_decision.accepted else 'REJECT'}")
for reason in drifted_decision.reasons:
    print(f"  - {reason}")
print("\nlesson: for limited-use security, 'better' devices are defects "
      "- lifetime must hit a window, not a floor")
