"""Forward-secret email with hardware-destroyed keys (paper Section 1).

The paper's motivating example: forward secrecy needs a fresh key per
message, and crucially needs old keys to be *gone* - software promises
to delete keys can be subverted.  Here every email's key lives in a
wearout pad; reading the email physically destroys the key, so seizing
the mailbox later recovers nothing that was already read.

Also demonstrates end-user provisioning (the paper's future-work item):
the user programs a blank chip through its write-once antifuse fabric.

Run:  python examples/forward_secrecy_email.py
"""

import numpy as np

from repro import InsufficientSharesError, pads
from repro.core import WeibullDistribution
from repro.crypto.otp import xor_decrypt, xor_encrypt
from repro.pads.provisioning import (
    AlreadyProgrammedError,
    BlankPadChip,
    provision_blank_chip,
)

rng = np.random.default_rng(1999)
device = WeibullDistribution(alpha=10, beta=1)

# --- end-user provisioning ceremony -------------------------------------
blank = BlankPadChip(n_pads=6, height=8, n_copies=64, k=4, device=device,
                     key_bytes=96)
chip, addresses = provision_blank_chip(blank, rng)
print(f"provisioned a blank chip with {len(addresses)} one-time keys "
      "(write-once antifuse programming)")
try:
    provision_blank_chip(blank, rng)
except AlreadyProgrammedError:
    print("re-provisioning physically rejected: the antifuses are blown\n")

# --- the mail flow -------------------------------------------------------
emails = [
    b"Q3 numbers attached, don't forward",
    b"offer letter draft for the new hire",
    b"merger call moved to Thursday",
]
sender_keys = [chip.pads[a.pad_id].true_key for a in addresses]
mailbox = []  # what sits on the mail server: ciphertext + pad address
for text, key, address in zip(emails, sender_keys, addresses):
    mailbox.append((address, xor_encrypt(key, text)))
print(f"{len(mailbox)} emails sent, each under its own pad key")

# The recipient reads the first two emails; each read consumes the pad.
for address, ciphertext in mailbox[:2]:
    key = chip.retrieve(address)
    print(f"  read: {xor_decrypt(key, ciphertext)!r}")

# --- the seizure ----------------------------------------------------------
# Later, an adversary obtains EVERYTHING the recipient has: the mailbox
# ciphertexts, the chip, and even the address book (worst case).
print("\nadversary seizes mailbox + chip + address book:")
for i, (address, ciphertext) in enumerate(mailbox):
    try:
        key = chip.retrieve(address)
        print(f"  email {i}: COMPROMISED -> {xor_decrypt(key, ciphertext)!r}")
    except InsufficientSharesError:
        print(f"  email {i}: safe - its key hardware is already destroyed")

print("\nforward secrecy held for every message that was already read: "
      "the keys did not merely get deleted, they ceased to exist")
