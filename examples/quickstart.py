"""Quickstart: a wearout-bounded smartphone in ~60 lines.

Sizes a limited-use connection for a small demo budget, provisions a
phone on it, and shows the three behaviours that define the paper:

1. legitimate logins work reliably through the bound,
2. wrong passcodes consume the *hardware* budget (no software counter),
3. once the budget is gone the phone is permanently locked.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DeviceWornOutError, connection, core

DEMO_BOUND = 300  # keep the demo fast; the paper's phone uses 91,250

rng = np.random.default_rng(2017)

# 1. Size the architecture: alpha ~ mean switch lifetime in cycles,
#    beta ~ manufacturing consistency, k_fraction ~ encoding threshold.
design = core.size_architecture(
    alpha=14, beta=8, access_bound=DEMO_BOUND, k_fraction=0.10,
    criteria=core.PAPER_CRITERIA, window="fractional")
print(f"design: {design.copies} copies of {design.k}-of-{design.n} banks "
      f"-> {design.total_devices} NEMS switches, "
      f">={design.guaranteed_accesses} guaranteed accesses")

# 2. Provision a phone: storage is AES-sealed under a key derived from
#    the passcode AND a hardware key living behind the wearout network.
phone = connection.SecurePhone(design, passcode="0852",
                               storage_plaintext=b"family photos, wallet",
                               rng=rng)

# 3. Normal life: the owner logs in well past the demo budget's daily use.
for _ in range(DEMO_BOUND // 2):
    result = phone.login("0852")
    assert result.success
print(f"owner logged in {phone.login_attempts} times; storage reads "
      f"{result.plaintext!r}")

# 4. A thief tries passcodes. Every attempt - right or wrong - spends one
#    hardware access; there is no counter to bypass.
wrong = 0
try:
    while True:
        if not phone.login(f"{wrong:04d}").success:
            wrong += 1
except DeviceWornOutError:
    pass
print(f"thief burned the remaining budget after {wrong} wrong guesses; "
      f"phone bricked: {phone.is_bricked}")

# 5. The storage key is now physically unrecoverable - even the right
#    passcode cannot come back.
try:
    phone.login("0852")
except DeviceWornOutError as exc:
    print(f"owner (or anyone) forever locked out: {exc}")
