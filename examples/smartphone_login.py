"""The full smartphone scenario: hardware bound vs bypassed software.

Reproduces Section 4's argument end to end:

- a software retry counter falls to the published power-cut and NAND
  mirroring bypasses (unlimited guesses, guaranteed crack);
- the limited-use connection caps any attacker at the hardware bound, so
  a professional popularity-ordered cracker wins only ~1% of the time;
- M-way replication scales daily usage with periodic re-encryption.

Run:  python examples/smartphone_login.py

Set ``REPRO_EXAMPLES_SMOKE=1`` (as the CI examples leg does) to cut the
attack simulation to a fast smoke size.
"""

import os

import numpy as np

from repro import connection, core, passwords
from repro.connection import attacks

ATTACK_TRIALS = 40 if os.environ.get("REPRO_EXAMPLES_SMOKE") else 400
rng = np.random.default_rng(42)
model = passwords.PasswordModel()

print("== the software baseline falls to its published bypasses ==")
# The victim chose a moderately popular passcode (guess rank 271); the
# wipe-after-10 policy should stop the attack long before that.
soft = connection.SoftwareCounterPhone("000271", b"secret disk", rng,
                                       wipe_after=10)
image = soft.snapshot_nand()
guesses = 0
while True:
    guesses += 1
    # Power-cut bypass: failures never increment the counter...
    if soft.login(f"{guesses:06d}", power_cut_bypass=True) is not None:
        break
    # ...and even if some failures landed, NAND mirroring restores state.
    if guesses % 100 == 0:
        soft.restore_nand(image)
print(f"bypassed software counter: cracked after {guesses:,} guesses "
      f"(wiped: {soft.wiped}) - attempts were unlimited\n")

print("== the hardware bound makes the same attack statistical ==")
design = core.size_architecture(
    alpha=14, beta=8, access_bound=connection.SMARTPHONE_ACCESS_BOUND,
    k_fraction=0.10, criteria=core.PAPER_CRITERIA, window="fractional")
print(f"phone design: {design.total_devices:,} switches, "
      f"bound {design.guaranteed_accesses:,} accesses")

p_analytic = attacks.analytic_crack_probability(design, model)
stats = attacks.simulate_hardware_attacks(design, trials=ATTACK_TRIALS,
                                          rng=rng, model=model)
print(f"P[professional cracker wins before wearout]: "
      f"analytic {p_analytic:.3%}, simulated {stats.crack_probability:.3%}")
print(f"(the paper's point: ~1% vs the baseline's 100%)\n")

print("== stronger passcode policies shrink that further ==")
for label, excluded in (("reject top 1% passwords", 0.01),
                        ("reject top 2% passwords", 0.02)):
    p = attacks.analytic_crack_probability(design, model,
                                           min_fraction_excluded=excluded)
    print(f"  {label}: P[crack] = {p:.4%}")
print()

print("== M-way replication for heavy users (Section 4.1.5) ==")
plan = core.plan_replication(target_daily_usage=500)
print(f"500 logins/day needs M={plan.m} modules; new passcode + storage "
      f"re-encryption every {plan.module_duration_months:.0f} months")

small = core.size_architecture(alpha=14, beta=8, access_bound=60,
                               k_fraction=0.10,
                               criteria=core.PAPER_CRITERIA,
                               window="fractional")
mphone = connection.MWayPhone([small] * 3,
                              ["alpha-1", "bravo-2", "charlie-3"],
                              b"long-lived data", rng)
for module in range(3):
    passcode = ["alpha-1", "bravo-2", "charlie-3"][module]
    for _ in range(20):
        assert mphone.login(passcode).success
    if module < 2:
        mphone.migrate()
print(f"3-module phone served 60 logins across {mphone.migrations} "
      f"migrations; data intact: "
      f"{mphone.login('charlie-3').plaintext == b'long-lived data'}")
