"""Design-space exploration: pick devices and encoding for your budget.

Walks the trade-offs of Section 4.3 on a reduced grid: wearout bound and
consistency vs device count, encoding vs no encoding, area/energy costs,
and how much a relaxed failure ceiling buys.

Run:  python examples/design_space_exploration.py
"""

from repro.connection.design_space import SMARTPHONE_ACCESS_BOUND
from repro.core import (
    PAPER_CRITERIA,
    DegradationCriteria,
    WeibullDistribution,
    access_energy_j,
    connection_area_mm2,
    size_architecture,
)
from repro.core.degradation import solve_encoded_fractional
from repro.errors import InfeasibleDesignError

BOUND = SMARTPHONE_ACCESS_BOUND

print(f"target: {BOUND:,} legitimate accesses (50/day x 5 years)\n")

print("1) device quality vs architecture size (k = 10% encoding)")
print(f"   {'alpha':>5} {'beta':>4} {'bank':>6} {'copies':>7} "
      f"{'switches':>10} {'area mm^2':>10} {'energy/access':>13}")
for alpha in (10, 14, 20):
    for beta in (4, 8, 16):
        try:
            point = size_architecture(alpha, beta, BOUND, k_fraction=0.10,
                                      criteria=PAPER_CRITERIA,
                                      window="fractional")
        except InfeasibleDesignError:
            print(f"   {alpha:>5} {beta:>4}   infeasible")
            continue
        print(f"   {alpha:>5} {beta:>4} {point.n:>6} {point.copies:>7} "
              f"{point.total_devices:>10,} "
              f"{connection_area_mm2(point):>10.2e} "
              f"{access_energy_j(point):>12.2e}J")

print("\n2) encoding is what makes loose wearout bounds affordable")
device = WeibullDistribution(alpha=14, beta=8)
plain = size_architecture(14, 8, BOUND, k_fraction=None,
                          criteria=PAPER_CRITERIA, window="fractional")
encoded = size_architecture(14, 8, BOUND, k_fraction=0.10,
                            criteria=PAPER_CRITERIA, window="fractional")
ratio = plain.total_devices / encoded.total_devices
print(f"   alpha=14 beta=8: unencoded {plain.total_devices:,} vs "
      f"encoded {encoded.total_devices:,} switches ({ratio:,.0f}x)")

print("\n3) how much a relaxed failure ceiling buys (alpha=14, beta=8)")
for p_fail in (0.022, 0.05, 0.10):
    criteria = DegradationCriteria(r_min=0.98, p_fail=p_fail)
    point = solve_encoded_fractional(device, BOUND, 0.10, criteria)
    print(f"   p_fail={p_fail:>5.1%}: {point.total_devices:>9,} switches, "
          f"expected upper bound "
          f"{point.expected_access_bound():,.0f}")

print("\nrule of thumb: spend fabrication effort on beta (consistency), "
      "spend architecture (encoding) to forgive alpha (lifetime).")
