"""A limited-use targeting system (Section 5).

A command center issues encrypted directives; the launch station's
command key lives behind a wearout architecture sized for exactly one
mission (100 commands).  The demo shows: normal mission traffic, forged
commands burning the budget without executing, and automatic
decommissioning at the bound.

Run:  python examples/targeting_system.py
"""

import numpy as np

from repro import AuthenticationError, DeviceWornOutError, targeting

rng = np.random.default_rng(1914)

design = targeting.design_targeting_system(alpha=10, beta=8,
                                           mission_bound=100,
                                           k_fraction=0.10)
print(f"mission design: {design.copies} copies of {design.k}-of-{design.n} "
      f"banks = {design.total_devices} switches "
      f"(paper's comparable point: ~810)")

mission_key = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
center = targeting.CommandCenter(mission_key)
station = targeting.LaunchStation(design, mission_key, rng)

# Normal mission: 80 legitimate strikes.
for i in range(80):
    directive = f"engage grid {i:03d}".encode()
    assert station.execute(center.issue(directive)) == directive
print(f"mission traffic: {station.executed} commands executed")

# An intruder on the network replays garbage: authentication rejects it,
# but the attempt still consumes the station's bounded key accesses -
# probing can only shorten the mission, never extend it.
forged = targeting.Command(sealed=bytes(64))
rejected = 0
for _ in range(10):
    try:
        station.execute(forged)
    except AuthenticationError:
        rejected += 1
print(f"forged commands rejected: {rejected} "
      f"(each still cost one hardware access)")

# The mission budget runs out; the station decommissions itself.
extra = 0
try:
    while True:
        station.execute(center.issue(b"overreach"))
        extra += 1
except DeviceWornOutError:
    pass
print(f"{extra} further commands executed before wearout; "
      f"decommissioned: {station.is_decommissioned}")
print("the 101st-style overreach is physically impossible: total "
      f"executed = {station.executed}")
